"""Tests for the scientific graph benchmarks, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.benchmarks.base import InputSize
from repro.benchmarks.scientific.algorithms import (
    breadth_first_search,
    minimum_spanning_tree,
    pagerank,
)
from repro.benchmarks.scientific.graph_benchmarks import (
    GraphBFSBenchmark,
    GraphMSTBenchmark,
    GraphPageRankBenchmark,
)
from repro.benchmarks.scientific.graph_generation import (
    Graph,
    generate_random_graph,
    generate_rmat_graph,
)
from repro.exceptions import BenchmarkError


def to_networkx(graph: Graph) -> nx.Graph:
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.edges():
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


@pytest.fixture
def random_graph(rng) -> Graph:
    return generate_random_graph(num_vertices=200, average_degree=6.0, rng=rng)


class TestGraphStructure:
    def test_from_edges_builds_symmetric_adjacency(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.num_edges == 3
        assert (0, 1.0) in graph.neighbors(1)
        assert (2, 1.0) in graph.neighbors(1)

    def test_directed_graph_counts_edges_once(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        assert graph.num_edges == 2
        assert graph.neighbors(1) == [(2, 1.0)]

    def test_edge_payload_round_trip(self, random_graph):
        payload = random_graph.to_edge_payload()
        restored = Graph.from_edge_payload(payload)
        assert restored.num_vertices == random_graph.num_vertices
        assert sorted(restored.edges()) == sorted(random_graph.edges())

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(BenchmarkError):
            Graph.from_edges(2, [(0, 5)])

    def test_rejects_inconsistent_adjacency(self):
        with pytest.raises(BenchmarkError):
            Graph(num_vertices=3, adjacency=[[]])


class TestGraphGenerators:
    def test_random_graph_size_and_degree(self, rng):
        graph = generate_random_graph(500, 8.0, rng)
        assert graph.num_vertices == 500
        average_degree = 2 * graph.num_edges / graph.num_vertices
        assert 5.0 <= average_degree <= 8.5

    def test_random_graph_no_self_loops_or_duplicates(self, random_graph):
        seen = set()
        for u, v, _ in random_graph.edges():
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_rmat_graph_has_power_of_two_vertices(self, rng):
        graph = generate_rmat_graph(scale=8, edge_factor=4, rng=rng)
        assert graph.num_vertices == 256
        assert graph.num_edges > 0

    def test_rmat_degree_distribution_is_skewed(self, rng):
        graph = generate_rmat_graph(scale=10, edge_factor=8, rng=rng)
        degrees = np.array([graph.degree(v) for v in range(graph.num_vertices)])
        # R-MAT graphs have a heavy-tailed degree distribution: the maximum
        # degree far exceeds the mean, unlike uniform random graphs.
        assert degrees.max() > 5 * degrees.mean()

    def test_rmat_rejects_bad_parameters(self, rng):
        with pytest.raises(BenchmarkError):
            generate_rmat_graph(scale=0, edge_factor=4, rng=rng)
        with pytest.raises(BenchmarkError):
            generate_rmat_graph(scale=4, edge_factor=0, rng=rng)
        with pytest.raises(BenchmarkError):
            generate_rmat_graph(scale=4, edge_factor=4, rng=rng, a=0.9, b=0.1, c=0.1)


class TestBFS:
    def test_distances_match_networkx(self, random_graph):
        result = breadth_first_search(random_graph, source=0)
        reference = nx.single_source_shortest_path_length(to_networkx(random_graph), 0)
        for vertex in range(random_graph.num_vertices):
            expected = reference.get(vertex, -1)
            assert result.distances[vertex] == expected

    def test_parents_form_valid_tree(self, random_graph):
        result = breadth_first_search(random_graph, source=0)
        for vertex, parent in enumerate(result.parents):
            if parent >= 0:
                assert result.distances[vertex] == result.distances[parent] + 1

    def test_unreachable_vertices_have_negative_distance(self):
        graph = Graph.from_edges(4, [(0, 1)])
        result = breadth_first_search(graph, 0)
        assert result.distances[2] == -1 and result.distances[3] == -1
        assert result.visited_count == 2

    def test_frontier_sizes_sum_to_visited(self, random_graph):
        result = breadth_first_search(random_graph, 0)
        assert sum(result.frontier_sizes) == result.visited_count

    def test_invalid_source_rejected(self, random_graph):
        with pytest.raises(BenchmarkError):
            breadth_first_search(random_graph, random_graph.num_vertices)


class TestPageRank:
    def test_ranks_sum_to_one(self, random_graph):
        ranks, _ = pagerank(random_graph)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_networkx(self, random_graph):
        # Our PageRank treats edges as unweighted (each neighbour receives an
        # equal share), so the networkx reference is run with weight=None.
        ranks, _ = pagerank(random_graph, damping=0.85, max_iterations=200, tolerance=1e-12)
        reference = nx.pagerank(to_networkx(random_graph), alpha=0.85, max_iter=200, tol=1e-12, weight=None)
        for vertex in range(random_graph.num_vertices):
            assert ranks[vertex] == pytest.approx(reference[vertex], abs=1e-6)

    def test_higher_degree_vertices_rank_higher_on_star(self):
        star = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        ranks, _ = pagerank(star)
        assert ranks[0] > ranks[1]

    def test_dangling_vertices_handled(self):
        graph = Graph.from_edges(3, [(0, 1)], directed=True)
        ranks, _ = pagerank(graph)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_converges_before_max_iterations(self, random_graph):
        _, iterations = pagerank(random_graph, max_iterations=500, tolerance=1e-10)
        assert iterations < 500

    def test_invalid_damping_rejected(self, random_graph):
        with pytest.raises(BenchmarkError):
            pagerank(random_graph, damping=1.5)


class TestMST:
    def test_total_weight_matches_networkx(self, random_graph):
        result = minimum_spanning_tree(random_graph)
        reference = nx.minimum_spanning_tree(to_networkx(random_graph), algorithm="kruskal")
        expected = sum(data["weight"] for _, _, data in reference.edges(data=True))
        assert result.total_weight == pytest.approx(expected, rel=1e-9)

    def test_tree_edge_count(self, random_graph):
        result = minimum_spanning_tree(random_graph)
        components = nx.number_connected_components(to_networkx(random_graph))
        assert len(result.edges) == random_graph.num_vertices - components
        assert result.num_components == components

    def test_tree_is_acyclic(self, random_graph):
        result = minimum_spanning_tree(random_graph)
        tree = nx.Graph()
        tree.add_nodes_from(range(random_graph.num_vertices))
        tree.add_edges_from((u, v) for u, v, _ in result.edges)
        assert nx.is_forest(tree)

    def test_empty_graph_rejected(self):
        with pytest.raises(BenchmarkError):
            minimum_spanning_tree(Graph(num_vertices=0, adjacency=[]))


class TestGraphBenchmarkKernels:
    @pytest.mark.parametrize("benchmark_cls", [GraphBFSBenchmark, GraphPageRankBenchmark, GraphMSTBenchmark])
    def test_end_to_end(self, benchmark_cls, context):
        benchmark = benchmark_cls()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["num_vertices"] == 128
        assert result["num_edges"] > 0

    def test_bfs_returns_large_output(self, context):
        benchmark = GraphBFSBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["output_size"] > 500
        assert result["result"]["visited"] <= result["num_vertices"]

    def test_pagerank_reports_top_vertices(self, context):
        benchmark = GraphPageRankBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert len(result["top_vertices"]) == 10
        assert result["rank_sum"] == pytest.approx(1.0, abs=1e-6)

    def test_mst_weight_positive(self, context):
        benchmark = GraphMSTBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["total_weight"] > 0
        assert result["tree_edges"] < result["num_vertices"]

    def test_profiles_follow_table4_ordering(self):
        bfs = GraphBFSBenchmark().profile()
        mst = GraphMSTBenchmark().profile()
        pr = GraphPageRankBenchmark().profile()
        # PageRank is the most expensive of the three; BFS and MST are close.
        assert pr.warm_compute_s > mst.warm_compute_s
        assert pr.instructions > bfs.instructions
        assert bfs.output_bytes == 78_000
