"""Tests for repro.config."""

from __future__ import annotations

import pytest

from repro.config import (
    DYNAMIC_MEMORY,
    DEFAULT_REGIONS,
    ExperimentConfig,
    FunctionConfig,
    Language,
    PERF_COST_MEMORY_SIZES,
    Provider,
    SimulationConfig,
    config_to_dict,
    resolve_memory_sizes,
)
from repro.exceptions import ConfigurationError


class TestProvider:
    def test_display_names(self):
        assert Provider.AWS.display_name == "AWS Lambda"
        assert Provider.AZURE.display_name == "Azure Functions"
        assert Provider.GCP.display_name == "Google Cloud Functions"

    def test_all_providers_have_default_regions(self):
        for provider in Provider:
            assert provider in DEFAULT_REGIONS

    def test_paper_regions(self):
        assert DEFAULT_REGIONS[Provider.AWS] == "us-east-1"
        assert DEFAULT_REGIONS[Provider.AZURE] == "WestEurope"
        assert DEFAULT_REGIONS[Provider.GCP] == "europe-west1"


class TestFunctionConfig:
    def test_defaults(self):
        config = FunctionConfig()
        assert config.memory_mb == 256
        assert config.language is Language.PYTHON

    def test_with_memory_returns_copy(self):
        config = FunctionConfig(memory_mb=128)
        bigger = config.with_memory(1024)
        assert bigger.memory_mb == 1024
        assert config.memory_mb == 128

    def test_dynamic_memory_flag(self):
        assert FunctionConfig(memory_mb=DYNAMIC_MEMORY).is_dynamic_memory
        assert not FunctionConfig(memory_mb=512).is_dynamic_memory

    def test_rejects_negative_memory(self):
        with pytest.raises(ConfigurationError):
            FunctionConfig(memory_mb=-1)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigurationError):
            FunctionConfig(timeout_s=0)


class TestSimulationConfig:
    def test_default_network_rtts_match_paper(self):
        sim = SimulationConfig()
        assert sim.network_rtt_ms[Provider.AWS] == pytest.approx(109.0)
        assert sim.network_rtt_ms[Provider.AZURE] == pytest.approx(20.0)
        assert sim.network_rtt_ms[Provider.GCP] == pytest.approx(33.0)

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(seed=-1)

    def test_rejects_bad_time_of_day_factor(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(time_of_day_factor=0.0)


class TestExperimentConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig()
        assert config.samples == 200
        assert config.batch_size == 50
        assert 0.95 in config.confidence_levels and 0.99 in config.confidence_levels
        assert config.target_ci_width == pytest.approx(0.05)

    def test_scaled_reduces_samples(self):
        config = ExperimentConfig(samples=100).scaled(0.1)
        assert config.samples == 10

    def test_scaled_never_drops_below_one(self):
        assert ExperimentConfig(samples=5).scaled(0.01).samples == 1

    @pytest.mark.parametrize("kwargs", [
        {"samples": 0},
        {"batch_size": 0},
        {"confidence_levels": (1.5,)},
        {"target_ci_width": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)


class TestMemorySizes:
    def test_default_sweeps_match_figure3(self):
        assert PERF_COST_MEMORY_SIZES[Provider.AWS] == (128, 256, 512, 1024, 1536, 2048, 3008)
        assert PERF_COST_MEMORY_SIZES[Provider.GCP] == (128, 256, 512, 1024, 2048)
        assert PERF_COST_MEMORY_SIZES[Provider.AZURE] == (DYNAMIC_MEMORY,)

    def test_resolve_defaults(self):
        assert resolve_memory_sizes(Provider.AWS) == PERF_COST_MEMORY_SIZES[Provider.AWS]

    def test_resolve_custom_sizes(self):
        assert resolve_memory_sizes(Provider.AWS, (256, 512)) == (256, 512)

    def test_resolve_azure_always_dynamic(self):
        assert resolve_memory_sizes(Provider.AZURE, (512,)) == (DYNAMIC_MEMORY,)

    def test_resolve_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            resolve_memory_sizes(Provider.AWS, (0,))


class TestConfigToDict:
    def test_serialises_nested_dataclasses_and_enums(self):
        as_dict = config_to_dict(SimulationConfig(seed=3))
        assert as_dict["seed"] == 3
        assert as_dict["network_rtt_ms"]["aws"] == pytest.approx(109.0)

    def test_serialises_tuples(self):
        as_dict = config_to_dict(ExperimentConfig())
        assert as_dict["confidence_levels"] == [0.95, 0.99]
