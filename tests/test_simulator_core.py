"""Tests for the simulator building blocks: containers, eviction, compute, reliability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.base import WorkProfile
from repro.config import DYNAMIC_MEMORY, Provider
from repro.exceptions import PlatformError
from repro.faas.limits import limits_for
from repro.simulator.compute import ComputeModel
from repro.simulator.containers import Container, ContainerPool, ContainerState
from repro.simulator.eviction import AWS_EVICTION_PERIOD_S, HalfLifeEvictionPolicy, IdleTimeoutEvictionPolicy
from repro.simulator.profiles import profile_for
from repro.simulator.reliability import ReliabilityModel


def make_container(created_at=0.0, name="f", version=1, memory=128) -> Container:
    return Container(function_name=name, function_version=version, memory_mb=memory, created_at=created_at)


def make_pool(count: int, created_at: float = 0.0, name: str = "f") -> ContainerPool:
    pool = ContainerPool(name)
    for _ in range(count):
        container = make_container(created_at=created_at, name=name)
        container.mark_warm(created_at)
        pool.add(container)
    return pool


class TestContainer:
    def test_serve_updates_state_and_counters(self):
        container = make_container()
        container.serve(5.0)
        assert container.invocations == 1
        assert container.last_used_at == 5.0
        assert container.is_warm

    def test_evicted_container_cannot_serve(self):
        container = make_container()
        container.evict()
        with pytest.raises(PlatformError):
            container.serve(1.0)
        with pytest.raises(PlatformError):
            container.mark_warm(1.0)

    def test_uptime_and_idle_time(self):
        container = make_container(created_at=10.0)
        container.serve(15.0)
        assert container.uptime(20.0) == 10.0
        assert container.idle_time(20.0) == 5.0

    def test_unique_ids(self):
        assert make_container().container_id != make_container().container_id


class TestContainerPool:
    def test_warm_count_and_version_filter(self):
        pool = ContainerPool("f")
        c1 = make_container(version=1)
        c1.mark_warm(0.0)
        c2 = make_container(version=2)
        c2.mark_warm(0.0)
        pool.add(c1)
        pool.add(c2)
        assert pool.warm_count() == 2
        assert pool.warm_count(version=2) == 1

    def test_rejects_foreign_containers(self):
        pool = ContainerPool("f")
        with pytest.raises(PlatformError):
            pool.add(make_container(name="other"))

    def test_evict_all_and_prune(self):
        pool = make_pool(5)
        assert pool.evict_all() == 5
        assert pool.warm_count() == 0
        assert len(pool) == 5
        pool.prune()
        assert len(pool) == 0

    def test_total_created_counts_history(self):
        pool = make_pool(3)
        pool.evict_all()
        assert pool.total_created() == 3


class TestHalfLifeEviction:
    def test_no_eviction_within_first_period(self):
        policy = HalfLifeEvictionPolicy(period_s=380.0)
        pool = make_pool(20)
        assert policy.apply(pool, now=379.0) == 0
        assert pool.warm_count() == 20

    @pytest.mark.parametrize("d_init,periods,expected", [(20, 1, 10), (20, 2, 5), (20, 3, 2), (8, 1, 4), (8, 3, 1), (12, 2, 3)])
    def test_halving_model(self, d_init, periods, expected):
        policy = HalfLifeEvictionPolicy(period_s=380.0)
        pool = make_pool(d_init)
        policy.apply(pool, now=380.0 * periods + 1.0)
        assert pool.warm_count() == expected

    def test_eviction_is_deterministic(self):
        for _ in range(3):
            policy = HalfLifeEvictionPolicy(period_s=380.0)
            pool = make_pool(16)
            policy.apply(pool, now=381.0)
            assert pool.warm_count() == 8

    def test_default_period_matches_paper(self):
        assert AWS_EVICTION_PERIOD_S == 380.0
        assert HalfLifeEvictionPolicy().period_s == 380.0

    def test_rejects_non_positive_period(self):
        with pytest.raises(Exception):
            HalfLifeEvictionPolicy(period_s=0.0)


class TestIdleTimeoutEviction:
    def test_keeps_recently_used_containers(self):
        policy = IdleTimeoutEvictionPolicy(mean_idle_timeout_s=900.0, jitter_cv=0.0, rng=np.random.default_rng(0))
        pool = make_pool(5)
        assert policy.apply(pool, now=100.0) == 0

    def test_evicts_idle_containers_after_timeout(self):
        policy = IdleTimeoutEvictionPolicy(mean_idle_timeout_s=900.0, jitter_cv=0.0, rng=np.random.default_rng(0))
        pool = make_pool(5)
        assert policy.apply(pool, now=1000.0) == 5

    def test_jitter_makes_evictions_gradual(self):
        policy = IdleTimeoutEvictionPolicy(mean_idle_timeout_s=900.0, jitter_cv=0.6, rng=np.random.default_rng(1))
        pool = make_pool(50)
        policy.apply(pool, now=900.0)
        survivors = pool.warm_count()
        assert 0 < survivors < 50


PROFILE = WorkProfile(
    warm_compute_s=0.1,
    cold_init_s=0.2,
    instructions=1e8,
    cpu_utilization=0.95,
    peak_memory_mb=100.0,
    storage_read_bytes=1024 * 1024,
    storage_write_bytes=1024 * 1024,
    storage_read_requests=1,
    storage_write_requests=1,
    output_bytes=1000,
    code_package_mb=10.0,
)


class TestComputeModel:
    def _model(self, provider=Provider.AWS, seed=0) -> ComputeModel:
        return ComputeModel(profile_for(provider), limits_for(provider), np.random.default_rng(seed))

    def test_cpu_share_plateaus_at_one_vcpu(self):
        model = self._model()
        assert model.cpu_share(1792) == pytest.approx(1.0)
        assert model.cpu_share(3008) == pytest.approx(1.0)
        assert model.cpu_share(896) == pytest.approx(0.5)

    def test_compute_time_decreases_with_memory_until_plateau(self):
        model = self._model()
        t128 = np.median([model.compute_time(PROFILE, 128) for _ in range(50)])
        t1024 = np.median([model.compute_time(PROFILE, 1024) for _ in range(50)])
        t1792 = np.median([model.compute_time(PROFILE, 1792) for _ in range(50)])
        t3008 = np.median([model.compute_time(PROFILE, 3008) for _ in range(50)])
        assert t128 > t1024 > t1792
        assert t3008 == pytest.approx(t1792, rel=0.2)

    def test_dynamic_memory_uses_effective_size(self):
        model = self._model(Provider.AZURE)
        assert model.effective_memory(DYNAMIC_MEMORY) == profile_for(Provider.AZURE).dynamic_memory_effective_mb

    def test_gcp_compute_slower_than_aws(self):
        aws = self._model(Provider.AWS)
        gcp = self._model(Provider.GCP)
        aws_time = np.median([aws.compute_time(PROFILE, 2048) for _ in range(100)])
        gcp_time = np.median([gcp.compute_time(PROFILE, 2048) for _ in range(100)])
        assert gcp_time > aws_time

    def test_cold_init_includes_package_download(self):
        model = self._model()
        small = np.median([model.cold_init_time(PROFILE, 1024, code_package_mb=1.0) for _ in range(50)])
        large = np.median([model.cold_init_time(PROFILE, 1024, code_package_mb=240.0) for _ in range(50)])
        assert large > small

    def test_aws_cold_init_decreases_with_memory(self):
        model = self._model(Provider.AWS)
        low = np.median([model.cold_init_time(PROFILE, 128, 10.0) for _ in range(100)])
        high = np.median([model.cold_init_time(PROFILE, 2048, 10.0) for _ in range(100)])
        assert high < low

    def test_gcp_cold_init_grows_with_memory(self):
        """The paper's surprising finding: high memory hurts GCP cold starts."""
        model = self._model(Provider.GCP)
        low = np.median([model.cold_init_time(PROFILE, 256, 10.0) for _ in range(200)])
        high = np.median([model.cold_init_time(PROFILE, 4096, 10.0) for _ in range(200)])
        assert high > low

    def test_storage_time_scales_with_bytes_and_memory(self):
        model = self._model()
        big_profile = PROFILE.scaled(16.0)
        small_time = np.median([model.storage_time(PROFILE, 1024) for _ in range(50)])
        big_time = np.median([model.storage_time(big_profile, 1024) for _ in range(50)])
        assert big_time > small_time

    def test_memory_used_close_to_profile_peak(self):
        model = self._model()
        samples = [model.memory_used(PROFILE) for _ in range(200)]
        assert np.median(samples) == pytest.approx(100.0, rel=0.1)

    def test_execute_combines_components(self):
        model = self._model()
        sample = model.execute(PROFILE, 1024, cold=True, code_package_mb=10.0)
        assert sample.benchmark_time_s == pytest.approx(sample.compute_time_s + sample.storage_time_s)
        assert sample.cold_init_s > 0
        warm = model.execute(PROFILE, 1024, cold=False, code_package_mb=10.0)
        assert warm.cold_init_s == 0.0


class TestReliabilityModel:
    def _model(self, provider, seed=0, enabled=True):
        return ReliabilityModel(provider, np.random.default_rng(seed), enabled=enabled)

    def test_disabled_model_never_fails(self):
        model = self._model(Provider.GCP, enabled=False)
        decision = model.check(PROFILE, memory_mb=64, memory_used_mb=1000.0, concurrency=100)
        assert not decision.failed

    def test_gcp_kills_overcommitted_memory(self):
        model = self._model(Provider.GCP)
        decision = model.check(PROFILE, memory_mb=64, memory_used_mb=100.0)
        assert decision.failed and decision.reason == "out-of-memory"

    def test_gcp_sporadic_failures_near_the_limit(self):
        """Compression-at-256MB-style failures: a few percent, not all."""
        model = self._model(Provider.GCP)
        profile = WorkProfile(0.1, 0.1, 1e8, 0.9, peak_memory_mb=250.0)
        failures = sum(
            model.check(profile, memory_mb=256, memory_used_mb=250.0).failed for _ in range(1000)
        )
        assert 10 <= failures <= 120

    def test_aws_tolerates_borderline_memory(self):
        model = self._model(Provider.AWS)
        profile = WorkProfile(0.1, 0.1, 1e8, 0.9, peak_memory_mb=250.0)
        failures = sum(
            model.check(profile, memory_mb=256, memory_used_mb=250.0).failed for _ in range(500)
        )
        assert failures == 0

    def test_aws_kills_only_egregious_overcommit(self):
        model = self._model(Provider.AWS)
        assert model.check(PROFILE, memory_mb=128, memory_used_mb=500.0).failed
        assert not model.check(PROFILE, memory_mb=128, memory_used_mb=150.0).failed

    def test_gcp_highmem_burst_availability_failures(self):
        """image-recognition at 4096 MB with 50 concurrent calls: massive error rate."""
        model = self._model(Provider.GCP)
        failures = sum(
            model.check(PROFILE, memory_mb=4096, memory_used_mb=400.0, concurrency=50).failed
            for _ in range(500)
        )
        assert failures > 200

    def test_sequential_invocations_never_hit_burst_failures(self):
        model = self._model(Provider.GCP)
        failures = sum(
            model.check(PROFILE, memory_mb=4096, memory_used_mb=400.0, concurrency=1).failed
            for _ in range(200)
        )
        assert failures == 0

    def test_azure_dynamic_memory_never_oom(self):
        model = self._model(Provider.AZURE)
        assert not model.check(PROFILE, memory_mb=DYNAMIC_MEMORY, memory_used_mb=5000.0).failed
