"""Tests for the constant-memory streaming statistics and replay plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Provider, SimulationConfig, TriggerType
from repro.exceptions import ConfigurationError
from repro.experiments.base import deploy_benchmark
from repro.faas.invocation import InvocationRequest
from repro.faas.platform import LogQueryType
from repro.simulator.providers import create_platform
from repro.stats import (
    P2Quantile,
    ReservoirSample,
    StreamingMoments,
    StreamingSummary,
)
from repro.workload import PoissonArrivals, WorkloadTrace


class TestStreamingMoments:
    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(3)
        data = rng.lognormal(mean=0.0, sigma=0.7, size=5000)
        moments = StreamingMoments()
        for x in data:
            moments.add(float(x))
        assert moments.count == 5000
        assert moments.mean == pytest.approx(float(np.mean(data)), rel=1e-9)
        assert moments.std == pytest.approx(float(np.std(data, ddof=1)), rel=1e-9)
        assert moments.minimum == float(np.min(data))
        assert moments.maximum == float(np.max(data))

    def test_small_samples(self):
        moments = StreamingMoments()
        moments.add(2.0)
        assert moments.variance == 0.0
        moments.add(4.0)
        assert moments.mean == pytest.approx(3.0)
        assert moments.variance == pytest.approx(2.0)


class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.02, 0.25, 0.5, 0.75, 0.95, 0.99])
    def test_converges_on_lognormal_stream(self, p):
        rng = np.random.default_rng(11)
        data = rng.lognormal(mean=0.0, sigma=0.5, size=20000)
        estimator = P2Quantile(p)
        for x in data:
            estimator.add(float(x))
        exact = float(np.percentile(data, p * 100.0))
        assert estimator.value() == pytest.approx(exact, rel=0.05)
        assert estimator.count == 20000

    def test_exact_below_five_samples(self):
        estimator = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            estimator.add(x)
        assert estimator.value() == pytest.approx(3.0)

    def test_rejects_invalid_quantile_and_empty_stream(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(1.5)
        with pytest.raises(ConfigurationError):
            P2Quantile(0.5).value()


class TestReservoirSample:
    def test_keeps_everything_below_capacity(self):
        reservoir = ReservoirSample(10)
        for x in range(7):
            reservoir.add(float(x))
        assert sorted(reservoir.values()) == [float(x) for x in range(7)]

    def test_bounded_and_uniformish(self):
        reservoir = ReservoirSample(100, seed=5)
        for x in range(10000):
            reservoir.add(float(x))
        values = reservoir.values()
        assert len(values) == 100
        assert reservoir.seen == 10000
        # A uniform sample of 0..9999 should span the range, not hug one end.
        assert np.mean(values) == pytest.approx(5000.0, rel=0.25)

    def test_deterministic_for_same_seed(self):
        first, second = ReservoirSample(20, seed=9), ReservoirSample(20, seed=9)
        for x in range(1000):
            first.add(float(x))
            second.add(float(x))
        assert first.values() == second.values()

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            ReservoirSample(0)


class TestStreamingSummary:
    def test_to_summary_shape_and_accuracy(self):
        rng = np.random.default_rng(23)
        data = rng.gamma(shape=2.0, scale=0.1, size=8000)
        streaming = StreamingSummary()
        for x in data:
            streaming.add(float(x))
        summary = streaming.to_summary()
        assert summary.count == 8000
        assert summary.mean == pytest.approx(float(np.mean(data)), rel=1e-9)
        assert summary.median == pytest.approx(float(np.median(data)), rel=0.05)
        assert summary.percentiles[95.0] == pytest.approx(float(np.percentile(data, 95)), rel=0.05)
        assert summary.confidence_intervals == {}
        # Same whisker accessors as the exact summaries.
        assert summary.whisker_low <= summary.median <= summary.whisker_high

    def test_empty_summary_raises(self):
        with pytest.raises(ConfigurationError):
            StreamingSummary().to_summary()


class TestLogRetention:
    def test_history_is_bounded(self):
        platform = create_platform(Provider.AWS, SimulationConfig(seed=1, log_retention=50))
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
        for _ in range(120):
            platform.invoke(fname, payload={})
        times = platform.query_logs(fname, LogQueryType.TIME)
        assert len(times) == 50

    def test_unlimited_by_default(self):
        platform = create_platform(Provider.AWS, SimulationConfig(seed=1))
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
        for _ in range(120):
            platform.invoke(fname, payload={})
        assert len(platform.query_logs(fname, LogQueryType.TIME)) == 120

    def test_rejects_non_positive_retention(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(log_retention=0)


class TestStreamingReplayMode:
    def test_lazy_request_iterable(self):
        """keep_records=False accepts a generator — no trace materialisation."""
        platform = create_platform(Provider.AWS, SimulationConfig(seed=2, log_retention=100))
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)

        def requests():
            timestamp = 0.0
            for _ in range(500):
                timestamp += 0.05
                yield InvocationRequest(
                    function_name=fname, payload={}, trigger=TriggerType.HTTP, submitted_at=timestamp
                )

        result = platform.run_workload(requests(), keep_records=False)
        assert result.invocations == 500
        assert result.records == []
        assert result.total_cost_usd > 0
        assert result.per_function()[fname].invocations == 500

    def test_summary_row_works_without_records(self):
        platform = create_platform(Provider.GCP, SimulationConfig(seed=4))
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
        trace = WorkloadTrace.synthesize(fname, PoissonArrivals(5.0), duration_s=120, rng=4)
        result = platform.run_workload(trace, keep_records=False)
        row = result.summary_row()
        assert row["invocations"] == len(trace)
        assert row["cold_starts"] == result.cold_start_count
        rows = result.to_rows()
        assert rows and rows[0]["function"] == fname
        assert "client_p50_ms" in rows[0]
