"""Tests for the FaaS abstraction layer: limits, billing, packaging, wrapper."""

from __future__ import annotations

import pytest

from repro.benchmarks.base import InputSize
from repro.benchmarks.registry import default_registry
from repro.benchmarks.base import BenchmarkContext
from repro.config import DYNAMIC_MEMORY, FunctionConfig, Language, Provider
from repro.exceptions import ConfigurationError, DeploymentError
from repro.faas.billing import billing_model_for
from repro.faas.function import CodePackage, DeployedFunction
from repro.faas.limits import all_limits, limits_for
from repro.faas.wrapper import FunctionWrapper
from repro.storage.object_store import ObjectStore


class TestLimits:
    def test_table2_time_limits(self):
        assert limits_for(Provider.AWS).time_limit_s == 15 * 60
        assert limits_for(Provider.AZURE).time_limit_s == 10 * 60
        assert limits_for(Provider.GCP).time_limit_s == 9 * 60

    def test_table2_memory_policies(self):
        assert limits_for(Provider.AWS).memory_static
        assert not limits_for(Provider.AZURE).memory_static
        assert limits_for(Provider.GCP).allowed_memory_mb == (128, 256, 512, 1024, 2048, 4096)

    def test_table2_deployment_limits(self):
        assert limits_for(Provider.AWS).deployment_limit_mb == 250
        assert limits_for(Provider.GCP).deployment_limit_mb == 100

    def test_table2_concurrency_limits(self):
        assert limits_for(Provider.AWS).concurrency_limit == 1000
        assert limits_for(Provider.AZURE).concurrency_limit == 200
        assert limits_for(Provider.GCP).concurrency_limit == 100

    def test_validate_memory_aws_range(self):
        limits = limits_for(Provider.AWS)
        limits.validate_memory(128)
        limits.validate_memory(3008)
        with pytest.raises(ConfigurationError):
            limits.validate_memory(64)
        with pytest.raises(ConfigurationError):
            limits.validate_memory(4096)
        with pytest.raises(ConfigurationError):
            limits.validate_memory(DYNAMIC_MEMORY)

    def test_validate_memory_gcp_discrete_sizes(self):
        limits = limits_for(Provider.GCP)
        limits.validate_memory(2048)
        with pytest.raises(ConfigurationError):
            limits.validate_memory(1536)

    def test_validate_memory_azure_dynamic_only(self):
        limits = limits_for(Provider.AZURE)
        limits.validate_memory(DYNAMIC_MEMORY)
        with pytest.raises(ConfigurationError):
            limits.validate_memory(512)

    def test_validate_package(self):
        with pytest.raises(DeploymentError):
            limits_for(Provider.AWS).validate_package(251.0)
        limits_for(Provider.AWS).validate_package(249.0)

    def test_cpu_share_proportional_to_memory(self):
        limits = limits_for(Provider.AWS)
        assert limits.cpu_share(1792) == pytest.approx(1.0)
        assert limits.cpu_share(896) == pytest.approx(0.5)
        assert limits.cpu_share(128) > 0

    def test_cpu_share_full_for_dynamic_memory(self):
        assert limits_for(Provider.AZURE).cpu_share(DYNAMIC_MEMORY) == 1.0

    def test_all_limits_cover_every_provider(self):
        assert set(all_limits()) == set(Provider)


class TestBilling:
    def test_aws_rounds_duration_to_100ms(self):
        billing = billing_model_for(Provider.AWS)
        assert billing.billed_duration(0.050) == pytest.approx(0.1)
        assert billing.billed_duration(0.150) == pytest.approx(0.2)
        assert billing.billed_duration(0.200) == pytest.approx(0.2)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            billing_model_for(Provider.AWS).billed_duration(-1.0)

    def test_aws_bills_declared_memory(self):
        billing = billing_model_for(Provider.AWS)
        assert billing.billed_memory_mb(1024, 150.0) == 1024

    def test_azure_bills_average_memory_rounded_to_128(self):
        # Azure meters the whole function-app instance (kernel + ~600 MB of
        # language-worker host memory), rounded up to 128 MB.
        billing = billing_model_for(Provider.AZURE)
        assert billing.billed_memory_mb(DYNAMIC_MEMORY, 150.0) == 768
        assert billing.billed_memory_mb(DYNAMIC_MEMORY, 300.0) == 1024
        assert billing.billed_memory_mb(DYNAMIC_MEMORY, 150.0) % 128 == 0

    def test_known_aws_invocation_cost(self):
        # 1 GB for exactly 1 s: 1 GB-s at $0.0000166667 plus the request fee.
        billing = billing_model_for(Provider.AWS)
        cost = billing.invocation_cost(1.0, 1024, 500.0, via_http_api=False)
        assert cost.compute_cost == pytest.approx(0.0000166667, rel=1e-6)
        assert cost.request_cost == pytest.approx(0.2 / 1e6, rel=1e-6)

    def test_cost_of_million_scales_linearly_with_memory(self):
        billing = billing_model_for(Provider.AWS)
        small = billing.cost_of_million(1.0, 512, 100.0)
        large = billing.cost_of_million(1.0, 1024, 100.0)
        assert large > small

    def test_rounding_penalises_short_functions(self):
        """A 10 ms function pays for 100 ms — a 10x overcharge (Section 6.3 Q2)."""
        billing = billing_model_for(Provider.AWS)
        short = billing.invocation_cost(0.010, 1024, 100.0, via_http_api=False)
        exact = billing.invocation_cost(0.100, 1024, 100.0, via_http_api=False)
        assert short.compute_cost == pytest.approx(exact.compute_cost)

    def test_http_api_meters_payload_in_512kb_units(self):
        billing = billing_model_for(Provider.AWS)
        small = billing.invocation_cost(0.1, 128, 50.0, output_bytes=10_000, via_http_api=True)
        large = billing.invocation_cost(0.1, 128, 50.0, output_bytes=600 * 1024, via_http_api=True)
        assert large.request_cost > small.request_cost

    def test_egress_cost_higher_on_gcp_than_aws(self):
        """Section 6.3 Q4: returning data costs ~$1/M on AWS vs ~$9/M on GCP."""
        output = 78 * 1024  # graph-bfs response size
        aws = billing_model_for(Provider.AWS).invocation_cost(0.1, 128, 50.0, output_bytes=output)
        gcp = billing_model_for(Provider.GCP).invocation_cost(0.1, 128, 50.0, output_bytes=output)
        aws_transfer = (aws.request_cost + aws.egress_cost) * 1e6
        gcp_transfer = (gcp.request_cost + gcp.egress_cost) * 1e6
        assert gcp_transfer > 2 * aws_transfer

    def test_iaas_billing_is_duration_times_hourly_price(self):
        billing = billing_model_for(Provider.IAAS)
        cost = billing.invocation_cost(3600.0, 1024, 1024.0)
        assert cost.total == pytest.approx(0.0116)
        assert billing.hourly_cost() == pytest.approx(0.0116)

    def test_cost_breakdown_addition_and_scaling(self):
        billing = billing_model_for(Provider.AWS)
        one = billing.invocation_cost(0.5, 512, 100.0)
        two = one + one
        assert two.total == pytest.approx(2 * one.total)
        assert one.scaled(10).total == pytest.approx(10 * one.total)


class TestCodePackage:
    def test_size_bytes(self):
        package = CodePackage(benchmark="x", language=Language.PYTHON, size_mb=2.0)
        assert package.size_bytes == 2 * 1024 * 1024

    def test_with_size_creates_copy(self):
        package = CodePackage(benchmark="x", language=Language.PYTHON, size_mb=2.0)
        bigger = package.with_size(250.0)
        assert bigger.size_mb == 250.0 and package.size_mb == 2.0
        assert bigger.benchmark == "x"

    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigurationError):
            CodePackage(benchmark="x", language=Language.PYTHON, size_mb=0.0)

    def test_deployed_function_version_bump(self):
        package = CodePackage(benchmark="x", language=Language.PYTHON, size_mb=1.0)
        function = DeployedFunction(
            name="f", benchmark="x", package=package, config=FunctionConfig(), platform="aws"
        )
        assert function.version == 1
        function.bump_version(10.0)
        assert function.version == 2 and function.updated_at == 10.0


class TestFunctionWrapper:
    def test_wrapper_measures_real_execution(self):
        registry = default_registry()
        benchmark = registry.get("dynamic-html")
        context = BenchmarkContext(storage=ObjectStore())
        event = benchmark.generate_input(InputSize.TEST, context)
        wrapper = FunctionWrapper(benchmark, context)
        measurement = wrapper.invoke(event, is_cold=True, container_uptime_s=0.0)
        assert measurement.execution_time_s > 0
        assert measurement.output_bytes > 0
        assert measurement.is_cold
        assert measurement.benchmark == "dynamic-html"
        assert '"compute_time_s"' in measurement.to_json()

    def test_wrapper_counts_invocations_in_sandbox(self):
        registry = default_registry()
        benchmark = registry.get("dynamic-html")
        context = BenchmarkContext(storage=ObjectStore())
        event = benchmark.generate_input(InputSize.TEST, context)
        wrapper = FunctionWrapper(benchmark, context)
        wrapper.invoke(event)
        wrapper.invoke(event)
        assert wrapper.invocations_in_sandbox == 2

    def test_wrapper_rejects_non_mapping_payload(self):
        registry = default_registry()
        benchmark = registry.get("dynamic-html")
        wrapper = FunctionWrapper(benchmark, BenchmarkContext(storage=ObjectStore()))
        with pytest.raises(Exception):
            wrapper.invoke("not-a-mapping")  # type: ignore[arg-type]
