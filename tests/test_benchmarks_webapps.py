"""Tests for the web-application benchmarks: dynamic-html and uploader."""

from __future__ import annotations

import hashlib

import pytest

from repro.benchmarks.base import InputSize
from repro.benchmarks.webapps.dynamic_html import DynamicHtmlBenchmark, render_template
from repro.benchmarks.webapps.uploader import UploaderBenchmark, synthesize_download
from repro.config import Language
from repro.exceptions import BenchmarkError


class TestTemplateEngine:
    def test_scalar_substitution(self):
        assert render_template("Hello {{ name }}!", {"name": "SeBS"}) == "Hello SeBS!"

    def test_loop_expansion(self):
        result = render_template("{% for x in items %}[{{ x }}]{% endfor %}", {"items": [1, 2, 3]})
        assert result == "[1][2][3]"

    def test_empty_sequence_produces_nothing(self):
        assert render_template("{% for x in items %}x{% endfor %}", {"items": []}) == ""

    def test_missing_sequence_treated_as_empty(self):
        assert render_template("{% for x in items %}x{% endfor %}", {}) == ""

    def test_malformed_loop_rejected(self):
        with pytest.raises(BenchmarkError):
            render_template("{% for x in items %}x", {"items": [1]})

    def test_nested_scalars_inside_loop_body(self):
        result = render_template("{% for n in ns %}{{ n }},{% endfor %}{{ tail }}", {"ns": [7, 8], "tail": "end"})
        assert result == "7,8,end"


class TestDynamicHtml:
    def test_generate_input_has_expected_fields(self, context):
        benchmark = DynamicHtmlBenchmark()
        event = benchmark.generate_input(InputSize.SMALL, context)
        assert event["random_len"] == 1000
        assert "seed" in event and "username" in event

    def test_run_produces_html_of_reported_size(self, context):
        benchmark = DynamicHtmlBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["size"] > 0
        assert result["preview"].startswith("<!DOCTYPE html>")

    def test_run_is_deterministic_for_fixed_seed(self, context):
        benchmark = DynamicHtmlBenchmark()
        event = {"username": "u", "random_len": 50, "seed": 7}
        first = benchmark.run(event, context)
        second = benchmark.run(event, context)
        assert first["checksum"] == second["checksum"]
        assert first["size"] == second["size"]

    def test_larger_input_produces_larger_page(self, context):
        benchmark = DynamicHtmlBenchmark()
        small = benchmark.run({"username": "u", "random_len": 10, "seed": 1}, context)
        large = benchmark.run({"username": "u", "random_len": 1000, "seed": 1}, context)
        assert large["size"] > small["size"]

    def test_rejects_non_positive_length(self, context):
        benchmark = DynamicHtmlBenchmark()
        with pytest.raises(BenchmarkError):
            benchmark.run({"random_len": 0, "seed": 1}, context)

    def test_profile_matches_table4_shape(self):
        benchmark = DynamicHtmlBenchmark()
        python = benchmark.profile(language=Language.PYTHON)
        node = benchmark.profile(language=Language.NODEJS)
        assert python.warm_compute_s == pytest.approx(0.00119, rel=0.01)
        assert node.warm_compute_s < python.warm_compute_s
        assert python.cpu_utilization > 0.99

    def test_profile_scales_with_input_size(self):
        benchmark = DynamicHtmlBenchmark()
        small = benchmark.profile(InputSize.SMALL)
        large = benchmark.profile(InputSize.LARGE)
        assert large.warm_compute_s > small.warm_compute_s


class TestUploader:
    def test_synthesize_download_deterministic(self):
        a = synthesize_download("https://example.org/x", 1000)
        b = synthesize_download("https://example.org/x", 1000)
        assert a == b and len(a) == 1000

    def test_synthesize_download_depends_on_url(self):
        assert synthesize_download("u1", 64) != synthesize_download("u2", 64)

    def test_synthesize_download_rejects_negative_size(self):
        with pytest.raises(BenchmarkError):
            synthesize_download("u", -1)

    def test_run_uploads_to_storage_with_correct_checksum(self, context):
        benchmark = UploaderBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        stored = context.storage.download(result["bucket"], result["key"])
        assert len(stored) == event["download_bytes"]
        assert hashlib.sha256(stored).hexdigest() == result["sha256"]

    def test_input_sizes_scale_download(self, context):
        benchmark = UploaderBenchmark()
        small = benchmark.generate_input(InputSize.SMALL, context)
        large = benchmark.generate_input(InputSize.LARGE, context)
        assert large["download_bytes"] > small["download_bytes"]

    def test_profile_is_io_bound(self):
        profile = UploaderBenchmark().profile()
        assert profile.io_bound
        assert profile.storage_write_bytes == profile.storage_read_bytes
        assert profile.cpu_utilization == pytest.approx(0.34)

    def test_profile_memory_grows_with_download(self):
        benchmark = UploaderBenchmark()
        assert benchmark.profile(InputSize.LARGE).peak_memory_mb > benchmark.profile(InputSize.SMALL).peak_memory_mb
