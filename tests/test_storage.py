"""Tests for the storage substrate: object store, ephemeral store, metering, latency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BucketNotFoundError, ObjectNotFoundError, StorageError
from repro.storage.ephemeral import EphemeralStore
from repro.storage.latency import StorageLatencyModel, StorageProfile
from repro.storage.metering import MeteredWindow, StorageMetering
from repro.storage.object_store import ObjectStore


class TestObjectStore:
    def test_create_bucket_and_upload_download(self, store):
        store.upload("data", "a/b.txt", b"hello")
        assert store.download("data", "a/b.txt") == b"hello"

    def test_create_bucket_exist_ok(self, store):
        first = store.create_bucket("b")
        second = store.create_bucket("b")
        assert first is second

    def test_create_bucket_conflict(self, store):
        store.create_bucket("b")
        with pytest.raises(StorageError):
            store.create_bucket("b", exist_ok=False)

    def test_missing_bucket_raises(self, store):
        with pytest.raises(BucketNotFoundError):
            store.bucket("nope")

    def test_missing_object_raises(self, store):
        store.create_bucket("b")
        with pytest.raises(ObjectNotFoundError):
            store.download("b", "missing")

    def test_overwrite_replaces_content(self, store):
        store.upload("b", "k", b"one")
        store.upload("b", "k", b"two")
        assert store.download("b", "k") == b"two"

    def test_list_objects_prefix_filter(self, store):
        store.upload("b", "img/1", b"x")
        store.upload("b", "img/2", b"y")
        store.upload("b", "doc/1", b"z")
        assert store.list_objects("b", "img/") == ["img/1", "img/2"]

    def test_delete_object(self, store):
        store.upload("b", "k", b"x")
        store.bucket("b").delete("k")
        assert not store.bucket("b").exists("k")

    def test_delete_missing_object_raises(self, store):
        store.create_bucket("b")
        with pytest.raises(ObjectNotFoundError):
            store.bucket("b").delete("k")

    def test_bucket_total_size(self, store):
        store.upload("b", "k1", b"abcd")
        store.upload("b", "k2", b"ef")
        assert store.bucket("b").total_size() == 6
        assert store.total_size() == 6

    def test_metering_counts_requests_and_bytes(self, store):
        store.upload("b", "k", b"12345")
        store.download("b", "k")
        store.list_objects("b")
        metering = store.metering
        assert metering.write_requests == 1
        assert metering.read_requests == 1
        assert metering.list_requests == 1
        assert metering.bytes_written == 5
        assert metering.bytes_read == 5

    def test_clear_resets_everything(self, store):
        store.upload("b", "k", b"x")
        store.clear()
        assert store.list_buckets() == []
        assert store.metering.total_requests == 0

    def test_rejects_empty_names(self, store):
        with pytest.raises(StorageError):
            store.create_bucket("")
        with pytest.raises(StorageError):
            store.upload("b", "", b"x")

    def test_rejects_non_bytes_payload(self, store):
        with pytest.raises(StorageError):
            store.upload("b", "k", "not-bytes")  # type: ignore[arg-type]

    def test_delete_bucket(self, store):
        store.create_bucket("b")
        store.delete_bucket("b")
        assert "b" not in store
        with pytest.raises(BucketNotFoundError):
            store.delete_bucket("b")


class TestEphemeralStore:
    def test_set_get_delete(self):
        kv = EphemeralStore()
        kv.set("key", b"value")
        assert kv.get("key") == b"value"
        assert kv.delete("key") is True
        assert kv.get("key") is None
        assert kv.delete("key") is False

    def test_expiry(self):
        kv = EphemeralStore()
        kv.set("key", b"value", expire_at=10.0)
        assert kv.get("key", now=5.0) == b"value"
        assert kv.get("key", now=10.0) is None

    def test_capacity_limit(self):
        kv = EphemeralStore(capacity_bytes=10)
        kv.set("a", b"12345")
        with pytest.raises(StorageError):
            kv.set("b", b"123456789")

    def test_capacity_accounts_for_replacement(self):
        kv = EphemeralStore(capacity_bytes=10)
        kv.set("a", b"1234567890")
        kv.set("a", b"abcdefghij")  # replacing the same key must be allowed
        assert kv.get("a") == b"abcdefghij"

    def test_keys_sorted(self):
        kv = EphemeralStore()
        kv.set("b", b"1")
        kv.set("a", b"2")
        assert kv.keys() == ["a", "b"]
        assert list(kv) == ["a", "b"]
        assert len(kv) == 2

    def test_rejects_bad_inputs(self):
        kv = EphemeralStore()
        with pytest.raises(StorageError):
            kv.set("", b"x")
        with pytest.raises(StorageError):
            kv.set("k", "not-bytes")  # type: ignore[arg-type]
        with pytest.raises(StorageError):
            EphemeralStore(capacity_bytes=0)


class TestMetering:
    def test_snapshot_and_delta(self):
        metering = StorageMetering()
        metering.record_read(100)
        snapshot = metering.snapshot()
        metering.record_write(50)
        delta = metering.delta(snapshot)
        assert delta.bytes_written == 50
        assert delta.bytes_read == 0
        assert delta.write_requests == 1

    def test_metered_window(self):
        metering = StorageMetering()
        window = MeteredWindow(metering)
        metering.record_read(10)
        metering.record_list()
        delta = window.close()
        assert delta.read_requests == 1
        assert delta.list_requests == 1
        assert delta.total_requests == 2

    def test_reset(self):
        metering = StorageMetering()
        metering.record_write(1)
        metering.reset()
        assert metering.total_bytes == 0 and metering.total_requests == 0


class TestStorageLatencyModel:
    def _model(self, **kwargs):
        profile = StorageProfile(jitter_cv=0.0, contention_tail_probability=0.0, **kwargs)
        return StorageLatencyModel(profile, np.random.default_rng(0))

    def test_bandwidth_scales_with_memory_until_reference(self):
        model = self._model(reference_memory_mb=1024, peak_bandwidth_mbps=100.0)
        assert model.bandwidth_mbps(512) == pytest.approx(50.0)
        assert model.bandwidth_mbps(1024) == pytest.approx(100.0)
        assert model.bandwidth_mbps(2048) == pytest.approx(100.0)

    def test_small_memory_keeps_minimum_share(self):
        model = self._model(reference_memory_mb=2048, peak_bandwidth_mbps=100.0)
        assert model.bandwidth_mbps(64) == pytest.approx(10.0)

    def test_dynamic_memory_uses_reference_bandwidth(self):
        model = self._model(reference_memory_mb=1024, peak_bandwidth_mbps=80.0)
        assert model.bandwidth_mbps(0) == pytest.approx(80.0)

    def test_transfer_time_grows_with_bytes(self):
        model = self._model()
        small = model.transfer_time(1024, 1024)
        large = model.transfer_time(50 * 1024 * 1024, 1024)
        assert large > small

    def test_transfer_time_decreases_with_memory(self):
        model = self._model(reference_memory_mb=2048)
        slow = model.transfer_time(10 * 1024 * 1024, 128)
        fast = model.transfer_time(10 * 1024 * 1024, 2048)
        assert fast < slow

    def test_contention_creates_long_tail(self):
        profile = StorageProfile(jitter_cv=0.0, contention_tail_probability=0.5, contention_slowdown=10.0)
        model = StorageLatencyModel(profile, np.random.default_rng(0))
        times = [model.transfer_time(1024 * 1024, 1024) for _ in range(200)]
        assert max(times) > 3 * min(times)

    def test_rejects_negative_bytes(self):
        model = self._model()
        with pytest.raises(Exception):
            model.transfer_time(-1, 1024)

    def test_request_time_is_positive(self):
        assert self._model().request_time(1024) > 0
