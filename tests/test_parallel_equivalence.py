"""Sharded parallel replay must equal serial replay — bit for bit.

The contract pinned here (see ``docs/architecture.md``, "Parallel replay &
determinism"):

* **record mode** — the merged record list of a sharded replay is
  ``==``-identical to the serial one, for every provider × arrival pattern,
  on both backends and any worker count;
* **streaming mode** — merged accumulators equal the serial streaming
  aggregates *exactly* for counts, cost sums, span, min/max and the
  per-function percentile state (each function lives in one shard, so even
  the reservoir-backed percentiles are byte-identical);
* **workflows** — per-execution results (sorted by execution index) and all
  merged totals equal serial replay, including the hash-seeded trigger-edge
  delays, because global execution indices ride along with the shards.

``peak_in_flight`` is exempt only in streaming mode (max-over-shards lower
bound) and ``wall_clock_s`` always (it is a measurement).
"""

from __future__ import annotations

import pytest

from repro.config import Provider, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.experiments.base import deploy_benchmark
from repro.parallel import PlatformSnapshot, ShardPlanner
from repro.simulator.providers import create_platform
from repro.workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    PoissonArrivals,
    WorkloadTrace,
)
from repro.workload.scenario import standard_scenario
from repro.workflows import standard_workflow, synthesize_workflow_arrivals
from repro.workflows.spec import merge_workflow_arrivals

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)
PATTERNS = ("poisson", "bursty", "constant")

_PROCESSES = {
    "poisson": lambda: PoissonArrivals(6.0),
    "bursty": lambda: BurstyArrivals(on_rate_per_s=20.0, mean_on_s=4.0, mean_off_s=10.0),
    "constant": lambda: ConstantRateArrivals(5.0),
}

_DEPLOYMENTS = (
    ("web", "dynamic-html", 256),
    ("thumbs", "thumbnailer", 1024),
    ("arch", "compression", 1024),
)


def _platform(provider: Provider, seed: int = 7):
    platform = create_platform(provider, SimulationConfig(seed=seed))
    for fname, benchmark, memory_mb in _DEPLOYMENTS:
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _trace(pattern: str, duration_s: float = 60.0):
    traces = [
        WorkloadTrace.synthesize(
            fname, _PROCESSES[pattern](), duration_s=duration_s, rng=300 + index
        )
        for index, (fname, _, _) in enumerate(_DEPLOYMENTS)
    ]
    return WorkloadTrace.merge(*traces)


def _assert_streaming_equal(serial, parallel, check_peak: bool = False) -> None:
    """Every merged streaming statistic (except wall clock) equals serial."""
    assert parallel.records == []
    assert parallel.invocations == serial.invocations
    assert parallel.cold_start_total == serial.cold_start_total
    assert parallel.failure_total == serial.failure_total
    assert parallel.total_cost_usd == serial.total_cost_usd  # exact, sorted-name reduction
    assert parallel.simulated_span_s == serial.simulated_span_s
    if check_peak:
        assert parallel.peak_in_flight == serial.peak_in_flight
    serial_fns = serial.per_function()
    parallel_fns = parallel.per_function()
    assert set(parallel_fns) == set(serial_fns)
    for fname, serial_summary in serial_fns.items():
        parallel_summary = parallel_fns[fname]
        assert parallel_summary.invocations == serial_summary.invocations
        assert parallel_summary.cold_starts == serial_summary.cold_starts
        assert parallel_summary.failures == serial_summary.failures
        assert parallel_summary.total_cost_usd == serial_summary.total_cost_usd
        serial_dist = serial_summary.client_time
        parallel_dist = parallel_summary.client_time
        assert parallel_dist.count == serial_dist.count
        assert parallel_dist.minimum == serial_dist.minimum
        assert parallel_dist.maximum == serial_dist.maximum
        assert parallel_dist.mean == serial_dist.mean
        assert parallel_dist.std == serial_dist.std
        # Per-function sharding: the whole stream lives in one shard, so
        # even the sampled percentile state is bit-identical.
        assert parallel_dist.median == serial_dist.median
        assert parallel_dist.percentiles == serial_dist.percentiles


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_workers1_sequential_backend_is_bit_identical(provider, pattern):
    trace = _trace(pattern)
    serial = _platform(provider).run_workload(trace)
    sharded = _platform(provider).run_workload(trace, workers=1)
    assert sharded.records == serial.records
    assert sharded.peak_in_flight == serial.peak_in_flight
    assert sharded.simulated_span_s == serial.simulated_span_s
    assert sharded.total_cost_usd == serial.total_cost_usd


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_workers4_streaming_merge_equals_serial(provider, pattern):
    trace = _trace(pattern)
    serial = _platform(provider).run_workload(trace, keep_records=False)
    parallel = _platform(provider).run_workload(
        trace, keep_records=False, workers=4, backend="sequential"
    )
    _assert_streaming_equal(serial, parallel)


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_process_backend_matches_serial_records(provider):
    """The multiprocessing backend changes nothing — only wall clock."""
    trace = _trace("poisson")
    serial = _platform(provider).run_workload(trace)
    parallel = _platform(provider).run_workload(trace, workers=2, backend="process")
    assert parallel.records == serial.records
    assert parallel.peak_in_flight == serial.peak_in_flight


def test_process_backend_matches_serial_streaming():
    trace = _trace("bursty")
    serial = _platform(Provider.GCP).run_workload(trace, keep_records=False)
    parallel = _platform(Provider.GCP).run_workload(trace, keep_records=False, workers=3)
    _assert_streaming_equal(serial, parallel)


def test_scenario_recipe_sharding_matches_trace_replay():
    """Workers synthesizing their own shards reproduce the built trace."""
    scenario = standard_scenario("mixed", [f for f, _, _ in _DEPLOYMENTS], duration_s=90.0, rate_per_s=4.0)
    platform = _platform(Provider.AWS, seed=42)
    serial = platform.run_workload(scenario.build_trace(seed=42), keep_records=False)
    parallel = _platform(Provider.AWS, seed=42).run_workload(
        scenario, keep_records=False, workers=3
    )
    _assert_streaming_equal(serial, parallel)


def test_scenario_sharding_requires_streaming_mode():
    scenario = standard_scenario("poisson", ["web"], duration_s=10.0)
    with pytest.raises(ConfigurationError, match="streaming-only"):
        _platform(Provider.AWS).run_workload(scenario, workers=2)


# --------------------------------------------------------------- workflows
def _workflow_arrivals():
    spec_a, _ = standard_workflow("pipeline")
    spec_b, _ = standard_workflow("fanout", fan_out=3)
    arrivals_a = synthesize_workflow_arrivals(spec_a, PoissonArrivals(1.5), duration_s=50, rng=1)
    arrivals_b = synthesize_workflow_arrivals(spec_b, PoissonArrivals(1.5), duration_s=50, rng=2)
    return merge_workflow_arrivals(arrivals_a, arrivals_b)


def _workflow_platform(provider: Provider):
    platform = create_platform(provider, SimulationConfig(seed=11))
    deployed = set()
    for workflow in ("pipeline", "fanout"):
        _, functions = standard_workflow(workflow, fan_out=3)
        for function in functions:
            if function.function_name in deployed:
                continue
            deployed.add(function.function_name)
            deploy_benchmark(
                platform,
                function.benchmark,
                memory_mb=function.memory_mb if platform.limits.memory_static else 0,
                function_name=function.function_name,
            )
    return platform


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_workflow_sharded_replay_matches_serial(provider):
    arrivals = _workflow_arrivals()
    serial = _workflow_platform(provider).run_workflows(arrivals)
    parallel = _workflow_platform(provider).run_workflows(arrivals, workers=2)
    # Serial yields executions in completion order, sharded merge in
    # canonical index order; the *sets of per-execution results* are equal.
    assert sorted(serial.executions, key=lambda r: r.execution_index) == parallel.executions
    assert parallel.execution_count == serial.execution_count
    assert parallel.invocation_total == serial.invocation_total
    assert parallel.cold_start_total == serial.cold_start_total
    assert parallel.failure_total == serial.failure_total
    assert parallel.cost_usd_total == serial.cost_usd_total
    assert parallel.compute_s_total == serial.compute_s_total
    assert parallel.cold_start_s_total == serial.cold_start_s_total
    assert parallel.trigger_propagation_s_total == serial.trigger_propagation_s_total
    assert parallel.end_to_end_s_total == serial.end_to_end_s_total
    assert parallel.simulated_span_s == serial.simulated_span_s
    # peak_in_flight is deliberately NOT compared: workflow results carry no
    # constituent intervals, so the merge reports the max over shards — a
    # documented lower bound on the serial cross-component peak.
    assert parallel.peak_in_flight <= serial.peak_in_flight


def test_workflow_sharded_streaming_matches_serial():
    arrivals = _workflow_arrivals()
    serial = _workflow_platform(Provider.AWS).run_workflows(arrivals, keep_records=False)
    parallel = _workflow_platform(Provider.AWS).run_workflows(
        arrivals, keep_records=False, workers=2
    )
    assert parallel.executions == []
    assert parallel.cost_usd_total == serial.cost_usd_total
    assert parallel.end_to_end_s_total == serial.end_to_end_s_total
    assert set(parallel.summaries) == set(serial.summaries)
    for name, serial_summary in serial.summaries.items():
        parallel_summary = parallel.summaries[name]
        assert parallel_summary.executions == serial_summary.executions
        assert parallel_summary.invocations == serial_summary.invocations
        assert parallel_summary.cost_usd == serial_summary.cost_usd
        assert parallel_summary.end_to_end.median == serial_summary.end_to_end.median
        assert parallel_summary.end_to_end.percentiles == serial_summary.end_to_end.percentiles


def test_workflow_specs_sharing_functions_stay_in_one_shard():
    """Union-find grouping: shared functions force a common shard."""
    spec_a, _ = standard_workflow("pipeline")
    spec_b, _ = standard_workflow("fanout")
    arrivals = merge_workflow_arrivals(
        synthesize_workflow_arrivals(spec_a, PoissonArrivals(2.0), duration_s=20, rng=5),
        synthesize_workflow_arrivals(spec_b, PoissonArrivals(2.0), duration_s=20, rng=6),
    )
    shards = ShardPlanner().plan_workflows(arrivals, workers=4)
    # Disjoint function sets: two components, at most two shards.
    assert len(shards) == 2
    functions_by_shard = [set(shard.functions) for shard in shards]
    assert not functions_by_shard[0] & functions_by_shard[1]
    # Force an overlap: a spec reusing a pipeline function joins everything.
    from repro.workflows.spec import WorkflowSpec, WorkflowStage

    bridge = WorkflowSpec(
        name="bridge",
        stages=(
            WorkflowStage("a", "wf-ingest"),
            WorkflowStage("b", "wf-split", after=("a",)),
        ),
    )
    bridged = merge_workflow_arrivals(
        list(arrivals),
        synthesize_workflow_arrivals(bridge, PoissonArrivals(1.0), duration_s=20, rng=7),
    )
    assert len(ShardPlanner().plan_workflows(bridged, workers=4)) == 1


# ------------------------------------------------------------- plumbing
def test_shard_planner_balances_by_invocation_count():
    requests = list(_trace("constant", duration_s=120.0))
    shards = ShardPlanner().plan_trace(iter(requests), workers=2)
    assert len(shards) == 2
    total = sum(len(shard.requests) for shard in shards)
    assert total == len(requests)
    weights = sorted(shard.weight for shard in shards)
    # 3 equal-rate functions into 2 buckets: LPT puts 2 in one, 1 in the other.
    assert weights[1] <= 2.1 * weights[0]
    # Deterministic: planning twice yields the same partition.
    again = ShardPlanner().plan_trace(iter(requests), workers=2)
    assert [shard.functions for shard in shards] == [shard.functions for shard in again]


def test_snapshot_preserves_subclass_constructor_state():
    """IaaS use_cloud_storage must survive the worker rebuild — dropping it
    silently swapped S3 latency for local disk in sharded replays."""
    from repro.simulator.iaas import IaaSPlatform

    def fresh():
        platform = IaaSPlatform(simulation=SimulationConfig(seed=3), use_cloud_storage=True)
        deploy_benchmark(platform, "thumbnailer", memory_mb=1024, function_name="vm-thumb")
        deploy_benchmark(platform, "compression", memory_mb=1024, function_name="vm-zip")
        return platform

    trace = WorkloadTrace.merge(
        WorkloadTrace.synthesize("vm-thumb", PoissonArrivals(4.0), duration_s=20, rng=61),
        WorkloadTrace.synthesize("vm-zip", PoissonArrivals(4.0), duration_s=20, rng=62),
    )
    rebuilt = PlatformSnapshot.capture(fresh()).build()
    assert rebuilt.use_cloud_storage is True
    serial = fresh().run_workload(trace)
    sharded = fresh().run_workload(trace, workers=2, backend="sequential")
    assert sharded.records == serial.records


def test_snapshot_refuses_used_platform():
    platform = _platform(Provider.AWS)
    platform.invoke("web", payload={})
    with pytest.raises(ConfigurationError, match="freshly deployed"):
        PlatformSnapshot.capture(platform)


def test_snapshot_refuses_kernel_execution():
    platform = create_platform(Provider.AWS, SimulationConfig(seed=1), execute_kernels=True)
    with pytest.raises(ConfigurationError, match="execute_kernels"):
        PlatformSnapshot.capture(platform)


def test_parallel_replay_does_not_mutate_parent_platform():
    platform = _platform(Provider.AWS)
    platform.run_workload(_trace("poisson"), workers=2)
    # Still fresh: a snapshot (which refuses used platforms) succeeds.
    PlatformSnapshot.capture(platform)
    assert platform.clock.now() == 0.0


def test_same_named_specs_share_a_shard():
    """Accumulators (and reservoir tag streams) are keyed by workflow name,
    so two distinct specs named alike must not split across shards even
    when their function sets are disjoint."""
    from repro.workflows.spec import WorkflowSpec, WorkflowStage

    twin_a = WorkflowSpec(name="etl", stages=(WorkflowStage("s", "wf-ingest"),))
    twin_b = WorkflowSpec(name="etl", stages=(WorkflowStage("s", "wf-split"),))
    arrivals = merge_workflow_arrivals(
        synthesize_workflow_arrivals(twin_a, PoissonArrivals(2.0), duration_s=20, rng=8),
        synthesize_workflow_arrivals(twin_b, PoissonArrivals(2.0), duration_s=20, rng=9),
    )
    assert len(ShardPlanner().plan_workflows(arrivals, workers=4)) == 1


# ------------------------------------------------------------- overload
def _overload_platform(provider: Provider, seed: int = 7):
    """The standard deployment under a tight concurrency cap."""
    from repro.concurrency import OverloadConfig

    overload = OverloadConfig(
        reserved_concurrency=3,
        max_retries=2,
        admission_queue_depth=50,
        admission_max_age_s=5.0,
    )
    platform = create_platform(provider, SimulationConfig(seed=seed, overload=overload))
    for fname, benchmark, memory_mb in _DEPLOYMENTS:
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _overload_trace(duration_s: float = 45.0):
    """Sync-heavy traffic on two functions plus an async queue source."""
    from repro.config import TriggerType

    return WorkloadTrace.merge(
        WorkloadTrace.synthesize("web", PoissonArrivals(25.0), duration_s=duration_s, rng=401),
        WorkloadTrace.synthesize("thumbs", PoissonArrivals(20.0), duration_s=duration_s, rng=402),
        WorkloadTrace.synthesize(
            "arch",
            PoissonArrivals(20.0),
            duration_s=duration_s,
            rng=403,
            trigger=TriggerType.QUEUE,
        ),
    )


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
@pytest.mark.parametrize("backend", ("sequential", "process"))
def test_overloaded_replay_workers4_is_bit_identical(provider, backend):
    """Acceptance: an overloaded trace sharded over 4 workers replays
    bit-identically — throttle, retry and admission-queue state is per
    function, so it shards exactly like the unthrottled scheduler state."""
    trace = _overload_trace()
    serial = _overload_platform(provider).run_workload(trace)
    assert serial.throttled_count > 0  # the cap actually bites
    sharded = _overload_platform(provider).run_workload(
        trace, workers=4, backend=backend
    )
    assert sharded.records == serial.records
    assert sharded.peak_in_flight == serial.peak_in_flight
    assert sharded.simulated_span_s == serial.simulated_span_s
    assert sharded.total_cost_usd == serial.total_cost_usd


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_overloaded_streaming_counters_merge_exactly(provider):
    """Acceptance: throttle/drop/queue-delay counters merge exactly."""
    trace = _overload_trace()
    serial = _overload_platform(provider).run_workload(trace, keep_records=False)
    parallel = _overload_platform(provider).run_workload(
        trace, keep_records=False, workers=4, backend="sequential"
    )
    _assert_streaming_equal(serial, parallel)
    for attribute in (
        "throttled_count",
        "dropped_count",
        "retry_count",
        "queued_total",
        "queue_delay_s",
        "throttle_event_total",
    ):
        assert getattr(parallel, attribute) == getattr(serial, attribute), attribute
    serial_fns, parallel_fns = serial.per_function(), parallel.per_function()
    for fname, serial_summary in serial_fns.items():
        parallel_summary = parallel_fns[fname]
        assert parallel_summary.throttled == serial_summary.throttled
        assert parallel_summary.dropped == serial_summary.dropped
        assert parallel_summary.retries == serial_summary.retries
        assert parallel_summary.queued == serial_summary.queued
        # Exact float equality: one shard owns the whole function stream.
        assert parallel_summary.queue_delay_s == serial_summary.queue_delay_s


def test_overloaded_workflow_sharded_replay_matches_serial():
    """Workflow components replayed under a cap still merge exactly."""
    from repro.concurrency import OverloadConfig

    def build():
        overload = OverloadConfig(reserved_concurrency=2, max_retries=1)
        platform = create_platform(
            Provider.AWS, SimulationConfig(seed=11, overload=overload)
        )
        deployed = set()
        for workflow in ("pipeline", "fanout"):
            _, functions = standard_workflow(workflow, fan_out=3)
            for function in functions:
                if function.function_name in deployed:
                    continue
                deployed.add(function.function_name)
                deploy_benchmark(
                    platform,
                    function.benchmark,
                    memory_mb=function.memory_mb,
                    function_name=function.function_name,
                )
        return platform

    arrivals = _workflow_arrivals()
    serial = build().run_workflows(arrivals)
    assert serial.failure_total > 0  # the cap sheds some stage tasks
    parallel = build().run_workflows(arrivals, workers=2)
    assert sorted(serial.executions, key=lambda r: r.execution_index) == parallel.executions
    assert parallel.failure_total == serial.failure_total
    assert parallel.cost_usd_total == serial.cost_usd_total
    assert parallel.end_to_end_s_total == serial.end_to_end_s_total


# ------------------------------------------------------------ fault storms
def _chaos_platform(provider: Provider, seed: int = 7):
    """The standard deployment under the full fault + resilience stack:
    a tight concurrency cap, a region outage, a partial-zone crash, a
    latency storm, jittered window boundaries, circuit breakers, hedging
    and a staleness deadline with client resubmission — every new
    mechanism active at once."""
    from repro.concurrency import OverloadConfig
    from repro.faults import ContainerCrash, FaultPlaneConfig, LatencyStorm, OutageWindow
    from repro.resilience import CircuitBreakerConfig, HedgeConfig, ResilienceConfig

    overload = OverloadConfig(
        reserved_concurrency=4,
        max_retries=3,
        admission_queue_depth=50,
        admission_max_age_s=5.0,
    )
    faults = FaultPlaneConfig(
        outages=(
            OutageWindow(start_s=10.0, duration_s=6.0),
            OutageWindow(start_s=30.0, duration_s=4.0, mode="hang", functions=("thumbs",)),
        ),
        crashes=(ContainerCrash(at_s=20.0, survive_fraction=0.3),),
        storms=(
            LatencyStorm(
                start_s=24.0, duration_s=8.0, compute_multiplier=2.5, network_multiplier=1.5
            ),
        ),
        boundary_jitter_s=0.5,
    )
    resilience = ResilienceConfig(
        breaker=CircuitBreakerConfig(
            window=10, min_calls=5, failure_threshold=0.5, cooldown_s=4.0, half_open_probes=2
        ),
        hedge=HedgeConfig(delay_s=1.0),
        retry_policy="exponential",
        max_retries=3,
        stale_after_s=3.0,
    )
    platform = create_platform(
        provider,
        SimulationConfig(seed=seed, overload=overload, faults=faults, resilience=resilience),
    )
    for fname, benchmark, memory_mb in _DEPLOYMENTS:
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _chaos_trace(duration_s: float = 45.0):
    from repro.config import TriggerType

    return WorkloadTrace.merge(
        WorkloadTrace.synthesize("web", PoissonArrivals(12.0), duration_s=duration_s, rng=501),
        WorkloadTrace.synthesize("thumbs", PoissonArrivals(8.0), duration_s=duration_s, rng=502),
        WorkloadTrace.synthesize(
            "arch",
            PoissonArrivals(6.0),
            duration_s=duration_s,
            rng=503,
            trigger=TriggerType.QUEUE,
        ),
    )


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
@pytest.mark.parametrize("backend", ("sequential", "process"))
def test_fault_storm_workers4_is_bit_identical(provider, backend):
    """Chaos equivalence: a replay with outages, crashes, storms, breakers,
    hedges and stale resubmission all active shards bit-identically — the
    whole fault/resilience state is per function, so it partitions exactly
    like the scheduler state."""
    trace = _chaos_trace()
    serial = _chaos_platform(provider).run_workload(trace)
    # The scenario actually exercises the new machinery.
    assert serial.faulted_count > 0
    assert serial.short_circuited_count > 0
    sharded = _chaos_platform(provider).run_workload(trace, workers=4, backend=backend)
    assert sharded.records == serial.records
    assert sharded.peak_in_flight == serial.peak_in_flight
    assert sharded.simulated_span_s == serial.simulated_span_s
    assert sharded.total_cost_usd == serial.total_cost_usd


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_fault_storm_streaming_counters_merge_exactly(provider):
    """Breaker-open, hedge and fault counters are per-function integer sums,
    so the sharded merge reproduces them exactly."""
    trace = _chaos_trace()
    serial = _chaos_platform(provider).run_workload(trace, keep_records=False)
    parallel = _chaos_platform(provider).run_workload(
        trace, keep_records=False, workers=4, backend="sequential"
    )
    _assert_streaming_equal(serial, parallel)
    for attribute in (
        "throttled_count",
        "dropped_count",
        "retry_count",
        "faulted_count",
        "short_circuited_count",
        "hedge_count",
    ):
        assert getattr(parallel, attribute) == getattr(serial, attribute), attribute
    serial_fns, parallel_fns = serial.per_function(), parallel.per_function()
    for fname, serial_summary in serial_fns.items():
        parallel_summary = parallel_fns[fname]
        assert parallel_summary.faulted == serial_summary.faulted
        assert parallel_summary.short_circuited == serial_summary.short_circuited
        assert parallel_summary.hedges == serial_summary.hedges
        assert parallel_summary.retries == serial_summary.retries


def test_fault_storm_records_and_streaming_agree():
    """The two aggregation modes count the same storm the same way."""
    trace = _chaos_trace()
    records = _chaos_platform(Provider.AWS).run_workload(trace)
    streaming = _chaos_platform(Provider.AWS).run_workload(trace, keep_records=False)
    assert streaming.invocations == records.invocations
    assert streaming.faulted_count == records.faulted_count
    assert streaming.short_circuited_count == records.short_circuited_count
    assert streaming.hedge_count == records.hedge_count
    assert streaming.total_cost_usd == pytest.approx(records.total_cost_usd)
    # Conservation under the full stack: every request resolves once.
    assert (
        records.executed_count
        + records.throttled_count
        + records.dropped_count
        + records.faulted_count
        + records.short_circuited_count
        == records.invocations
    )


@pytest.mark.slow
def test_large_scale_streaming_parallel_equivalence():
    """60k-invocation stress variant of the streaming merge equivalence."""
    traces = [
        WorkloadTrace.synthesize(
            fname, PoissonArrivals(40.0), duration_s=500.0, rng=700 + index
        )
        for index, (fname, _, _) in enumerate(_DEPLOYMENTS)
    ]
    trace = WorkloadTrace.merge(*traces)
    serial = _platform(Provider.AWS).run_workload(trace, keep_records=False)
    parallel = _platform(Provider.AWS).run_workload(trace, keep_records=False, workers=4)
    assert serial.invocations > 50_000
    _assert_streaming_equal(serial, parallel)


def test_invalid_worker_and_backend_arguments():
    platform = _platform(Provider.AWS)
    trace = _trace("poisson", duration_s=5.0)
    with pytest.raises(ConfigurationError, match="workers"):
        platform.run_workload(trace, workers=0)
    with pytest.raises(ConfigurationError, match="backend"):
        platform.run_workload(trace, workers=2, backend="threads")
