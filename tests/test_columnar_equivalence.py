"""Columnar replay must equal scalar replay — bit for bit.

The differential tier behind the columnar hot path (see
``docs/architecture.md``, "Columnar hot path"): every scenario is replayed
twice on identically-seeded platforms — once scalar
(``SimulationConfig(columnar=False)``), once columnar — and every
observable output is compared with ``==`` (which for floats is bit
equality, no tolerances):

* the full record list, field for field, including cost breakdowns,
  container ids, submission/start/finish timestamps and request indices;
* streaming summaries (counts, sums, reservoir percentile state);
* provider logs, final clock, peak in-flight, simulated span;
* observer event streams (container create/evict, per-record hooks);
* sharded replay (``workers=2``) on both backends, where record-mode
  shards ship columnar blocks across the process boundary.

Scenarios are hypothesis-generated over providers × arrival patterns ×
trigger types × the overload/fault/resilience stack, plus explicit pinned
cases for every provider, IaaS (both storage modes) and the controlled
stack — the paths the columnar engine either inlines or must compose with
through the draw-block shims.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency import OverloadConfig
from repro.config import DYNAMIC_MEMORY, Provider, SimulationConfig, TriggerType
from repro.experiments.base import deploy_benchmark
from repro.faults import FaultPlaneConfig, LatencyStorm, OutageWindow
from repro.parallel import run_workload_sharded
from repro.resilience import CircuitBreakerConfig, ResilienceConfig
from repro.simulator.iaas import IaaSPlatform
from repro.simulator.providers import create_platform
from repro.workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    PoissonArrivals,
    WorkloadTrace,
)
from repro.workload.engine import WorkloadEngine

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)


# ----------------------------------------------------------------- helpers


def _record_key(record):
    """Every field of an InvocationRecord, as a comparable tuple."""
    return (
        record.function_name,
        record.benchmark,
        record.provider,
        record.start_type,
        record.success,
        record.benchmark_time_s,
        record.provider_time_s,
        record.client_time_s,
        record.invocation_overhead_s,
        record.cold_init_s,
        record.memory_declared_mb,
        record.memory_used_mb,
        record.billed_duration_s,
        record.cost.request_cost,
        record.cost.compute_cost,
        record.cost.storage_cost,
        record.cost.egress_cost,
        record.output_bytes,
        record.container_id,
        record.submitted_at,
        record.started_at,
        record.finished_at,
        record.error,
        record.outcome,
        record.admitted_at,
        record.request_index,
    )


def _stream_key(result):
    """Streaming-mode result signature: counters + summary state."""
    rows = {
        name: json.dumps(summary.__dict__, default=repr, sort_keys=True)
        for name, summary in sorted(result.streaming_summaries.items())
    }
    return (
        result.invocation_count,
        result.cold_start_total,
        result.failure_total,
        result.executed_total,
        result.throttled_total,
        result.dropped_total,
        result.faulted_total,
        result.short_circuited_total,
        result.retry_total,
        result.cost_usd_total,
        result.simulated_span_s,
        rows,
    )


def _logs_key(platform, fnames):
    out = []
    for fname in fnames:
        out.append(
            [
                (
                    entry.provider_time_s,
                    entry.memory_used_mb,
                    entry.cost_usd,
                    entry.start_type,
                    entry.success,
                    entry.timestamp,
                )
                for entry in platform._state[fname].history
            ]
        )
    return out


def _build_platform(provider, columnar, seed, **simkw):
    simulation = SimulationConfig(seed=seed, columnar=columnar, **simkw)
    platform = create_platform(provider, simulation=simulation)
    memory = DYNAMIC_MEMORY if provider is Provider.AZURE else 512
    f1 = deploy_benchmark(platform, "dynamic-html", memory_mb=memory, function_name="fn-a")
    f2 = deploy_benchmark(platform, "thumbnailer", memory_mb=memory, function_name="fn-b")
    return platform, (f1, f2)


def _trace(fnames, process_a, process_b, duration_s, trigger_b):
    t1 = WorkloadTrace.synthesize(
        fnames[0], process_a, duration_s, rng=11, trigger=TriggerType.HTTP
    )
    t2 = WorkloadTrace.synthesize(fnames[1], process_b, duration_s, rng=12, trigger=trigger_b)
    return WorkloadTrace.merge(t1, t2)


def _replay_both(provider, trace_of, keep_records, seed=2026, observer_factory=None, **simkw):
    """Replay one scenario scalar and columnar; return both outputs."""
    outputs = []
    for columnar in (False, True):
        platform, fnames = _build_platform(provider, columnar, seed, **simkw)
        engine = WorkloadEngine(platform)
        observer = observer_factory() if observer_factory is not None else None
        result = engine.run(trace_of(fnames), keep_records=keep_records, observer=observer)
        outputs.append((result, platform, fnames, observer))
    return outputs


def _assert_identical(outputs, keep_records):
    (res_s, plat_s, fnames, _), (res_c, plat_c, _, _) = outputs
    if keep_records:
        assert len(res_s.records) == len(res_c.records)
        for scalar, columnar in zip(res_s.records, res_c.records):
            assert _record_key(scalar) == _record_key(columnar)
    else:
        assert _stream_key(res_s) == _stream_key(res_c)
    assert res_s.simulated_span_s == res_c.simulated_span_s
    assert res_s.peak_in_flight == res_c.peak_in_flight
    assert plat_s.clock.now() == plat_c.clock.now()
    assert _logs_key(plat_s, fnames) == _logs_key(plat_c, fnames)


# ------------------------------------------------------ hypothesis scenarios

_ARRIVALS = {
    "poisson": lambda rate: PoissonArrivals(rate),
    "bursty": lambda rate: BurstyArrivals(
        on_rate_per_s=rate * 3, mean_on_s=3.0, mean_off_s=6.0
    ),
    "constant": lambda rate: ConstantRateArrivals(rate),
}


def _stack_kwargs(overload, faults, resilience):
    simkw = {}
    if overload:
        simkw["overload"] = OverloadConfig(per_function_reserved={"fn-a": 8})
    if faults:
        simkw["faults"] = FaultPlaneConfig(
            outages=(OutageWindow(start_s=3.0, duration_s=2.5),),
            storms=(LatencyStorm(start_s=8.0, duration_s=3.0),),
        )
    if resilience:
        simkw["resilience"] = ResilienceConfig(
            breaker=CircuitBreakerConfig(), retry_policy="exponential"
        )
    return simkw


scenario = st.fixed_dictionaries(
    {
        "provider": st.sampled_from(PROVIDERS),
        "pattern": st.sampled_from(sorted(_ARRIVALS)),
        "rate": st.floats(min_value=2.0, max_value=25.0),
        "duration_s": st.floats(min_value=4.0, max_value=15.0),
        "trigger_b": st.sampled_from((TriggerType.SDK, TriggerType.HTTP)),
        "overload": st.booleans(),
        "faults": st.booleans(),
        "resilience": st.booleans(),
        "keep_records": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


class TestHypothesisScenarios:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(case=scenario)
    def test_scalar_and_columnar_replays_are_bit_identical(self, case):
        arrivals = _ARRIVALS[case["pattern"]]

        def trace_of(fnames):
            return _trace(
                fnames,
                arrivals(case["rate"]),
                arrivals(max(1.0, case["rate"] / 2)),
                case["duration_s"],
                case["trigger_b"],
            )

        simkw = _stack_kwargs(case["overload"], case["faults"], case["resilience"])
        outputs = _replay_both(
            case["provider"], trace_of, case["keep_records"], seed=case["seed"], **simkw
        )
        _assert_identical(outputs, case["keep_records"])


# ------------------------------------------------------------ pinned cases


def _mixed_trace(fnames):
    return _trace(fnames, PoissonArrivals(20.0), PoissonArrivals(15.0), 20.0, TriggerType.SDK)


class TestPinnedProviders:
    @pytest.mark.parametrize("provider", PROVIDERS)
    @pytest.mark.parametrize("keep_records", (True, False))
    def test_fast_path(self, provider, keep_records):
        outputs = _replay_both(provider, _mixed_trace, keep_records)
        _assert_identical(outputs, keep_records)

    @pytest.mark.parametrize("provider", PROVIDERS)
    def test_full_stack_records(self, provider):
        simkw = _stack_kwargs(True, True, True)
        outputs = _replay_both(provider, _mixed_trace, True, **simkw)
        _assert_identical(outputs, True)

    @pytest.mark.parametrize("use_cloud_storage", (False, True))
    def test_iaas(self, use_cloud_storage):
        outputs = []
        for columnar in (False, True):
            simulation = SimulationConfig(seed=2026, columnar=columnar)
            platform = IaaSPlatform(simulation=simulation, use_cloud_storage=use_cloud_storage)
            f1 = deploy_benchmark(platform, "dynamic-html", memory_mb=1024, function_name="fn-a")
            f2 = deploy_benchmark(platform, "thumbnailer", memory_mb=1024, function_name="fn-b")
            engine = WorkloadEngine(platform)
            result = engine.run(_mixed_trace((f1, f2)), keep_records=True)
            outputs.append((result, platform, (f1, f2), None))
        _assert_identical(outputs, True)


class _RecordingObserver:
    """Captures every hook call the engine makes, in order."""

    def __init__(self):
        self.events = []

    def on_container_create(self, fname, container_id, timestamp):
        self.events.append(("create", fname, container_id, timestamp))

    def on_container_evict(self, fname, count, timestamp, reason):
        self.events.append(("evict", fname, count, timestamp, reason))

    def on_invocation(self, record):
        self.events.append(("invocation", _record_key(record)))


class TestObserverStream:
    @pytest.mark.parametrize("provider", PROVIDERS)
    def test_observer_events_identical(self, provider):
        outputs = _replay_both(
            provider, _mixed_trace, True, observer_factory=_RecordingObserver
        )
        (res_s, _, _, obs_s), (res_c, _, _, obs_c) = outputs
        assert obs_s.events == obs_c.events
        for scalar, columnar in zip(res_s.records, res_c.records):
            assert _record_key(scalar) == _record_key(columnar)


class TestSharded:
    """workers=2: columnar shards ship blocks; merged output equals serial scalar."""

    @pytest.mark.parametrize("backend", ("sequential", "process"))
    @pytest.mark.parametrize("keep_records", (True, False))
    def test_sharded_columnar_equals_serial_scalar(self, backend, keep_records):
        serial_platform, fnames = _build_platform(Provider.AWS, False, 2026)
        serial = WorkloadEngine(serial_platform).run(
            _mixed_trace(fnames), keep_records=keep_records
        )
        platform, fnames = _build_platform(Provider.AWS, True, 2026)
        sharded = run_workload_sharded(
            platform,
            _mixed_trace(fnames),
            workers=2,
            backend=backend,
            keep_records=keep_records,
        )
        if keep_records:
            assert [_record_key(r) for r in sharded.records] == [
                _record_key(r) for r in serial.records
            ]
        else:
            assert _stream_key(sharded) == _stream_key(serial)

    def test_sharded_timeseries_falls_back_scalar_identical(self):
        results = []
        for columnar in (False, True):
            platform, fnames = _build_platform(Provider.AWS, columnar, 2026)
            result = run_workload_sharded(
                platform,
                _mixed_trace(fnames),
                workers=2,
                keep_records=False,
                timeseries=5.0,
            )
            results.append(result)
        scalar, columnar = results
        assert _stream_key(scalar) == _stream_key(columnar)
        assert json.dumps(scalar.timeseries.to_dict(), sort_keys=True) == json.dumps(
            columnar.timeseries.to_dict(), sort_keys=True
        )
