"""Shared machinery of the golden-trace regression fixtures.

Two canned traces live next to this file; their exact replay summaries
(every provider, streaming mode, full float precision) are checked in as
``expected_*.json``.  ``tests/test_golden_traces.py`` fails on *any* drift
— a changed RNG derivation, a reordered float reduction, a scheduler tweak
— so intentional changes must regenerate the fixtures with
``make regen-golden`` (which runs :func:`regenerate`) and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.simulator.providers import create_platform
from repro.workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    PoissonArrivals,
    WorkloadTrace,
)

GOLDEN_DIR = Path(__file__).resolve().parent
GOLDEN_SEED = 1234
PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)

#: function name -> (benchmark, memory_mb) for every golden deployment.
DEPLOYMENTS = {
    "gold-web": ("dynamic-html", 256),
    "gold-thumb": ("thumbnailer", 1024),
    "gold-zip": ("compression", 1024),
}

#: trace name -> builder of the canned trace.
TRACES = {
    # Mixed short-horizon traffic: three arrival shapes over 60 s.
    "mixed": lambda: WorkloadTrace.merge(
        WorkloadTrace.synthesize("gold-web", PoissonArrivals(5.0), duration_s=60.0, rng=71),
        WorkloadTrace.synthesize(
            "gold-thumb",
            BurstyArrivals(on_rate_per_s=15.0, mean_on_s=5.0, mean_off_s=12.0),
            duration_s=60.0,
            rng=72,
        ),
        WorkloadTrace.synthesize("gold-zip", ConstantRateArrivals(3.0), duration_s=60.0, rng=73),
    ),
    # Sparse long-horizon traffic: low rate over 20 min, so idle-timeout and
    # half-life eviction fire between arrivals (cold-start heavy).
    "sparse": lambda: WorkloadTrace.merge(
        WorkloadTrace.synthesize("gold-web", PoissonArrivals(0.05), duration_s=1200.0, rng=74),
        WorkloadTrace.synthesize("gold-thumb", PoissonArrivals(0.04), duration_s=1200.0, rng=75),
    ),
}


def trace_path(name: str) -> Path:
    return GOLDEN_DIR / f"trace_{name}.json"


def expected_path(name: str) -> Path:
    return GOLDEN_DIR / f"expected_{name}.json"


def _deployed_platform(provider: Provider, functions: list[str]):
    platform = create_platform(provider, SimulationConfig(seed=GOLDEN_SEED))
    for fname in functions:
        benchmark, memory_mb = DEPLOYMENTS[fname]
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def summarize_trace(trace: WorkloadTrace) -> dict:
    """Replay ``trace`` on every provider and collect the exact summary doc.

    Floats are kept at full ``repr`` precision (JSON round-trips them
    exactly), so the comparison in the golden test is bitwise.
    """
    document: dict = {"seed": GOLDEN_SEED, "requests": len(trace), "providers": {}}
    for provider in PROVIDERS:
        platform = _deployed_platform(provider, trace.functions())
        result = platform.run_workload(trace, keep_records=False)
        per_function = {}
        for fname, summary in result.per_function().items():
            distribution = summary.client_time
            per_function[fname] = {
                "invocations": summary.invocations,
                "cold_starts": summary.cold_starts,
                "failures": summary.failures,
                "total_cost_usd": summary.total_cost_usd,
                "client_time": {
                    "count": distribution.count,
                    "mean": distribution.mean,
                    "std": distribution.std,
                    "min": distribution.minimum,
                    "max": distribution.maximum,
                    "median": distribution.median,
                    "p95": distribution.percentiles[95.0],
                },
            }
        document["providers"][provider.value] = {
            "invocations": result.invocations,
            "cold_starts": result.cold_start_count,
            "failures": result.failure_count,
            "peak_in_flight": result.peak_in_flight,
            "simulated_span_s": result.simulated_span_s,
            "cost_usd": result.total_cost_usd,
            "per_function": per_function,
        }
    return document


def regenerate() -> list[Path]:
    """(Re)write every golden trace and its expected summary."""
    written = []
    for name, build in TRACES.items():
        trace = build().materialize()
        trace.to_json(trace_path(name), indent=2)
        expected = summarize_trace(trace)
        expected_path(name).write_text(
            json.dumps(expected, indent=2) + "\n", encoding="utf-8"
        )
        written.extend([trace_path(name), expected_path(name)])
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"regenerated {path}")
