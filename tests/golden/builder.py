"""Shared machinery of the golden-trace regression fixtures.

Two canned traces live next to this file; their exact replay summaries
(every provider, streaming mode, full float precision) are checked in as
``expected_*.json``.  ``tests/test_golden_traces.py`` fails on *any* drift
— a changed RNG derivation, a reordered float reduction, a scheduler tweak
— so intentional changes must regenerate the fixtures with
``make regen-golden`` (which runs :func:`regenerate`) and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.concurrency import OverloadConfig
from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.faults import FaultPlaneConfig, OutageWindow
from repro.resilience import ResilienceConfig
from repro.simulator.providers import create_platform
from repro.utils.io import atomic_write_text
from repro.workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    PoissonArrivals,
    WorkloadTrace,
)

GOLDEN_DIR = Path(__file__).resolve().parent
GOLDEN_SEED = 1234
PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)

#: function name -> (benchmark, memory_mb) for every golden deployment.
DEPLOYMENTS = {
    "gold-web": ("dynamic-html", 256),
    "gold-thumb": ("thumbnailer", 1024),
    "gold-zip": ("compression", 1024),
}

#: trace name -> builder of the canned trace.
TRACES = {
    # Mixed short-horizon traffic: three arrival shapes over 60 s.
    "mixed": lambda: WorkloadTrace.merge(
        WorkloadTrace.synthesize("gold-web", PoissonArrivals(5.0), duration_s=60.0, rng=71),
        WorkloadTrace.synthesize(
            "gold-thumb",
            BurstyArrivals(on_rate_per_s=15.0, mean_on_s=5.0, mean_off_s=12.0),
            duration_s=60.0,
            rng=72,
        ),
        WorkloadTrace.synthesize("gold-zip", ConstantRateArrivals(3.0), duration_s=60.0, rng=73),
    ),
    # Sparse long-horizon traffic: low rate over 20 min, so idle-timeout and
    # half-life eviction fire between arrivals (cold-start heavy).
    "sparse": lambda: WorkloadTrace.merge(
        WorkloadTrace.synthesize("gold-web", PoissonArrivals(0.05), duration_s=1200.0, rng=74),
        WorkloadTrace.synthesize("gold-thumb", PoissonArrivals(0.04), duration_s=1200.0, rng=75),
    ),
}


#: The metastable-failure golden scenario: a naive client (unjittered
#: tight-capped retry ladder, staleness resubmission, no breaker) replayed
#: through a capacity-limited platform with a mid-trace outage.  Pins the
#: whole fault/resilience stack — outage handling, 429 retries, stale
#: resubmission sagas, cost folding — at full float precision.
STORM_NAME = "storm"
STORM_FUNCTION = "gold-web"
STORM_BUCKET_S = 5.0


def storm_trace() -> WorkloadTrace:
    return WorkloadTrace.synthesize(
        STORM_FUNCTION, PoissonArrivals(10.0), duration_s=60.0, rng=76
    )


def _storm_platform(provider: Provider, columnar: bool = False):
    ladder = dict(
        retry_policy="no-jitter",
        max_retries=40,
        retry_base_delay_s=0.25,
        retry_max_delay_s=0.5,
    )
    simulation = SimulationConfig(
        seed=GOLDEN_SEED,
        columnar=columnar,
        overload=OverloadConfig(reserved_concurrency=4, **ladder),
        resilience=ResilienceConfig(stale_after_s=1.5, **ladder),
        faults=FaultPlaneConfig(outages=(OutageWindow(start_s=20.0, duration_s=10.0),)),
    )
    platform = create_platform(provider, simulation)
    benchmark, memory_mb = DEPLOYMENTS[STORM_FUNCTION]
    deploy_benchmark(
        platform,
        benchmark,
        memory_mb=memory_mb if platform.limits.memory_static else 0,
        function_name=STORM_FUNCTION,
    )
    return platform


def summarize_storm(trace: WorkloadTrace, columnar: bool = False) -> dict:
    """Replay the storm trace per provider; exact counters + goodput curve.

    ``columnar=True`` replays through the vectorized hot path (the storm's
    controlled overload/fault/resilience loop composes with it via the
    draw-block shims); the document must be byte-identical either way — the
    golden columnar tests pin it against the *same* expected fixture.
    """
    document: dict = {"seed": GOLDEN_SEED, "requests": len(trace), "providers": {}}
    for provider in PROVIDERS:
        platform = _storm_platform(provider, columnar=columnar)
        result = platform.run_workload(trace, keep_records=True)
        buckets = [[0, 0] for _ in range(int(60.0 / STORM_BUCKET_S) + 1)]
        for record in result.records:
            index = min(len(buckets) - 1, int(record.submitted_at / STORM_BUCKET_S))
            buckets[index][0] += 1
            if record.success:
                buckets[index][1] += 1
        document["providers"][provider.value] = {
            "invocations": result.invocations,
            "executed": result.executed_count,
            "failures": result.failure_count,
            "throttled": result.throttled_count,
            "dropped": result.dropped_count,
            "faulted": result.faulted_count,
            "short_circuited": result.short_circuited_count,
            "hedges": result.hedge_count,
            "retries": result.retry_count,
            "cost_usd": result.total_cost_usd,
            "simulated_span_s": result.simulated_span_s,
            "goodput_curve": [list(bucket) for bucket in buckets],
        }
    return document


#: Fixture name of the storm scenario's windowed time series (the
#: observability layer's golden: window fold order, reservoir percentile
#: state and prefix-summed levels are pinned at full float precision).
STORM_TIMESERIES_NAME = "storm_timeseries"


def summarize_storm_timeseries(trace: WorkloadTrace) -> dict:
    """The storm replay's exact simulated-time series, per provider."""
    from repro.observe import TimeSeriesSpec

    spec = TimeSeriesSpec(window_s=STORM_BUCKET_S)
    document: dict = {"seed": GOLDEN_SEED, "requests": len(trace), "providers": {}}
    for provider in PROVIDERS:
        platform = _storm_platform(provider)
        result = platform.run_workload(trace, keep_records=True, timeseries=spec)
        document["providers"][provider.value] = result.timeseries.to_dict()
    return document


def trace_path(name: str) -> Path:
    return GOLDEN_DIR / f"trace_{name}.json"


def expected_path(name: str) -> Path:
    return GOLDEN_DIR / f"expected_{name}.json"


def _deployed_platform(provider: Provider, functions: list[str], columnar: bool = False):
    platform = create_platform(
        provider, SimulationConfig(seed=GOLDEN_SEED, columnar=columnar)
    )
    for fname in functions:
        benchmark, memory_mb = DEPLOYMENTS[fname]
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def summarize_trace(trace: WorkloadTrace, columnar: bool = False) -> dict:
    """Replay ``trace`` on every provider and collect the exact summary doc.

    Floats are kept at full ``repr`` precision (JSON round-trips them
    exactly), so the comparison in the golden test is bitwise.
    ``columnar=True`` takes the vectorized hot path; both modes must
    produce the identical document (pinned against the same fixture).
    """
    document: dict = {"seed": GOLDEN_SEED, "requests": len(trace), "providers": {}}
    for provider in PROVIDERS:
        platform = _deployed_platform(provider, trace.functions(), columnar=columnar)
        result = platform.run_workload(trace, keep_records=False)
        per_function = {}
        for fname, summary in result.per_function().items():
            distribution = summary.client_time
            per_function[fname] = {
                "invocations": summary.invocations,
                "cold_starts": summary.cold_starts,
                "failures": summary.failures,
                "total_cost_usd": summary.total_cost_usd,
                "client_time": {
                    "count": distribution.count,
                    "mean": distribution.mean,
                    "std": distribution.std,
                    "min": distribution.minimum,
                    "max": distribution.maximum,
                    "median": distribution.median,
                    "p95": distribution.percentiles[95.0],
                },
            }
        document["providers"][provider.value] = {
            "invocations": result.invocations,
            "cold_starts": result.cold_start_count,
            "failures": result.failure_count,
            "peak_in_flight": result.peak_in_flight,
            "simulated_span_s": result.simulated_span_s,
            "cost_usd": result.total_cost_usd,
            "per_function": per_function,
        }
    return document


def regenerate() -> list[Path]:
    """(Re)write every golden trace and its expected summary.

    All writes are atomic (``repro.utils.io``): an interrupted
    ``make regen-golden`` leaves the previous intact fixtures, never a
    truncated one for the golden-drift gate to choke on.
    """
    written = []
    for name, build in TRACES.items():
        trace = build().materialize()
        trace.to_json(trace_path(name), indent=2)
        expected = summarize_trace(trace)
        # The columnar hot path pins against the *same* fixture — refuse to
        # write a golden the vectorized replay cannot reproduce bit-exactly.
        if summarize_trace(trace, columnar=True) != expected:
            raise AssertionError(
                f"columnar replay of golden trace {name!r} diverged from scalar"
            )
        atomic_write_text(expected_path(name), json.dumps(expected, indent=2) + "\n")
        written.extend([trace_path(name), expected_path(name)])
    trace = storm_trace()
    trace.to_json(trace_path(STORM_NAME), indent=2)
    storm_expected = summarize_storm(trace)
    if summarize_storm(trace, columnar=True) != storm_expected:
        raise AssertionError("columnar replay of the golden storm diverged from scalar")
    atomic_write_text(
        expected_path(STORM_NAME), json.dumps(storm_expected, indent=2) + "\n"
    )
    written.extend([trace_path(STORM_NAME), expected_path(STORM_NAME)])
    atomic_write_text(
        expected_path(STORM_TIMESERIES_NAME),
        json.dumps(summarize_storm_timeseries(trace), indent=2) + "\n",
    )
    written.append(expected_path(STORM_TIMESERIES_NAME))
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"regenerated {path}")
