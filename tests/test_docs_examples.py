"""Execute the runnable documentation snippets so the cookbook cannot rot.

Every fenced code block in ``docs/*.md`` whose info string is
``python runnable`` is extracted and executed here, one test per block.
The tag is an opt-in: illustrative fragments (shell commands, elided
pseudo-code) stay plain ``python`` blocks, while cookbook recipes promise
to be complete, seeded programs that finish in under five seconds — the
budget this tier enforces.  GitHub highlights ``python runnable`` blocks
exactly like ``python`` ones (only the first word of the info string
selects the lexer), so the tag costs nothing in rendering.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Opening fence with the runnable tag, through the matching closing fence.
RUNNABLE_FENCE = re.compile(r"^```python runnable\n(.*?)^```$", re.DOTALL | re.MULTILINE)

#: Wall-clock budget per snippet (seconds) — cookbook recipes are demos,
#: not benchmarks, and the whole docs tier must stay cheap in CI.
SNIPPET_BUDGET_S = 5.0


def _collect_snippets() -> list:
    params = []
    for doc in sorted(DOCS_DIR.glob("*.md")):
        text = doc.read_text(encoding="utf-8")
        for match in RUNNABLE_FENCE.finditer(text):
            first_line = text[: match.start()].count("\n") + 2
            params.append(
                pytest.param(
                    doc.name,
                    match.group(1),
                    id=f"{doc.name}:L{first_line}",
                )
            )
    return params


SNIPPETS = _collect_snippets()


def test_cookbook_has_runnable_snippets() -> None:
    """The cookbook must keep at least one runnable recipe per doc topic."""
    docs_with_snippets = {param.id.split(":")[0] for param in SNIPPETS}
    assert "scenarios.md" in docs_with_snippets
    assert len(SNIPPETS) >= 5


@pytest.mark.parametrize(("doc", "code"), SNIPPETS)
def test_snippet_executes(doc: str, code: str, monkeypatch: pytest.MonkeyPatch) -> None:
    """Each tagged snippet runs as a standalone program from the repo root."""
    monkeypatch.chdir(REPO_ROOT)  # snippets use repo-relative fixture paths
    namespace: dict = {"__name__": f"docs_snippet_{doc.removesuffix('.md')}"}
    started = time.perf_counter()
    exec(compile(code, f"docs/{doc}", "exec"), namespace)  # noqa: S102
    elapsed = time.perf_counter() - started
    assert elapsed < SNIPPET_BUDGET_S, (
        f"snippet in docs/{doc} took {elapsed:.1f}s; runnable snippets must "
        f"finish within {SNIPPET_BUDGET_S:.0f}s"
    )
