"""Tests for the SeBS experiments: Perf-Cost, cost analysis, Invoc-Overhead,
Eviction-Model, FaaS-vs-IaaS and the local characterization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.base import InputSize
from repro.config import ExperimentConfig, Language, Provider, SimulationConfig, StartType
from repro.exceptions import ExperimentError
from repro.experiments.characterization import CharacterizationExperiment
from repro.experiments.cost_analysis import CostAnalysis
from repro.experiments.eviction_model import EvictionModelExperiment, EvictionParameters
from repro.experiments.faas_vs_iaas import FaasVsIaasExperiment
from repro.experiments.invocation_overhead import InvocationOverheadExperiment
from repro.experiments.perf_cost import PerfCostExperiment


@pytest.fixture(scope="module")
def quick():
    return ExperimentConfig(samples=12, batch_size=6, seed=11)


@pytest.fixture(scope="module")
def sim():
    return SimulationConfig(seed=11)


@pytest.fixture(scope="module")
def thumbnailer_perf_cost(quick, sim):
    """A shared Perf-Cost run used by several analysis tests (module scoped for speed)."""
    experiment = PerfCostExperiment(config=quick, simulation=sim, input_size=InputSize.SMALL)
    return experiment.run(
        "thumbnailer",
        providers=(Provider.AWS, Provider.GCP, Provider.AZURE),
        memory_sizes=(256, 1024, 2048),
    )


class TestPerfCost:
    def test_collects_requested_cold_and_warm_samples(self, thumbnailer_perf_cost, quick):
        for config in thumbnailer_perf_cost.configs:
            if not config.viable:
                continue
            assert len(config.cold_records) >= quick.samples // 2
            assert len(config.warm_records) >= quick.samples // 2

    def test_cold_records_are_cold_and_warm_are_warm(self, thumbnailer_perf_cost):
        for config in thumbnailer_perf_cost.configs:
            assert all(r.start_type is StartType.COLD for r in config.cold_records)
            assert all(r.start_type is StartType.WARM for r in config.warm_records)

    def test_azure_uses_single_dynamic_configuration(self, thumbnailer_perf_cost):
        azure_configs = thumbnailer_perf_cost.for_provider(Provider.AZURE)
        assert len(azure_configs) == 1 and azure_configs[0].memory_mb == 0

    def test_warm_time_decreases_with_memory_on_aws(self, thumbnailer_perf_cost):
        aws = {c.memory_mb: c.warm_metrics().client_time.median for c in thumbnailer_perf_cost.for_provider(Provider.AWS)}
        assert aws[256] > aws[1024] > aws[2048] * 0.8

    def test_aws_fastest_provider(self, thumbnailer_perf_cost):
        # The claim is about execution time (benchmark/provider time in
        # Figure 3); client time additionally includes the client-to-region
        # network latency, which happened to be largest towards us-east-1.
        aws = min(
            c.warm_metrics().provider_time.median
            for c in thumbnailer_perf_cost.for_provider(Provider.AWS)
            if c.viable
        )
        gcp = min(
            c.warm_metrics().provider_time.median
            for c in thumbnailer_perf_cost.for_provider(Provider.GCP)
            if c.viable
        )
        assert aws < gcp

    def test_cold_slower_than_warm(self, thumbnailer_perf_cost):
        for config in thumbnailer_perf_cost.for_provider(Provider.AWS):
            assert config.cold_metrics().client_time.median > config.warm_metrics().client_time.median

    def test_cold_start_overhead_distribution(self, thumbnailer_perf_cost):
        config = thumbnailer_perf_cost.config(Provider.AWS, 1024)
        overhead = config.cold_start_overhead()
        assert overhead.median_ratio > 1.0

    def test_lookup_of_missing_configuration_raises(self, thumbnailer_perf_cost):
        with pytest.raises(ExperimentError):
            thumbnailer_perf_cost.config(Provider.AWS, 4096)

    def test_unknown_benchmark_rejected(self, quick, sim):
        experiment = PerfCostExperiment(config=quick, simulation=sim)
        with pytest.raises(Exception):
            experiment.run_configuration(Provider.AWS, "not-a-benchmark", 512)

    def test_unviable_configuration_reported(self, quick, sim):
        experiment = PerfCostExperiment(config=quick, simulation=sim)
        result = experiment.run_configuration(Provider.AWS, "image-recognition", 128)
        assert not result.viable
        assert result.error_rate > 0.9


class TestCostAnalysis:
    def test_cost_of_million_increases_with_memory_for_io_bound(self, quick, sim):
        experiment = PerfCostExperiment(config=quick, simulation=sim)
        result = experiment.run("uploader", providers=(Provider.AWS,), memory_sizes=(128, 512, 2048))
        analysis = CostAnalysis(result)
        warm_costs = {e.memory_mb: e.cost_usd for e in analysis.cost_of_million() if e.start_type == "warm"}
        # Figure 5a: for uploader the cost grows with every memory expansion.
        assert warm_costs[128] < warm_costs[512] < warm_costs[2048]

    def test_resource_usage_reports_underutilisation(self, thumbnailer_perf_cost):
        analysis = CostAnalysis(thumbnailer_perf_cost)
        entries = analysis.resource_usage()
        assert entries, "expected resource-usage entries for AWS and GCP"
        assert all(e.provider is not Provider.AZURE for e in entries)
        high_memory = [e for e in entries if e.memory_mb == 2048 and e.start_type == "warm"]
        # Figure 5b: at large allocations only a small fraction of billed memory is used.
        assert all(e.memory_usage_ratio < 0.25 for e in high_memory)

    def test_break_even_points(self, thumbnailer_perf_cost):
        analysis = CostAnalysis(thumbnailer_perf_cost)
        points = analysis.break_even(iaas_local_requests_per_hour=79282, iaas_cloud_requests_per_hour=27503)
        assert set(points) == {"eco", "perf"}
        assert points["eco"].cost_per_million_usd <= points["perf"].cost_per_million_usd
        assert points["eco"].break_even_requests_per_hour >= points["perf"].break_even_requests_per_hour

    def test_output_transfer_costs_highest_on_gcp_or_azure(self, quick, sim):
        experiment = PerfCostExperiment(config=quick, simulation=sim)
        result = experiment.run("graph-bfs", providers=(Provider.AWS, Provider.GCP), memory_sizes=(1024,))
        costs = {e.provider: e.cost_per_million_usd for e in CostAnalysis(result).output_transfer_costs()}
        assert costs[Provider.GCP] > costs[Provider.AWS]


class TestInvocationOverhead:
    @pytest.fixture(scope="class")
    def overhead_result(self, quick, sim):
        experiment = InvocationOverheadExperiment(config=quick, simulation=sim, input_size=InputSize.TEST)
        return experiment.run(providers=(Provider.AWS, Provider.GCP), repetitions=4)

    def test_observations_cover_all_payload_sizes(self, overhead_result):
        aws_warm = overhead_result.series(Provider.AWS, StartType.WARM)
        assert len(aws_warm) == 7

    def test_warm_latency_linear_in_payload(self, overhead_result):
        model = overhead_result.model(Provider.AWS, StartType.WARM)
        assert model.fit.adjusted_r_squared > 0.9
        gcp_model = overhead_result.model(Provider.GCP, StartType.WARM)
        assert gcp_model.fit.adjusted_r_squared > 0.85

    def test_aws_cold_latency_linear_but_gcp_cold_erratic(self, overhead_result):
        aws_cold = overhead_result.model(Provider.AWS, StartType.COLD)
        gcp_cold = overhead_result.model(Provider.GCP, StartType.COLD)
        assert aws_cold.fit.adjusted_r_squared > 0.8
        assert gcp_cold.fit.adjusted_r_squared < aws_cold.fit.adjusted_r_squared

    def test_cold_latency_exceeds_warm(self, overhead_result):
        warm = overhead_result.series(Provider.AWS, StartType.WARM)
        cold = overhead_result.series(Provider.AWS, StartType.COLD)
        warm_median = np.median([o.median_latency_s for o in warm])
        cold_median = np.median([o.median_latency_s for o in cold])
        assert cold_median > warm_median

    def test_clock_drift_estimated_per_provider(self, overhead_result):
        assert set(overhead_result.drift_estimates) == {Provider.AWS, Provider.GCP}
        for estimate in overhead_result.drift_estimates.values():
            assert estimate.exchanges >= 10

    def test_missing_model_raises(self, overhead_result):
        with pytest.raises(ExperimentError):
            overhead_result.model(Provider.AZURE, StartType.WARM)


class TestEvictionExperiment:
    def test_single_observation(self, quick, sim):
        experiment = EvictionModelExperiment(config=quick, simulation=sim)
        observation = experiment.observe(Provider.AWS, EvictionParameters(d_init=8, delta_t_s=381.0))
        assert observation.warm_containers == 4

    def test_full_run_recovers_380s_period(self, quick, sim):
        experiment = EvictionModelExperiment(config=quick, simulation=sim)
        result = experiment.run(
            provider=Provider.AWS,
            d_init_values=(8, 20),
            memory_values=(128,),
            languages=(Language.PYTHON,),
            code_sizes_mb=(0.008,),
            function_times_s=(1.0,),
        )
        assert result.model is not None
        assert result.model.period_s == pytest.approx(380.0)
        assert result.model.r_squared > 0.99

    def test_policy_agnostic_to_memory_language_and_code_size(self, quick, sim):
        """Section 6.5 Q1: the same survival counts regardless of function properties."""
        experiment = EvictionModelExperiment(config=quick, simulation=sim)
        variations = [
            EvictionParameters(d_init=12, delta_t_s=761.0, memory_mb=128, language=Language.PYTHON),
            EvictionParameters(d_init=12, delta_t_s=761.0, memory_mb=1536, language=Language.PYTHON),
            EvictionParameters(d_init=12, delta_t_s=761.0, memory_mb=128, language=Language.NODEJS),
            EvictionParameters(d_init=12, delta_t_s=761.0, memory_mb=128, code_package_mb=250.0),
            EvictionParameters(d_init=12, delta_t_s=761.0, memory_mb=128, function_time_s=10.0),
        ]
        counts = {experiment.observe(Provider.AWS, p).warm_containers for p in variations}
        assert counts == {3}

    def test_observation_row_serialisation(self, quick, sim):
        experiment = EvictionModelExperiment(config=quick, simulation=sim)
        observation = experiment.observe(Provider.AWS, EvictionParameters(d_init=4, delta_t_s=10.0))
        row = observation.to_row()
        assert row["d_init"] == 4 and row["warm_containers"] == 4


class TestFaasVsIaas:
    @pytest.fixture(scope="class")
    def table5_row(self, quick, sim):
        experiment = FaasVsIaasExperiment(config=quick, simulation=sim, input_size=InputSize.SMALL)
        return experiment.run_benchmark("thumbnailer")

    def test_faas_slower_than_iaas_local(self, table5_row):
        assert table5_row.overhead_vs_local > 1.0

    def test_equal_storage_reduces_the_gap(self, table5_row):
        assert table5_row.overhead_vs_cloud_storage < table5_row.overhead_vs_local

    def test_row_serialisation(self, table5_row):
        row = table5_row.to_row()
        assert row["benchmark"] == "thumbnailer"
        assert row["iaas_local_req_per_hour"] > 0

    def test_run_multiple_benchmarks(self, quick, sim):
        experiment = FaasVsIaasExperiment(config=quick, simulation=sim, input_size=InputSize.SMALL)
        result = experiment.run(benchmarks=("graph-bfs", "uploader"))
        assert len(result.rows) == 2
        assert result.row_for("graph-bfs").faas_s > 0
        with pytest.raises(ExperimentError):
            result.row_for("compression")


class TestCharacterization:
    def test_runs_across_the_suite(self, quick, sim):
        experiment = CharacterizationExperiment(config=quick, simulation=sim, repetitions=2, size=InputSize.TEST)
        characterization = experiment.run(benchmarks=("dynamic-html", "graph-bfs", "graph-mst"))
        assert len(characterization.metrics) == 3
        rows = characterization.to_rows()
        assert {row["benchmark"] for row in rows} == {"dynamic-html", "graph-bfs", "graph-mst"}
        assert characterization.row_for("graph-bfs").warm_time_s > 0

    def test_row_for_missing_benchmark(self, quick, sim):
        experiment = CharacterizationExperiment(config=quick, simulation=sim, repetitions=2, size=InputSize.TEST)
        characterization = experiment.run(benchmarks=("dynamic-html",))
        with pytest.raises(Exception):
            characterization.row_for("uploader")
