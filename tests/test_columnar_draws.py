"""Property suite for the vectorized draw primitives (repro.columnar.draws).

The columnar engine rests on one numpy fact: a single vectorized
``Generator`` call with constant parameters consumes the underlying bit
stream exactly like the same number of scalar calls and yields the
identical float sequence.  These tests prove that fact property-based for
each wrapped distribution, then prove the block wrappers preserve it —
across batch boundaries (partial tails, ``k`` beyond ``BLOCK``), under
interleaved scalar-shim fallbacks, and with loud rejection of mismatched
shim parameters (a silent parameter drift would desynchronize the scalar
and columnar paths).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import BLOCK, ExponentialBlock, LognormalBlock, UniformBlock
from repro.exceptions import ConfigurationError

seeds = st.integers(min_value=0, max_value=2**63 - 1)
# Around one block, around two blocks, and small tails.
counts = st.one_of(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=BLOCK - 3, max_value=BLOCK + 3),
    st.integers(min_value=2 * BLOCK - 2, max_value=2 * BLOCK + 2),
)
means = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
sigmas = st.floats(min_value=0.01, max_value=1.5, allow_nan=False)
scales = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)


def _gen(seed):
    return np.random.default_rng(seed)


# ------------------------------------------- the underlying numpy property


class TestVectorizedEqualsScalarDraws:
    @given(seed=seeds, k=counts)
    @settings(deadline=None)
    def test_uniform(self, seed, k):
        batched = _gen(seed).random(k).tolist()
        scalar_rng = _gen(seed)
        assert batched == [scalar_rng.random() for _ in range(k)]

    @given(seed=seeds, k=counts, mean=means, sigma=sigmas)
    @settings(deadline=None)
    def test_lognormal(self, seed, k, mean, sigma):
        batched = _gen(seed).lognormal(mean, sigma, k).tolist()
        scalar_rng = _gen(seed)
        assert batched == [scalar_rng.lognormal(mean, sigma) for _ in range(k)]

    @given(seed=seeds, k=counts, scale=scales)
    @settings(deadline=None)
    def test_exponential(self, seed, k, scale):
        batched = _gen(seed).exponential(scale, k).tolist()
        scalar_rng = _gen(seed)
        assert batched == [scalar_rng.exponential(scale) for _ in range(k)]


# ------------------------------------------------------- block == scalar


class TestBlocksMatchScalarStreams:
    @given(seed=seeds, k=counts)
    @settings(deadline=None)
    def test_uniform_block(self, seed, k):
        block = UniformBlock(_gen(seed))
        scalar_rng = _gen(seed)
        for i in range(k):
            assert block.take() == scalar_rng.random(), f"index {i}"

    @given(seed=seeds, k=counts, mean=means, sigma=sigmas)
    @settings(deadline=None)
    def test_lognormal_block(self, seed, k, mean, sigma):
        block = LognormalBlock(_gen(seed), mean, sigma)
        scalar_rng = _gen(seed)
        for i in range(k):
            assert block.take() == scalar_rng.lognormal(mean, sigma), f"index {i}"

    @given(seed=seeds, k=counts, scale=scales)
    @settings(deadline=None)
    def test_exponential_block(self, seed, k, scale):
        block = ExponentialBlock(_gen(seed), scale)
        scalar_rng = _gen(seed)
        for i in range(k):
            assert block.take() == scalar_rng.exponential(scale), f"index {i}"

    def test_partial_batch_tail_positions(self):
        """After k takes the cursor sits at k mod BLOCK into the batch."""
        for k in (1, BLOCK - 1, BLOCK, BLOCK + 1, 2 * BLOCK, 2 * BLOCK + 5):
            block = UniformBlock(_gen(99))
            for _ in range(k):
                block.take()
            assert block._i == (k - 1) % BLOCK + 1
            assert len(block._values) == BLOCK


# -------------------------------------------- interleaved scalar fallbacks


class TestInterleavedShims:
    """Scalar code paths hit the shim methods mid-replay (controlled
    overload/fault loops, direct invokes); interleaving them with ``take``
    must keep the one consumed stream in scalar order."""

    @given(seed=seeds, pattern=st.lists(st.booleans(), min_size=1, max_size=3 * BLOCK))
    @settings(deadline=None, max_examples=30)
    def test_uniform_interleaving(self, seed, pattern):
        block = UniformBlock(_gen(seed))
        scalar_rng = _gen(seed)
        for via_shim in pattern:
            value = block.random() if via_shim else block.take()
            assert value == scalar_rng.random()

    @given(seed=seeds, pattern=st.lists(st.booleans(), min_size=1, max_size=3 * BLOCK))
    @settings(deadline=None, max_examples=30)
    def test_lognormal_interleaving(self, seed, pattern):
        block = LognormalBlock(_gen(seed), 0.25, 0.5)
        scalar_rng = _gen(seed)
        for via_shim in pattern:
            value = block.lognormal(0.25, 0.5) if via_shim else block.take()
            assert value == scalar_rng.lognormal(0.25, 0.5)

    @given(seed=seeds, pattern=st.lists(st.booleans(), min_size=1, max_size=3 * BLOCK))
    @settings(deadline=None, max_examples=30)
    def test_exponential_interleaving(self, seed, pattern):
        block = ExponentialBlock(_gen(seed), 0.004)
        scalar_rng = _gen(seed)
        for via_shim in pattern:
            value = block.exponential(0.004) if via_shim else block.take()
            assert value == scalar_rng.exponential(0.004)


# ------------------------------------------------------- parameter guards


class TestShimParameterGuards:
    def test_lognormal_rejects_mismatched_parameters(self):
        block = LognormalBlock(_gen(1), 0.25, 0.5)
        with pytest.raises(ConfigurationError):
            block.lognormal(0.25, 0.6)
        with pytest.raises(ConfigurationError):
            block.lognormal(0.3, 0.5)
        # The stream is not advanced by a rejected draw.
        scalar_rng = _gen(1)
        assert block.take() == scalar_rng.lognormal(0.25, 0.5)

    def test_exponential_rejects_mismatched_scale(self):
        block = ExponentialBlock(_gen(1), 0.004)
        with pytest.raises(ConfigurationError):
            block.exponential(0.005)
        scalar_rng = _gen(1)
        assert block.take() == scalar_rng.exponential(0.004)
