"""Tests of the trace-driven workload engine and its building blocks."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import ExperimentConfig, Provider, SimulationConfig, StartType, TriggerType
from repro.exceptions import ConfigurationError, FunctionNotFoundError, PlatformError
from repro.experiments.base import deploy_benchmark
from repro.experiments.workload_replay import WorkloadDeployment, WorkloadReplayExperiment
from repro.faas.invocation import InvocationRequest
from repro.simulator.providers import create_platform
from repro.workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    FunctionTraffic,
    PoissonArrivals,
    Scenario,
    WorkloadTrace,
    standard_scenario,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestArrivalProcesses:
    def test_constant_rate_is_evenly_spaced(self, rng):
        arrivals = ConstantRateArrivals(rate_per_s=2.0).generate(10.0, rng)
        assert len(arrivals) == 20
        assert np.allclose(np.diff(arrivals), 0.5)
        assert arrivals[0] == 0.0
        assert arrivals[-1] < 10.0

    def test_poisson_matches_mean_rate(self, rng):
        arrivals = PoissonArrivals(rate_per_s=5.0).generate(2000.0, rng)
        assert arrivals[0] >= 0.0 and arrivals[-1] < 2000.0
        assert np.all(np.diff(arrivals) >= 0)
        # Law of large numbers: the empirical rate approaches 5/s.
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_poisson_is_deterministic_per_seed(self):
        a = PoissonArrivals(3.0).generate(100.0, np.random.default_rng(11))
        b = PoissonArrivals(3.0).generate(100.0, np.random.default_rng(11))
        c = PoissonArrivals(3.0).generate(100.0, np.random.default_rng(12))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_bursty_clusters_arrivals(self, rng):
        process = BurstyArrivals(on_rate_per_s=20.0, mean_on_s=5.0, mean_off_s=20.0)
        arrivals = process.generate(2000.0, rng)
        assert len(arrivals) > 100
        # ON/OFF traffic is much more variable than Poisson at the same mean
        # rate: the inter-arrival coefficient of variation must exceed 1.
        gaps = np.diff(arrivals)
        cv = np.std(gaps) / np.mean(gaps)
        assert cv > 1.5

    def test_diurnal_peak_beats_trough(self, rng):
        period = 1000.0
        # Peak at t=period/4, trough at t=3*period/4.
        process = DiurnalArrivals(mean_rate_per_s=2.0, amplitude=0.9, period_s=period)
        arrivals = process.generate(period, rng)
        peak_window = np.sum((arrivals >= 150) & (arrivals < 350))
        trough_window = np.sum((arrivals >= 650) & (arrivals < 850))
        assert peak_window > 4 * trough_window
        assert process.rate_at(period / 4.0) == pytest.approx(2.0 * 1.9)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConstantRateArrivals(0.0),
            lambda: PoissonArrivals(-1.0),
            lambda: BurstyArrivals(0.0, 1.0, 1.0),
            lambda: BurstyArrivals(1.0, 0.0, 1.0),
            lambda: DiurnalArrivals(1.0, amplitude=1.5),
            lambda: DiurnalArrivals(1.0, period_s=0.0),
        ],
    )
    def test_invalid_parameters_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()

    def test_negative_duration_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(1.0).generate(0.0, rng)


class TestWorkloadTrace:
    def test_synthesize_produces_sorted_requests(self):
        trace = WorkloadTrace.synthesize("f", PoissonArrivals(4.0), 50.0, rng=3)
        times = [request.submitted_at for request in trace]
        assert times == sorted(times)
        assert trace.functions() == ["f"]
        assert trace.duration_s == times[-1]
        assert trace.mean_rate_per_s() == pytest.approx(4.0, rel=0.4)

    def test_merge_interleaves_by_time(self):
        a = WorkloadTrace.synthesize("a", ConstantRateArrivals(1.0), 10.0, rng=0)
        b = WorkloadTrace.synthesize("b", ConstantRateArrivals(1.0, phase_s=0.5), 10.0, rng=0)
        merged = WorkloadTrace.merge(a, b)
        assert len(merged) == len(a) + len(b)
        assert merged.functions() == ["a", "b"]
        names = [request.function_name for request in merged][:4]
        assert names == ["a", "b", "a", "b"]

    def test_json_round_trip(self, tmp_path):
        trace = WorkloadTrace.synthesize(
            "f",
            PoissonArrivals(2.0),
            20.0,
            rng=5,
            payload={"size": 1},
            payload_bytes=64,
            trigger=TriggerType.SDK,
        )
        path = tmp_path / "trace.json"
        trace.to_json(path, indent=2)
        loaded = WorkloadTrace.from_json(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert restored == original
        # Round-trip via a JSON string as well.
        again = WorkloadTrace.from_json(trace.to_json())
        assert list(again) == list(trace)

    def test_from_json_validates_structure(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_json(json.dumps({"version": 99, "requests": []}))
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_json(json.dumps({"requests": [{"submitted_at": 1.0}]}))
        with pytest.raises(ConfigurationError):
            WorkloadTrace.from_json(json.dumps({"requests": "nope"}))

    def test_negative_timestamps_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace([InvocationRequest(function_name="f", submitted_at=-1.0)])

    def test_payload_bytes_zero_survives_round_trip(self):
        """An explicit 0 override is distinct from 'measure the payload'."""
        trace = WorkloadTrace(
            [
                InvocationRequest(function_name="f", payload={"k": "v"}, payload_bytes=0),
                InvocationRequest(function_name="f", payload={"k": "v"}, submitted_at=1.0),
            ]
        )
        loaded = WorkloadTrace.from_json(trace.to_json())
        assert loaded[0].payload_bytes == 0
        assert loaded[1].payload_bytes is None

    def test_mean_rate_uses_observed_span(self):
        trace = WorkloadTrace(
            [InvocationRequest(function_name="f", submitted_at=100.0 + i) for i in range(11)]
        )
        # 11 arrivals, 10 gaps of 1s: rate 1/s regardless of the 100s lead-in.
        assert trace.mean_rate_per_s() == pytest.approx(1.0)
        single = WorkloadTrace([InvocationRequest(function_name="f", submitted_at=5.0)])
        assert single.mean_rate_per_s() == 0.0


class TestScenario:
    def test_build_trace_is_deterministic(self):
        scenario = Scenario(
            name="pair",
            duration_s=100.0,
            traffic=(
                FunctionTraffic("alpha", PoissonArrivals(2.0)),
                FunctionTraffic("beta", BurstyArrivals(8.0, 5.0, 15.0)),
            ),
        )
        first = scenario.build_trace(seed=9)
        second = scenario.build_trace(seed=9)
        other = scenario.build_trace(seed=10)
        assert list(first) == list(second)
        assert list(first) != list(other)
        assert first.functions() == ["alpha", "beta"]

    def test_standard_scenarios(self):
        for pattern in ("constant", "poisson", "bursty", "diurnal", "mixed"):
            scenario = standard_scenario(pattern, ["f1", "f2", "f3"], duration_s=50.0, rate_per_s=1.0)
            trace = scenario.build_trace(seed=1)
            assert len(trace) > 0
            assert set(trace.functions()) <= {"f1", "f2", "f3"}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            standard_scenario("lumpy", ["f"])
        with pytest.raises(ConfigurationError):
            standard_scenario("poisson", [])


def _deploy(platform, fname="svc", benchmark="dynamic-html"):
    return deploy_benchmark(
        platform,
        benchmark,
        memory_mb=256 if platform.limits.memory_static else 0,
        function_name=fname,
    )


class TestEventQueueEngine:
    def test_overlapping_arrivals_need_two_containers(self, aws):
        """Back-to-back requests overlap in time, so each needs a sandbox."""
        fname = _deploy(aws)
        trace = WorkloadTrace(
            [
                InvocationRequest(function_name=fname, submitted_at=0.0),
                InvocationRequest(function_name=fname, submitted_at=0.001),
            ]
        )
        records = list(aws.invoke_stream(trace))
        assert [record.start_type for record in records] == [StartType.COLD, StartType.COLD]
        assert records[0].container_id != records[1].container_id
        assert aws.warm_container_count(fname) == 2

    def test_spaced_arrivals_reuse_one_container(self, aws):
        """A request arriving after the first finishes reuses its sandbox."""
        fname = _deploy(aws)
        trace = WorkloadTrace(
            [
                InvocationRequest(function_name=fname, submitted_at=0.0),
                InvocationRequest(function_name=fname, submitted_at=60.0),
            ]
        )
        records = list(aws.invoke_stream(trace))
        assert records[0].start_type is StartType.COLD
        assert records[1].start_type is StartType.WARM
        assert records[0].container_id == records[1].container_id
        assert records[0].finished_at <= 60.0
        assert aws.warm_container_count(fname) == 1

    def test_concurrency_follows_overlap(self, aws):
        """An arrival overlapping N in-flight executions sees concurrency N+1."""
        fname = _deploy(aws)
        trace = WorkloadTrace(
            [InvocationRequest(function_name=fname, submitted_at=0.001 * i) for i in range(5)]
        )
        result = aws.run_workload(trace)
        assert result.peak_in_flight == 5
        assert result.cold_start_count == 5

    def test_azure_shares_app_instances_under_overlap(self, azure):
        """Azure packs concurrent executions into one function-app instance."""
        fname = _deploy(azure)
        trace = WorkloadTrace(
            [InvocationRequest(function_name=fname, submitted_at=0.001 * i) for i in range(6)]
        )
        records = list(azure.invoke_stream(trace))
        containers = {record.container_id for record in records}
        assert len(containers) == 1
        assert sum(1 for r in records if r.start_type is StartType.COLD) == 1

    def test_clock_advances_to_last_completion(self, aws):
        fname = _deploy(aws)
        trace = WorkloadTrace([InvocationRequest(function_name=fname, submitted_at=5.0)])
        result = aws.run_workload(trace)
        assert aws.clock.now() == pytest.approx(result.records[0].finished_at)
        assert result.records[0].submitted_at == pytest.approx(5.0)
        # The span covers first submission to last completion, not the
        # idle lead-in before the first arrival.
        record = result.records[0]
        assert result.simulated_span_s == pytest.approx(record.finished_at - record.submitted_at)

    def test_explicit_zero_payload_bytes_is_honoured(self, simulation):
        """payload_bytes=0 in a trace matches invoke(..., payload_bytes=0)."""
        big_payload = {"blob": "x" * 500_000}

        def replay(payload_bytes):
            platform = create_platform(Provider.AWS, simulation=simulation)
            fname = _deploy(platform)
            trace = WorkloadTrace(
                [
                    InvocationRequest(
                        function_name=fname, payload=big_payload, payload_bytes=payload_bytes
                    )
                ]
            )
            return list(platform.invoke_stream(trace))[0]

        overridden = replay(0)
        measured = replay(None)
        # The 500 kB upload time only appears when the size is measured.
        assert measured.invocation_overhead_s > overridden.invocation_overhead_s + 0.01

    def test_stream_rejects_unsorted_requests(self, aws):
        fname = _deploy(aws)
        requests = [
            InvocationRequest(function_name=fname, submitted_at=1.0),
            InvocationRequest(function_name=fname, submitted_at=0.5),
        ]
        with pytest.raises(ConfigurationError):
            list(aws.invoke_stream(requests))

    def test_run_workload_validates_functions_upfront(self, aws):
        trace = WorkloadTrace([InvocationRequest(function_name="ghost", submitted_at=0.0)])
        with pytest.raises(FunctionNotFoundError):
            aws.run_workload(trace)
        # Nothing was simulated: the clock has not moved.
        assert aws.clock.now() == 0.0

    def test_run_workload_is_deterministic_for_10k_poisson_trace(self):
        """Acceptance: same seed => identical cold-start count and cost."""

        def replay() -> tuple:
            platform = create_platform(Provider.AWS, SimulationConfig(seed=1234))
            fname = _deploy(platform)
            trace = WorkloadTrace.synthesize(fname, PoissonArrivals(10.0), 1000.0, rng=99)
            assert len(trace) >= 9_500  # ~10k arrivals at 10/s over 1000s
            result = platform.run_workload(trace)
            return result.invocations, result.cold_start_count, result.total_cost_usd

        first = replay()
        second = replay()
        assert first == second
        assert first[1] > 0 and first[2] > 0

    def test_per_function_summaries(self, aws):
        web = _deploy(aws, "web", "dynamic-html")
        thumbs = _deploy(aws, "thumbs", "thumbnailer")
        scenario = Scenario(
            name="two",
            duration_s=60.0,
            traffic=(
                FunctionTraffic(web, PoissonArrivals(2.0)),
                FunctionTraffic(thumbs, PoissonArrivals(1.0)),
            ),
        )
        result = aws.run_workload(scenario.build_trace(seed=3))
        summaries = result.per_function()
        assert set(summaries) == {"web", "thumbs"}
        assert sum(s.invocations for s in summaries.values()) == result.invocations
        assert sum(s.total_cost_usd for s in summaries.values()) == pytest.approx(result.total_cost_usd)
        for summary in summaries.values():
            assert summary.client_time is not None
            assert 0.0 <= summary.cold_start_rate <= 1.0
            row = summary.to_row()
            assert row["invocations"] == summary.invocations
        rows = result.to_rows()
        assert len(rows) == 2
        assert result.summary_row()["invocations"] == result.invocations

    def test_half_life_eviction_is_idempotent_between_periods(self, aws):
        """Repeated lazy policy application must not re-halve survivors."""
        fname = _deploy(aws)
        aws.invoke_batch(fname, 8)
        aws.clock.advance(400.0)  # one 380s period elapsed
        assert aws.warm_container_count(fname) == 4
        # Asking again (as every scheduling decision does) must not evict more.
        assert aws.warm_container_count(fname) == 4
        aws.clock.advance(380.0)  # second period
        assert aws.warm_container_count(fname) == 2

    def test_half_life_eviction_survives_external_invalidation(self, aws):
        """Containers created after update_function follow their own half-life.

        Regression: the policy must not remember the pre-invalidation batch
        size, or the smaller replacement population would never be evicted.
        """
        fname = _deploy(aws)
        aws.invoke_batch(fname, 8)
        aws.update_function(fname)  # invalidates all warm sandboxes
        aws.invoke_batch(fname, 2)  # same 380s creation window
        aws.clock.advance(400.0)
        assert aws.warm_container_count(fname) == 1
        aws.clock.advance(380.0)
        assert aws.warm_container_count(fname) == 0


class TestInvokeBatchValidation:
    def test_missing_function_wins_over_bad_count(self, aws):
        """Regression: fname is validated before the batch size."""
        with pytest.raises(FunctionNotFoundError):
            aws.invoke_batch("ghost", 0)
        with pytest.raises(FunctionNotFoundError):
            aws.invoke_batch("ghost", -3)

    def test_bad_count_still_rejected_for_existing_function(self, aws):
        fname = _deploy(aws)
        with pytest.raises(PlatformError):
            aws.invoke_batch(fname, 0)


class TestWorkloadReplayExperiment:
    def test_replays_same_trace_on_every_provider(self):
        experiment = WorkloadReplayExperiment(
            config=ExperimentConfig(samples=1, seed=7), simulation=SimulationConfig(seed=7)
        )
        deployments = (
            WorkloadDeployment("web", "dynamic-html", 256),
            WorkloadDeployment("thumbs", "thumbnailer", 1024),
        )
        result = experiment.run(
            providers=(Provider.AWS, Provider.AZURE),
            deployments=deployments,
            pattern="poisson",
            duration_s=60.0,
            rate_per_s=1.0,
        )
        assert set(result.per_provider) == {Provider.AWS, Provider.AZURE}
        for provider_result in result.per_provider.values():
            assert provider_result.invocations == result.trace_invocations
        rows = result.to_rows()
        assert {row["provider"] for row in rows} == {"aws", "azure"}
        assert len(result.summary_rows()) == 2

    def test_replays_external_trace(self, tmp_path):
        experiment = WorkloadReplayExperiment(
            config=ExperimentConfig(samples=1, seed=7), simulation=SimulationConfig(seed=7)
        )
        trace = WorkloadTrace.synthesize("web", ConstantRateArrivals(1.0), 20.0, rng=1)
        path = tmp_path / "external.json"
        trace.to_json(path)
        result = experiment.run(
            providers=(Provider.AWS,),
            deployments=(WorkloadDeployment("web", "dynamic-html", 256),),
            trace=WorkloadTrace.from_json(path),
        )
        assert result.scenario_name == "trace"
        assert result.per_provider[Provider.AWS].invocations == len(trace)
