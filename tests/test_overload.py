"""Concurrency-limit & throttling subsystem (:mod:`repro.concurrency`).

Covers the Table 2 limit edges (cpu share clamps, memory/package
validation), the burst-profile/throttle unit behaviour, the retry
policies, the engine's throttle/spill paths (THROTTLED without a sandbox,
deterministic retries, billing rules, admission-queue delays and drops),
streaming-vs-record counter agreement, the workflow integration, the CLI
flags and the CI perf-regression gate.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.concurrency import (
    AdmissionQueue,
    BurstKind,
    BurstProfile,
    FunctionThrottle,
    OverloadConfig,
    QueuedInvocation,
    build_function_throttle,
    burst_profile_for,
    create_retry_policy,
)
from repro.config import (
    DYNAMIC_MEMORY,
    InvocationOutcome,
    Provider,
    SimulationConfig,
    StartType,
    TriggerType,
)
from repro.exceptions import ConfigurationError, DeploymentError
from repro.experiments.base import deploy_benchmark
from repro.experiments.overload import OverloadExperiment
from repro.faas.invocation import InvocationRequest
from repro.faas.limits import limits_for
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------
# faas/limits.py edges: cpu share clamps and validation boundaries
# --------------------------------------------------------------------------
class TestPlatformLimitEdges:
    def test_cpu_share_clamps_at_minimum(self):
        aws = limits_for(Provider.AWS)
        # 64 MB of 1792 MB would be ~0.036 of a vCPU; clamped to 0.05.
        assert aws.cpu_share(64) == pytest.approx(0.05)

    def test_cpu_share_clamps_at_two_vcpus(self):
        gcp = limits_for(Provider.GCP)
        # 8 GB of a 2048 MB full-vCPU point would be 4 cores; clamped to 2.
        assert gcp.cpu_share(8192) == pytest.approx(2.0)

    def test_cpu_share_reaches_exactly_one_vcpu(self):
        aws = limits_for(Provider.AWS)
        assert aws.cpu_share(aws.full_vcpu_memory_mb) == pytest.approx(1.0)

    def test_cpu_share_dynamic_memory_is_full_core(self):
        azure = limits_for(Provider.AZURE)
        assert azure.cpu_share(DYNAMIC_MEMORY) == pytest.approx(1.0)
        # Static providers treat the dynamic sentinel as a full core too.
        assert limits_for(Provider.AWS).cpu_share(DYNAMIC_MEMORY) == pytest.approx(1.0)

    def test_memory_bounds_are_inclusive(self):
        aws = limits_for(Provider.AWS)
        aws.validate_memory(aws.memory_min_mb)
        aws.validate_memory(aws.memory_max_mb)
        with pytest.raises(ConfigurationError):
            aws.validate_memory(aws.memory_max_mb + 1)
        with pytest.raises(ConfigurationError):
            aws.validate_memory(aws.memory_min_mb - 1)

    def test_gcp_allowed_memory_list_is_exact(self):
        gcp = limits_for(Provider.GCP)
        gcp.validate_memory(2048)
        with pytest.raises(ConfigurationError):
            gcp.validate_memory(1536)  # in range but not an allowed step

    def test_azure_rejects_static_memory(self):
        azure = limits_for(Provider.AZURE)
        azure.validate_memory(DYNAMIC_MEMORY)
        with pytest.raises(ConfigurationError):
            azure.validate_memory(512)

    def test_package_limit_edge(self):
        gcp = limits_for(Provider.GCP)
        gcp.validate_package(gcp.deployment_limit_mb)
        with pytest.raises(DeploymentError):
            gcp.validate_package(gcp.deployment_limit_mb + 0.1)

    def test_concurrency_limits_match_table2(self):
        assert limits_for(Provider.AWS).concurrency_limit == 1000
        assert limits_for(Provider.AZURE).concurrency_limit == 200
        assert limits_for(Provider.GCP).concurrency_limit == 100


# --------------------------------------------------------------------------
# Burst profiles and the FunctionThrottle unit behaviour
# --------------------------------------------------------------------------
class TestBurstProfiles:
    def test_every_provider_has_an_entry(self):
        for provider in Provider:
            burst_profile_for(provider)  # no KeyError

    def test_commercial_kinds(self):
        assert burst_profile_for(Provider.AWS).kind is BurstKind.TOKEN_BUCKET
        assert burst_profile_for(Provider.GCP).kind is BurstKind.INSTANCE_RATE
        assert burst_profile_for(Provider.AZURE).kind is BurstKind.INSTANCE_RATE
        assert burst_profile_for(Provider.IAAS) is None

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstProfile(BurstKind.TOKEN_BUCKET, initial=0, ramp_per_s=1.0)
        with pytest.raises(ConfigurationError):
            BurstProfile(BurstKind.TOKEN_BUCKET, initial=1, ramp_per_s=-1.0)


class TestFunctionThrottle:
    def test_hard_limit_without_burst(self):
        throttle = FunctionThrottle(limit=2)
        assert throttle.try_admit(0.0, in_flight=0)
        assert throttle.try_admit(0.0, in_flight=1)
        assert not throttle.try_admit(0.0, in_flight=2)

    def test_token_bucket_consumes_on_growth_and_refills(self):
        profile = BurstProfile(BurstKind.TOKEN_BUCKET, initial=2, ramp_per_s=1.0)
        throttle = FunctionThrottle(limit=10, profile=profile)
        assert throttle.try_admit(0.0, in_flight=0)  # granted 1, 1 token left
        assert throttle.try_admit(0.0, in_flight=1)  # granted 2, 0 tokens
        assert not throttle.try_admit(0.0, in_flight=2)  # bucket empty
        # Re-admitting below the high-water mark costs nothing.
        assert throttle.try_admit(0.0, in_flight=0)
        # One second refills one token: concurrency 3 is now grantable.
        assert throttle.try_admit(1.0, in_flight=2)
        assert not throttle.try_admit(1.0, in_flight=3)

    def test_token_bucket_never_exceeds_hard_limit(self):
        profile = BurstProfile(BurstKind.TOKEN_BUCKET, initial=100, ramp_per_s=100.0)
        throttle = FunctionThrottle(limit=3, profile=profile)
        for in_flight in range(3):
            assert throttle.try_admit(0.0, in_flight=in_flight)
        assert not throttle.try_admit(1000.0, in_flight=3)

    def test_instance_rate_ramp(self):
        profile = BurstProfile(BurstKind.INSTANCE_RATE, initial=1, ramp_per_s=1.0)
        throttle = FunctionThrottle(limit=100, profile=profile)
        assert throttle.try_admit(0.0, in_flight=0)  # 1 instance
        assert not throttle.try_admit(0.5, in_flight=1)  # still 1 instance
        assert throttle.try_admit(2.0, in_flight=1)  # 3 instances by t=2
        assert throttle.try_admit(2.0, in_flight=2)
        assert not throttle.try_admit(2.0, in_flight=3)

    def test_instance_rate_multiplies_by_slot_capacity(self):
        profile = BurstProfile(BurstKind.INSTANCE_RATE, initial=1, ramp_per_s=0.0)
        throttle = FunctionThrottle(limit=100, profile=profile, slot_capacity=8)
        for in_flight in range(8):
            assert throttle.try_admit(0.0, in_flight=in_flight)
        assert not throttle.try_admit(0.0, in_flight=8)

    def test_allowance_is_read_only(self):
        profile = BurstProfile(BurstKind.TOKEN_BUCKET, initial=2, ramp_per_s=0.0)
        throttle = FunctionThrottle(limit=10, profile=profile)
        assert throttle.allowance(0.0) == 2
        assert throttle.allowance(0.0) == 2  # no token was consumed
        assert throttle.try_admit(0.0, in_flight=0)
        assert throttle.allowance(0.0) == 2  # granted 1 + 1 token left

    def test_build_uses_tightest_cap_and_overrides(self):
        overload = OverloadConfig(
            reserved_concurrency=5, per_function_reserved={"hot": 2}
        )
        limits = limits_for(Provider.AWS)
        assert build_function_throttle("hot", overload, limits, Provider.AWS).limit == 2
        assert build_function_throttle("cold", overload, limits, Provider.AWS).limit == 5
        uncapped = OverloadConfig()
        assert (
            build_function_throttle("x", uncapped, limits, Provider.AWS).limit
            == limits.concurrency_limit
        )
        accounted = OverloadConfig(reserved_concurrency=5000, account_concurrency=300)
        assert build_function_throttle("x", accounted, limits, Provider.AWS).limit == 300


class TestRetryPolicies:
    def test_none_gives_up_immediately(self):
        policy = create_retry_policy("none")
        assert policy.next_delay(1, None) is None

    def test_immediate_is_deterministic_and_bounded(self):
        policy = create_retry_policy("immediate", max_retries=2)
        assert policy.next_delay(1, None) == 0.0
        assert policy.next_delay(2, None) == 0.0
        assert policy.next_delay(3, None) is None

    def test_exponential_jitter_is_seeded_and_capped(self):
        policy = create_retry_policy(
            "exponential", max_retries=5, base_delay_s=0.1, max_delay_s=0.3
        )
        delays_a = [policy.next_delay(n, np.random.default_rng(7)) for n in range(1, 6)]
        delays_b = [policy.next_delay(n, np.random.default_rng(7)) for n in range(1, 6)]
        assert delays_a == delays_b  # same stream, same sequence
        for attempt, delay in enumerate(delays_a, start=1):
            assert 0.0 <= delay <= min(0.3, 0.1 * 2.0 ** (attempt - 1))
        assert policy.next_delay(6, np.random.default_rng(7)) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            create_retry_policy("fibonacci")


class TestOverloadConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"reserved_concurrency": 0},
            {"account_concurrency": 0},
            {"per_function_reserved": {"f": 0}},
            {"retry_policy": "bogus"},
            {"max_retries": -1},
            {"retry_base_delay_s": 0.0},
            {"admission_queue_depth": -1},
            {"admission_max_age_s": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            OverloadConfig(**kwargs)


class TestAdmissionQueue:
    def test_bounded_push_and_fifo(self):
        queue = AdmissionQueue(depth=2, max_age_s=1.0)
        first = QueuedInvocation(0.0, 0, InvocationRequest("f"))
        assert queue.push(first)
        assert queue.push(QueuedInvocation(0.1, 1, InvocationRequest("f")))
        assert not queue.push(QueuedInvocation(0.2, 2, InvocationRequest("f")))
        assert queue.head() is first
        assert not queue.head_expired(1.0)
        assert queue.head_expired(1.5)
        assert queue.pop() is first
        assert len(queue) == 1


# --------------------------------------------------------------------------
# Engine integration: throttle path, retries, billing, async spill
# --------------------------------------------------------------------------
def _overloaded_platform(
    provider=Provider.AWS,
    seed: int = 11,
    functions: tuple[str, ...] = ("hot",),
    **overload_kwargs,
):
    overload = OverloadConfig(**overload_kwargs)
    platform = create_platform(provider, SimulationConfig(seed=seed, overload=overload))
    for fname in functions:
        deploy_benchmark(
            platform,
            "dynamic-html",
            memory_mb=256 if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _burst_trace(fname: str, count: int, trigger=TriggerType.HTTP) -> WorkloadTrace:
    """``count`` simultaneous arrivals — a guaranteed over-limit burst."""
    return WorkloadTrace(
        InvocationRequest(fname, trigger=trigger, submitted_at=0.0) for _ in range(count)
    )


class TestThrottlePath:
    def test_over_limit_sync_yields_throttled_not_a_container(self):
        platform = _overloaded_platform(
            reserved_concurrency=1, retry_policy="none"
        )
        result = platform.run_workload(_burst_trace("hot", 3))
        outcomes = [record.outcome for record in result.records]
        assert outcomes.count(InvocationOutcome.THROTTLED) == 2
        assert outcomes.count(InvocationOutcome.COMPLETED) == 1
        throttled = [r for r in result.records if r.outcome is InvocationOutcome.THROTTLED]
        for record in throttled:
            assert record.start_type is StartType.NONE
            assert record.container_id == ""
            assert not record.success
            assert record.cost.total == 0.0
            assert record.error == "throttled"
        # Only the admitted invocation ever materialised a sandbox.
        assert platform._state["hot"].pool.total_created() == 1

    def test_throttles_do_not_bill_retries_bill_once(self):
        # Cap 1 with immediate retries: the burst serializes through retries
        # (each admitted request frees the slot only at its completion, but
        # retries re-attempt immediately, so some get admitted later).
        platform = _overloaded_platform(
            reserved_concurrency=1, retry_policy="immediate", max_retries=50
        )
        result = platform.run_workload(_burst_trace("hot", 3))
        executed = [r for r in result.records if r.executed]
        shed = [r for r in result.records if not r.executed]
        assert executed and all(r.cost.total > 0 for r in executed)
        assert all(r.cost.total == 0.0 for r in shed)
        assert result.total_cost_usd == sum(r.cost.total for r in executed)

    def test_retried_request_accounts_backoff_in_client_time(self):
        platform = _overloaded_platform(
            reserved_concurrency=1, retry_policy="exponential", max_retries=8
        )
        result = platform.run_workload(_burst_trace("hot", 2))
        late = [r for r in result.records if r.executed and r.attempts > 1]
        assert late, "expected at least one retried-then-admitted request"
        for record in late:
            assert record.admission_delay_s > 0.0
            assert record.admitted_at == pytest.approx(
                record.submitted_at + record.admission_delay_s
            )
            assert record.client_time_s == pytest.approx(
                record.finished_at - record.submitted_at
            )

    def test_retries_are_deterministic_per_seed(self):
        trace = WorkloadTrace.synthesize("hot", PoissonArrivals(40.0), 10.0, rng=3)
        kwargs = dict(reserved_concurrency=2, retry_policy="exponential", max_retries=3)
        first = _overloaded_platform(seed=21, **kwargs).run_workload(trace)
        second = _overloaded_platform(seed=21, **kwargs).run_workload(trace)
        assert first.records == second.records
        other_seed = _overloaded_platform(seed=22, **kwargs).run_workload(trace)
        assert [r.admission_delay_s for r in other_seed.records] != [
            r.admission_delay_s for r in first.records
        ]

    def test_records_stay_in_arrival_order(self):
        trace = WorkloadTrace.synthesize("hot", PoissonArrivals(40.0), 10.0, rng=3)
        platform = _overloaded_platform(reserved_concurrency=2)
        result = platform.run_workload(trace)
        indices = [record.request_index for record in result.records]
        assert indices == sorted(indices)
        submitted = [record.submitted_at for record in result.records]
        assert submitted == sorted(submitted)

    def test_disabled_overload_throttles_nothing(self):
        platform = create_platform(Provider.AWS, SimulationConfig(seed=11))
        deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name="hot")
        result = platform.run_workload(_burst_trace("hot", 50))
        assert result.throttled_count == 0
        assert all(r.outcome is not InvocationOutcome.THROTTLED for r in result.records)


class TestAsyncSpill:
    def test_queued_requests_run_late_with_delay_accounting(self):
        platform = _overloaded_platform(
            reserved_concurrency=1, admission_queue_depth=10, admission_max_age_s=None
        )
        result = platform.run_workload(_burst_trace("hot", 4, trigger=TriggerType.QUEUE))
        assert result.throttled_count == 0  # async never 429s
        assert result.dropped_count == 0
        executed = [r for r in result.records if r.executed]
        assert len(executed) == 4
        delayed = [r for r in executed if r.admission_delay_s > 0.0]
        assert len(delayed) == 3  # everything behind the first waited
        assert result.queue_delay_s == pytest.approx(
            sum(r.admission_delay_s for r in delayed)
        )
        # Queued requests keep their original submission time.
        assert all(r.submitted_at == executed[0].submitted_at for r in executed)

    def test_queue_full_drops_immediately(self):
        platform = _overloaded_platform(
            reserved_concurrency=1, admission_queue_depth=2, admission_max_age_s=None
        )
        result = platform.run_workload(_burst_trace("hot", 6, trigger=TriggerType.QUEUE))
        drops = [r for r in result.records if r.outcome is InvocationOutcome.DROPPED]
        assert len(drops) == 3  # 1 admitted, 2 queued, 3 over the bound
        assert all(r.error == "queue-full" for r in drops)
        assert all(r.cost.total == 0.0 for r in drops)

    def test_age_based_drops(self):
        platform = _overloaded_platform(
            reserved_concurrency=1, admission_queue_depth=50, admission_max_age_s=0.001
        )
        result = platform.run_workload(_burst_trace("hot", 4, trigger=TriggerType.QUEUE))
        expired = [r for r in result.records if r.error == "expired"]
        assert expired, "expected queue entries to age out behind a long execution"
        for record in expired:
            assert record.outcome is InvocationOutcome.DROPPED
            assert record.admission_delay_s > 0.001


class TestCounterConsistency:
    def test_streaming_equals_record_mode(self):
        trace = WorkloadTrace.merge(
            WorkloadTrace.synthesize("hot", PoissonArrivals(30.0), 15.0, rng=1),
            WorkloadTrace.synthesize(
                "worker", PoissonArrivals(20.0), 15.0, rng=2, trigger=TriggerType.QUEUE
            ),
        )
        kwargs = dict(
            functions=("hot", "worker"),
            reserved_concurrency=2,
            max_retries=2,
            admission_queue_depth=20,
            admission_max_age_s=2.0,
        )
        records = _overloaded_platform(**kwargs).run_workload(trace)
        streaming = _overloaded_platform(**kwargs).run_workload(trace, keep_records=False)
        for attribute in (
            "invocations",
            "throttled_count",
            "dropped_count",
            "retry_count",
            "failure_count",
            "cold_start_count",
            "simulated_span_s",
        ):
            assert getattr(streaming, attribute) == getattr(records, attribute), attribute
        # Float totals are summed in a different order by the two modes
        # (record mode: arrival order; streaming: per-function then sorted
        # names), so cross-MODE they agree to float associativity.  The
        # exactness guarantee is within a mode: serial vs sharded replays
        # of the same mode match bit-for-bit (test_parallel_equivalence).
        assert streaming.total_cost_usd == pytest.approx(records.total_cost_usd, rel=1e-12)
        assert streaming.queue_delay_s == pytest.approx(records.queue_delay_s, rel=1e-12)
        record_fns = records.per_function()
        for fname, summary in streaming.per_function().items():
            exact = record_fns[fname]
            assert summary.invocations == exact.invocations
            assert summary.throttled == exact.throttled
            assert summary.dropped == exact.dropped
            assert summary.retries == exact.retries
            assert summary.queued == exact.queued
            assert summary.queue_delay_s == pytest.approx(exact.queue_delay_s)

    def test_outcomes_partition_the_requests(self):
        trace = WorkloadTrace.synthesize("hot", PoissonArrivals(50.0), 10.0, rng=9)
        result = _overloaded_platform(reserved_concurrency=2).run_workload(trace)
        executed = sum(1 for r in result.records if r.executed)
        assert (
            executed + result.throttled_count + result.dropped_count
            == result.invocations
            == len(trace)
        )


class TestWorkflowIntegration:
    def test_workflow_replay_under_overload(self):
        from repro.workflows import standard_workflow, synthesize_workflow_arrivals

        overload = OverloadConfig(reserved_concurrency=2, max_retries=1)
        platform = create_platform(Provider.AWS, SimulationConfig(seed=5, overload=overload))
        spec, functions = standard_workflow("fanout", fan_out=4)
        for function in functions:
            deploy_benchmark(
                platform,
                function.benchmark,
                memory_mb=function.memory_mb,
                function_name=function.function_name,
            )
        arrivals = synthesize_workflow_arrivals(
            spec, PoissonArrivals(8.0), duration_s=15.0, rng=5
        )
        records = []
        result = platform.run_workflows(arrivals, record_sink=records.append)
        assert result.execution_count == len(arrivals)
        # Fan-out stages are queue-triggered: over the cap they spill and
        # run late (or drop) rather than throttle; every stage task still
        # resolves to exactly one record.
        assert result.invocation_total == len(records)
        shed = [r for r in records if not r.executed]
        assert shed, "expected the cap to shed some workflow stage tasks"
        # A shed stage counts as a failed constituent invocation.
        assert result.failure_total >= len(
            [r for r in shed if r.outcome is InvocationOutcome.THROTTLED]
        )


class TestOverloadExperiment:
    def test_sweep_shape(self, quick_config):
        experiment = OverloadExperiment(
            config=quick_config, simulation=SimulationConfig(seed=99)
        )
        result = experiment.run(
            providers=(Provider.AWS,),
            reserved_levels=(2, None),
            duration_s=20.0,
            sync_rate_per_s=20.0,
            async_rate_per_s=10.0,
        )
        assert len(result.points) == 2
        tight, loose = result.points
        assert tight.reserved_concurrency == 2 and loose.reserved_concurrency is None
        assert tight.throttled > loose.throttled
        assert tight.executed + tight.throttled + tight.dropped == tight.invocations
        rows = result.to_rows()
        assert rows[0]["throttle_pct"] > rows[1]["throttle_pct"]


class TestCLIFlags:
    def test_workload_with_reserved_concurrency(self, capsys, tmp_path):
        output = tmp_path / "summary.json"
        exit_code = cli_main(
            [
                "workload",
                "--pattern",
                "bursty",
                "--duration",
                "15",
                "--rate",
                "5",
                "--reserved-concurrency",
                "2",
                "--retry-policy",
                "immediate",
                "--providers",
                "aws",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "throttled" in printed
        document = json.loads(output.read_text())
        assert any("throttled" in row for row in document["providers"])

    def test_retry_policy_alone_enables_the_model(self, capsys):
        # --retry-policy without a cap still builds an OverloadConfig (the
        # account cap and burst ramp apply); the command must run clean.
        exit_code = cli_main(
            [
                "workload",
                "--pattern",
                "constant",
                "--duration",
                "5",
                "--rate",
                "2",
                "--retry-policy",
                "none",
                "--providers",
                "aws",
            ]
        )
        assert exit_code == 0


# --------------------------------------------------------------------------
# CI perf-regression gate (benchmarks/check_regression.py)
# --------------------------------------------------------------------------
def _load_check_regression():
    path = REPO_ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckRegression:
    @pytest.fixture(scope="class")
    def gate(self):
        return _load_check_regression()

    def test_passes_on_committed_baselines(self, gate):
        current = gate.load_current_metrics(REPO_ROOT / "benchmarks")
        baselines = json.loads(
            (REPO_ROOT / "benchmarks" / "baselines.json").read_text()
        )
        assert gate.compare(current, baselines) == []

    def test_fails_on_25_percent_slowdown(self, gate):
        baselines = {
            "tolerance": 0.25,
            "benchmarks": {
                "smoke_replay": {
                    "trace_throughput_per_s": {"baseline": 10_000.0, "direction": "higher"}
                }
            },
        }
        # 25% under baseline sits exactly on the floor (passes); beyond fails.
        at_floor = {"smoke_replay": {"trace_throughput_per_s": 7_500.0}}
        assert gate.compare(at_floor, baselines) == []
        slower = {"smoke_replay": {"trace_throughput_per_s": 7_499.0}}
        failures = gate.compare(slower, baselines)
        assert len(failures) == 1 and "trace_throughput_per_s" in failures[0]

    def test_fails_on_memory_regression(self, gate):
        baselines = {
            "tolerance": 0.25,
            "benchmarks": {
                "workload_throughput_100k": {
                    "peak_rss_mb": {"baseline": 100.0, "direction": "lower"}
                }
            },
        }
        assert gate.compare(
            {"workload_throughput_100k": {"peak_rss_mb": 124.9}}, baselines
        ) == []
        failures = gate.compare(
            {"workload_throughput_100k": {"peak_rss_mb": 130.0}}, baselines
        )
        assert len(failures) == 1

    def test_missing_benchmark_or_metric_fails(self, gate):
        baselines = {
            "tolerance": 0.25,
            "benchmarks": {"smoke_replay": {"x": {"baseline": 1.0, "direction": "higher"}}},
        }
        assert gate.compare({}, baselines)  # benchmark missing
        assert gate.compare({"smoke_replay": {}}, baselines)  # metric missing
