"""Tests for repro.metrics and repro.models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.benchmarks.base import InputSize
from repro.benchmarks.registry import default_registry
from repro.config import Provider, StartType
from repro.exceptions import ExperimentError, ModelFitError
from repro.experiments.base import deploy_benchmark
from repro.metrics.cloud import aggregate_records
from repro.metrics.local import measure_local
from repro.models.breakeven import break_even_analysis
from repro.models.cold_start import cold_start_overheads, cold_warm_ratio_distribution
from repro.models.eviction import (
    ContainerEvictionModel,
    fit_eviction_model,
    optimal_initial_batch,
    predict_warm_containers,
)
from repro.models.invocation_latency import fit_payload_latency


class TestLocalMetrics:
    def test_measure_local_dynamic_html(self):
        benchmark = default_registry().get("dynamic-html")
        metrics = measure_local(benchmark, size=InputSize.TEST, repetitions=3)
        assert metrics.benchmark == "dynamic-html"
        assert metrics.cold_time_s > 0 and metrics.warm_time_s > 0
        assert 0.0 <= metrics.cpu_utilization <= 1.0
        assert metrics.samples == 3
        assert metrics.output_bytes > 0

    def test_measure_local_records_storage_traffic(self):
        benchmark = default_registry().get("uploader")
        metrics = measure_local(benchmark, size=InputSize.TEST, repetitions=2)
        assert metrics.storage_write_bytes > 0

    def test_measure_local_requires_two_repetitions(self):
        benchmark = default_registry().get("dynamic-html")
        with pytest.raises(Exception):
            measure_local(benchmark, repetitions=1)

    def test_to_row_has_table4_columns(self):
        benchmark = default_registry().get("graph-bfs")
        row = measure_local(benchmark, size=InputSize.TEST, repetitions=2).to_row()
        for column in ("benchmark", "cold_time_ms", "warm_time_ms", "instructions", "cpu_utilization_pct"):
            assert column in row


class TestCloudMetricsAggregation:
    def _records(self, aws, n=20):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        return [aws.invoke(fname, payload={}) for _ in range(n)]

    def test_aggregate_all_records(self, aws):
        records = self._records(aws)
        metrics = aggregate_records(records)
        assert metrics.samples == len(records)
        assert metrics.benchmark == "graph-bfs"
        assert metrics.provider is Provider.AWS
        assert metrics.client_time.median > 0
        assert metrics.total_cost_usd > 0

    def test_aggregate_filters_by_start_type(self, aws):
        records = self._records(aws)
        warm = aggregate_records(records, start_type=StartType.WARM)
        assert warm.samples == len(records) - 1  # only the first record is cold

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ExperimentError):
            aggregate_records([])

    def test_error_rate_and_row(self, aws):
        records = self._records(aws, n=10)
        metrics = aggregate_records(records)
        assert metrics.error_rate == 0.0
        row = metrics.to_row()
        assert row["provider"] == "aws" and row["samples"] == 10


class TestEvictionModel:
    def test_equation_one_predictions(self):
        assert predict_warm_containers(20, 0.0) == 20
        assert predict_warm_containers(20, 380.0) == 10
        assert predict_warm_containers(20, 760.0) == 5
        assert predict_warm_containers(20, 379.9) == 20

    def test_model_predict_and_survival(self):
        model = ContainerEvictionModel(period_s=380.0, r_squared=1.0, n_observations=10)
        assert model.predict(8, 1140.0) == 1.0
        assert model.survival_fraction(760.0) == 0.25

    def test_predict_validation(self):
        model = ContainerEvictionModel(period_s=380.0, r_squared=1.0, n_observations=0)
        with pytest.raises(ModelFitError):
            model.predict(-1, 10.0)
        with pytest.raises(ModelFitError):
            model.predict(1, -10.0)

    def test_fit_recovers_known_period(self):
        observations = []
        for d_init in (8, 12, 20):
            for dt in (1, 100, 370, 400, 500, 700, 770, 900, 1100, 1200, 1500):
                observations.append((d_init, float(dt), int(d_init * 2 ** (-math.floor(dt / 380.0)))))
        model = fit_eviction_model(observations)
        assert model.period_s == pytest.approx(380.0)
        assert model.r_squared > 0.99

    def test_fit_requires_observations(self):
        with pytest.raises(ModelFitError):
            fit_eviction_model([])

    def test_equation_two_optimal_batch(self):
        # n instances of runtime t need n*t/P warm containers.
        assert optimal_initial_batch(instances_needed=380, function_runtime_s=1.0) == 1
        assert optimal_initial_batch(instances_needed=380, function_runtime_s=10.0) == 10
        assert optimal_initial_batch(instances_needed=100, function_runtime_s=3.8) == 1
        assert optimal_initial_batch(instances_needed=1, function_runtime_s=0.1) == 1

    def test_equation_two_validation(self):
        with pytest.raises(ModelFitError):
            optimal_initial_batch(0, 1.0)
        with pytest.raises(ModelFitError):
            optimal_initial_batch(1, 0.0)


class TestColdStartModel:
    def test_ratio_distribution_is_all_pairs(self):
        ratios = cold_warm_ratio_distribution([2.0, 4.0], [1.0, 2.0])
        assert sorted(ratios) == [1.0, 2.0, 2.0, 4.0]

    def test_requires_positive_warm_times(self):
        with pytest.raises(ModelFitError):
            cold_warm_ratio_distribution([1.0], [0.0])
        with pytest.raises(ModelFitError):
            cold_warm_ratio_distribution([], [1.0])

    def test_overhead_summary(self):
        overhead = cold_start_overheads("image-recognition", "aws", 2048, [10.0, 12.0], [1.0, 1.2])
        assert overhead.median_ratio == pytest.approx(10.0, rel=0.2)
        assert overhead.cold_median_s == pytest.approx(11.0)
        row = overhead.to_row()
        assert row["benchmark"] == "image-recognition" and row["median_ratio"] > 5


class TestPayloadLatencyModel:
    def test_linear_data_flagged_linear(self):
        payloads = np.array([1e3, 1e5, 1e6, 3e6, 6e6])
        latencies = 0.1 + payloads * 2e-7
        model = fit_payload_latency("aws", "warm", payloads, latencies)
        assert model.is_linear
        assert model.base_latency_s == pytest.approx(0.1, rel=0.05)
        assert model.latency_per_mb_s == pytest.approx(2e-7 * 1024 * 1024, rel=0.05)
        assert model.predict(2e6) == pytest.approx(0.1 + 2e6 * 2e-7, rel=0.05)

    def test_erratic_data_flagged_nonlinear(self):
        rng = np.random.default_rng(0)
        payloads = np.linspace(1e3, 6e6, 30)
        latencies = rng.exponential(5.0, size=30)
        model = fit_payload_latency("azure", "cold", payloads, latencies)
        assert not model.is_linear

    def test_mismatched_lengths(self):
        with pytest.raises(ModelFitError):
            fit_payload_latency("aws", "warm", [1.0, 2.0], [1.0])

    def test_to_row(self):
        model = fit_payload_latency("gcp", "warm", [0.0, 1e6, 2e6], [0.1, 0.3, 0.5])
        row = model.to_row()
        assert row["provider"] == "gcp" and row["linear"] is True


class TestBreakEven:
    def test_break_even_rate(self):
        point = break_even_analysis(
            benchmark="uploader",
            configuration="eco-1024MB",
            cost_per_million_usd=3.54,
            vm_hourly_cost_usd=0.0116,
            iaas_local_requests_per_hour=16627,
            iaas_cloud_requests_per_hour=11371,
        )
        # Table 6 reports 3275 requests/hour for the uploader Eco configuration.
        assert point.break_even_requests_per_hour == pytest.approx(3277, rel=0.01)
        assert point.iaas_can_sustain_breakeven
        assert point.faas_cheaper_below == point.break_even_requests_per_hour

    def test_cheaper_faas_raises_break_even(self):
        cheap = break_even_analysis("b", "eco", 2.0, 0.0116, 1e4, 1e4)
        pricey = break_even_analysis("b", "perf", 10.0, 0.0116, 1e4, 1e4)
        assert cheap.break_even_requests_per_hour > pricey.break_even_requests_per_hour

    def test_validation(self):
        with pytest.raises(ExperimentError):
            break_even_analysis("b", "c", 0.0, 0.0116, 1.0, 1.0)
        with pytest.raises(ExperimentError):
            break_even_analysis("b", "c", 1.0, 0.0, 1.0, 1.0)

    def test_to_row(self):
        row = break_even_analysis("graph-bfs", "perf-1536MB", 2.5, 0.0116, 119272, 117153).to_row()
        assert row["benchmark"] == "graph-bfs"
        assert row["break_even_req_per_hour"] == pytest.approx(4640, rel=0.01)
