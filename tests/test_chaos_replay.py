"""Chaos tier: supervised sharded replay under injected worker faults.

The contract pinned here (see ``docs/architecture.md``, "Supervised
execution & checkpointing"): **no recovery action moves a single simulated
number**.  Whatever the supervisor does — retry a crashed worker, SIGKILL
and requeue a hung one, quarantine a poison shard in-process, resume a
SIGKILLed run from checkpoints — the merged result is bit-identical to an
unsupervised, uninterrupted serial replay, because every shard outcome is
a pure function of ``(snapshot, shard)`` and the merge is a deterministic
function of the outcome set.

Fault injection (:class:`repro.parallel.WorkerFaultInjection`) lives in
the supervised worker entry point only, so the quarantine replay and the
serial baseline are naturally immune — which is exactly what makes the
quarantine test meaningful.
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Provider, SimulationConfig
from repro.exceptions import CheckpointError, ConfigurationError, ShardReplayError
from repro.experiments.base import deploy_benchmark
from repro.parallel import (
    CheckpointStore,
    PlatformSnapshot,
    ShardFault,
    ShardPlanner,
    SupervisorConfig,
    WorkerFaultInjection,
    merge_trace_outcomes,
    plan_fingerprint,
)
from repro.parallel.executor import _execute, _replay_trace_shard
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)

_DEPLOYMENTS = (
    ("web", "dynamic-html", 256),
    ("thumbs", "thumbnailer", 1024),
    ("arch", "compression", 1024),
)

#: Fast supervision defaults for tests: tight heartbeat, minimal backoff.
_FAST = dict(heartbeat_interval_s=0.1, backoff_base_s=0.01, backoff_max_s=0.05)


def _platform(provider: Provider = Provider.AWS, seed: int = 7):
    platform = create_platform(provider, SimulationConfig(seed=seed))
    for fname, benchmark, memory_mb in _DEPLOYMENTS:
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _trace(duration_s: float = 30.0):
    return WorkloadTrace.merge(
        WorkloadTrace.synthesize("web", PoissonArrivals(3.0), duration_s=duration_s, rng=31),
        WorkloadTrace.synthesize("thumbs", PoissonArrivals(2.0), duration_s=duration_s, rng=32),
        WorkloadTrace.synthesize("arch", PoissonArrivals(1.0), duration_s=duration_s, rng=33),
    ).materialize()


def _inject(**faults: ShardFault) -> SupervisorConfig:
    plan = {int(key.removeprefix("s")): fault for key, fault in faults.items()}
    return SupervisorConfig(
        fault_injection=WorkerFaultInjection(plan), shard_timeout_s=15.0, **_FAST
    )


# --------------------------------------------------------------- crash/flaky


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_injected_crash_retried_merge_is_bit_identical(provider):
    """A worker killed mid-replay (pool breakage) costs nothing but time."""
    trace = _trace()
    serial = _platform(provider).run_workload(trace)
    supervised = _platform(provider).run_workload(
        trace, workers=3, supervision=_inject(s0=ShardFault("crash", attempts=1))
    )
    assert supervised.records == serial.records
    assert supervised.total_cost_usd == serial.total_cost_usd
    assert supervised.supervision["pool_breaks"] >= 1
    assert supervised.supervision["retries"] >= 1


def test_injected_flaky_streaming_merge_is_exact():
    trace = _trace()
    serial = _platform().run_workload(trace, keep_records=False)
    supervised = _platform().run_workload(
        trace,
        keep_records=False,
        workers=3,
        supervision=_inject(s1=ShardFault("flaky", attempts=2)),
    )
    assert supervised.invocations == serial.invocations
    assert supervised.total_cost_usd == serial.total_cost_usd
    assert supervised.simulated_span_s == serial.simulated_span_s
    assert supervised.supervision["retries"] >= 2


def test_sequential_backend_supervised_flaky_is_bit_identical():
    """The in-process ladder (both-backends half of the chaos contract)."""
    trace = _trace()
    serial = _platform().run_workload(trace)
    supervised = _platform().run_workload(
        trace,
        workers=3,
        backend="sequential",
        supervision=_inject(s0=ShardFault("flaky", attempts=1)),
    )
    assert supervised.records == serial.records
    assert supervised.supervision["retries"] == 1


def test_sequential_backend_rejects_crash_injection():
    with pytest.raises(ConfigurationError, match="requires the process backend"):
        _platform().run_workload(
            _trace(10.0),
            workers=2,
            backend="sequential",
            supervision=_inject(s0=ShardFault("crash")),
        )


# ------------------------------------------------------------------- hangs


def test_injected_hang_times_out_and_requeues():
    """A wedged worker (stale heartbeat) is SIGKILLed and its shard retried."""
    trace = _trace()
    serial = _platform().run_workload(trace)
    config = SupervisorConfig(
        fault_injection=WorkerFaultInjection({2: ShardFault("hang", attempts=1, hang_s=120.0)}),
        shard_timeout_s=1.0,
        **_FAST,
    )
    start = time.monotonic()
    supervised = _platform().run_workload(trace, workers=3, supervision=config)
    elapsed = time.monotonic() - start
    assert supervised.records == serial.records
    assert supervised.supervision["timeouts"] >= 1
    assert supervised.supervision["retries"] >= 1
    # Recovery must cost roughly the timeout, nowhere near the 120s hang.
    assert elapsed < 60.0


# -------------------------------------------------------------- quarantine


def test_poison_shard_quarantined_in_process_still_bit_identical():
    """Retries exhausted -> in-process replay (immune to injection) saves it."""
    trace = _trace()
    serial = _platform().run_workload(trace)
    config = SupervisorConfig(
        fault_injection=WorkerFaultInjection({0: ShardFault("flaky", attempts=99)}),
        max_retries=1,
        quarantine=True,
        **_FAST,
    )
    supervised = _platform().run_workload(trace, workers=3, supervision=config)
    assert supervised.records == serial.records
    assert supervised.supervision["quarantined"] == [0]


def test_exhausted_retries_without_quarantine_raise_with_provenance():
    trace = _trace()
    config = SupervisorConfig(
        fault_injection=WorkerFaultInjection({0: ShardFault("flaky", attempts=99)}),
        max_retries=1,
        quarantine=False,
        **_FAST,
    )
    with pytest.raises(ShardReplayError) as excinfo:
        _platform().run_workload(trace, workers=3, supervision=config)
    error = excinfo.value
    assert error.shard_index == 0
    assert error.attempts == 2  # first attempt + one retry
    assert error.functions  # shard provenance rides along
    # Completed sibling shards are salvaged for checkpointing callers.
    assert all(outcome.shard_index != 0 for outcome in error.partial_outcomes)


def test_repeated_breaks_degrade_worker_count():
    trace = _trace()
    serial = _platform().run_workload(trace)
    config = SupervisorConfig(
        fault_injection=WorkerFaultInjection({0: ShardFault("crash", attempts=2)}),
        degrade_after_breaks=1,
        shard_timeout_s=15.0,
        **_FAST,
    )
    supervised = _platform().run_workload(trace, workers=3, supervision=config)
    assert supervised.records == serial.records
    assert supervised.supervision["pool_breaks"] >= 2
    assert supervised.supervision["degraded"]
    assert supervised.supervision["final_workers"] < supervised.supervision["initial_workers"]


# ------------------------------------------------------- checkpoint/resume


def test_sigkill_midrun_resume_is_byte_identical(tmp_path):
    """Crash after some shards checkpointed -> resume replays only the rest.

    The first (sequential, deterministic) run dies on its third shard after
    the first two were checkpointed; the resume run would fail loudly if it
    re-ran a completed shard, because *those* shards are poisoned on the
    second attempt's injection plan — completing proves they were skipped.
    """
    trace = _trace()
    serial = _platform().run_workload(trace)
    first = SupervisorConfig(
        fault_injection=WorkerFaultInjection({2: ShardFault("flaky", attempts=99)}),
        max_retries=0,
        quarantine=False,
        **_FAST,
    )
    with pytest.raises(ShardReplayError):
        _platform().run_workload(
            trace,
            workers=3,
            backend="sequential",
            supervision=first,
            checkpoint_dir=tmp_path,
        )
    checkpoints = list(tmp_path.rglob("*.ckpt"))
    assert len(checkpoints) == 2  # the two healthy shards persisted
    second = SupervisorConfig(
        fault_injection=WorkerFaultInjection(
            {0: ShardFault("flaky", attempts=99), 1: ShardFault("flaky", attempts=99)}
        ),
        max_retries=0,
        quarantine=False,
        **_FAST,
    )
    resumed = _platform().run_workload(
        trace, workers=3, supervision=second, checkpoint_dir=tmp_path, resume=True
    )
    assert resumed.records == serial.records
    assert resumed.total_cost_usd == serial.total_cost_usd
    assert resumed.simulated_span_s == serial.simulated_span_s


def test_resume_ignores_corrupt_checkpoints(tmp_path):
    trace = _trace()
    serial = _platform().run_workload(trace)
    complete = _platform().run_workload(trace, workers=3, checkpoint_dir=tmp_path)
    assert complete.records == serial.records
    checkpoints = sorted(tmp_path.rglob("*.ckpt"))
    assert len(checkpoints) == 3
    checkpoints[0].write_bytes(checkpoints[0].read_bytes()[: 40])  # truncate
    checkpoints[1].write_bytes(b"garbage\nnot a pickle")
    resumed = _platform().run_workload(
        trace, workers=3, checkpoint_dir=tmp_path, resume=True
    )
    assert resumed.records == serial.records


def test_changed_plan_lands_in_a_different_fingerprint(tmp_path):
    """A different seed (or trace/config) can never splice stale outcomes."""
    trace = _trace()
    _platform(seed=7).run_workload(trace, workers=2, checkpoint_dir=tmp_path)
    _platform(seed=8).run_workload(trace, workers=2, checkpoint_dir=tmp_path)
    fingerprints = {path.parent.name for path in tmp_path.rglob("*.ckpt")}
    assert len(fingerprints) == 2


def test_plan_fingerprint_is_stable_and_sensitive():
    trace = _trace(10.0)
    platform = _platform()
    snapshot = PlatformSnapshot.capture(platform)
    shards = ShardPlanner().plan_trace(iter(trace), 3)
    first = plan_fingerprint(snapshot, shards, keep_records=True)
    second = plan_fingerprint(snapshot, shards, keep_records=True)
    assert first == second
    assert plan_fingerprint(snapshot, shards, keep_records=False) != first
    assert plan_fingerprint(snapshot, shards[:-1], keep_records=True) != first


def test_resume_without_checkpoint_dir_is_a_checkpoint_error():
    with pytest.raises(CheckpointError):
        _platform().run_workload(_trace(10.0), workers=2, resume=True)


def test_workflow_supervised_crash_and_resume(tmp_path):
    """The workflow entry point shares the whole ladder + checkpoint path."""
    from repro.workflows import standard_workflow, synthesize_workflow_arrivals
    from repro.workflows.spec import merge_workflow_arrivals

    def arrivals():
        spec_a, _ = standard_workflow("pipeline")
        spec_b, _ = standard_workflow("fanout", fan_out=3)
        return merge_workflow_arrivals(
            synthesize_workflow_arrivals(spec_a, PoissonArrivals(1.0), duration_s=30, rng=1),
            synthesize_workflow_arrivals(spec_b, PoissonArrivals(1.0), duration_s=30, rng=2),
        )

    def workflow_platform():
        platform = create_platform(Provider.AWS, SimulationConfig(seed=7))
        deployed = set()
        for workflow in ("pipeline", "fanout"):
            _, functions = standard_workflow(workflow, fan_out=3)
            for deployment in functions:
                if deployment.function_name in deployed:
                    continue
                deployed.add(deployment.function_name)
                deploy_benchmark(
                    platform,
                    deployment.benchmark,
                    memory_mb=deployment.memory_mb if platform.limits.memory_static else 0,
                    function_name=deployment.function_name,
                )
        return platform

    stream = arrivals()
    serial = workflow_platform().run_workflows(stream)
    supervised = workflow_platform().run_workflows(
        stream,
        workers=2,
        supervision=_inject(s0=ShardFault("crash", attempts=1)),
        checkpoint_dir=tmp_path,
    )
    serial_sorted = sorted(serial.executions, key=lambda e: e.execution_index)
    assert supervised.executions == serial_sorted
    assert supervised.cost_usd_total == serial.cost_usd_total
    assert supervised.supervision["pool_breaks"] >= 1
    # And a resume run replays nothing (all shards checkpointed).
    resumed = workflow_platform().run_workflows(
        stream, workers=2, checkpoint_dir=tmp_path, resume=True
    )
    assert resumed.executions == serial_sorted
    assert resumed.cost_usd_total == serial.cost_usd_total


# ---------------------------------------------------- unsupervised fail-fast


def _failing_worker(snapshot, shard, keep_records):
    """Module-level (picklable) worker: poison shard 0, slow elsewhere."""
    if shard.index == 0:
        raise RuntimeError("poison shard")
    marker_dir = os.environ.get("CHAOS_MARKER_DIR")
    if marker_dir:
        with open(os.path.join(marker_dir, f"started_{shard.index}"), "w") as marker:
            marker.write("1")
    time.sleep(1.2)
    return _replay_trace_shard(snapshot, shard, keep_records)


def test_unsupervised_failure_cancels_pending_shards(tmp_path, monkeypatch):
    """Satellite: the first shard error cancels queued work instead of
    letting every remaining shard run to completion first."""
    monkeypatch.setenv("CHAOS_MARKER_DIR", str(tmp_path))
    # Six single-function shards: enough that most sit in the executor's
    # pending list (cancellable) rather than its small internal call queue.
    platform = create_platform(Provider.AWS, SimulationConfig(seed=7))
    for index in range(6):
        deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name=f"ff-{index}")
    trace = WorkloadTrace.merge(
        *(
            WorkloadTrace.synthesize(
                f"ff-{index}", PoissonArrivals(2.0), duration_s=10.0, rng=40 + index
            )
            for index in range(6)
        )
    ).materialize()
    snapshot = PlatformSnapshot.capture(platform)
    shards = ShardPlanner().plan_trace(iter(trace), 6)
    assert len(shards) == 6
    start = time.monotonic()
    with pytest.raises(RuntimeError, match="poison shard"):
        _execute(_failing_worker, snapshot, shards, True, 1, "process")
    elapsed = time.monotonic() - start
    started = {int(path.name.removeprefix("started_")) for path in tmp_path.iterdir()}
    # Shard 0 fails ~instantly; the single-worker pool's call queue may
    # already hold up to two more shards (they still run), but everything
    # behind them must have been cancelled — running all five healthy
    # shards serially would take >6s.
    assert len(started) <= 2
    assert not started & {3, 4, 5}
    assert elapsed < 4.5


# ------------------------------------------------------- merge-order algebra


_MERGE_CACHE: dict = {}


def _merge_fixture() -> dict:
    """Replay the three shards once; reuse the outcomes across examples."""
    if not _MERGE_CACHE:
        platform = _platform()
        snapshot = PlatformSnapshot.capture(platform)
        shards = ShardPlanner().plan_trace(iter(_trace(20.0)), 3)
        outcomes = [_replay_trace_shard(snapshot, shard, False) for shard in shards]
        reference = merge_trace_outcomes(
            platform.provider, list(outcomes), keep_records=False, wall_clock_s=0.0
        )
        _MERGE_CACHE.update(
            provider=platform.provider, outcomes=outcomes, reference=reference
        )
    return _MERGE_CACHE


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(list(range(3))))
def test_checkpoint_merge_order_never_changes_the_summary(order):
    """Hypothesis: outcomes merge identically in any completion/reload order."""
    cache = _merge_fixture()
    shuffled = [cache["outcomes"][index] for index in order]
    merged = merge_trace_outcomes(
        cache["provider"], shuffled, keep_records=False, wall_clock_s=0.0
    )
    reference = cache["reference"]
    assert merged.invocations == reference.invocations
    assert merged.total_cost_usd == reference.total_cost_usd
    assert merged.simulated_span_s == reference.simulated_span_s
    assert merged.cold_start_total == reference.cold_start_total
    per_merged = merged.per_function()
    per_reference = reference.per_function()
    assert set(per_merged) == set(per_reference)
    for fname in per_merged:
        assert per_merged[fname].total_cost_usd == per_reference[fname].total_cost_usd
        assert (
            per_merged[fname].client_time.percentiles
            == per_reference[fname].client_time.percentiles
        )


def test_checkpoint_store_roundtrip_preserves_outcomes(tmp_path):
    platform = _platform()
    snapshot = PlatformSnapshot.capture(platform)
    shards = ShardPlanner().plan_trace(iter(_trace(15.0)), 3)
    store = CheckpointStore.for_plan(tmp_path, snapshot, shards, keep_records=True)
    outcomes = [_replay_trace_shard(snapshot, shard, True) for shard in shards]
    for outcome in outcomes:
        store.store(outcome)
    reloaded = store.load()
    assert sorted(reloaded) == [shard.index for shard in shards]
    direct = merge_trace_outcomes(platform.provider, outcomes, True, 0.0)
    revived = merge_trace_outcomes(platform.provider, list(reloaded.values()), True, 0.0)
    assert revived.records == direct.records
    assert revived.total_cost_usd == direct.total_cost_usd


# ----------------------------------------------------------------- CLI codes


def test_cli_exit_codes_for_failure_classes(tmp_path):
    from repro.cli import EXIT_CHECKPOINT, EXIT_CONFIG, main

    base = [
        "workload",
        "--duration",
        "10",
        "--rate",
        "1",
        "--providers",
        "aws",
    ]
    # resume without a checkpoint dir -> checkpoint misuse (4)
    assert main(base + ["--workers", "2", "--resume"]) == EXIT_CHECKPOINT
    # supervision flags without --workers -> configuration error (2)
    assert main(base + ["--shard-timeout", "5"]) == EXIT_CONFIG
    # the happy path with supervision + checkpointing stays 0
    assert (
        main(
            base
            + [
                "--workers",
                "2",
                "--shard-timeout",
                "30",
                "--shard-retries",
                "1",
                "--checkpoint-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    # and a --resume immediately after replays nothing but still succeeds
    assert (
        main(
            base
            + ["--workers", "2", "--checkpoint-dir", str(tmp_path), "--resume"]
        )
        == 0
    )
