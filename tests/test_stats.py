"""Tests for repro.stats: confidence intervals, summaries, regression, sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelFitError
from repro.stats.confidence import nonparametric_ci
from repro.stats.regression import fit_linear, r_squared
from repro.stats.sampling import required_samples_for_ci
from repro.stats.summary import summarize


class TestNonparametricCI:
    def test_interval_brackets_the_median(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, size=200)
        interval = nonparametric_ci(data, 0.95)
        assert interval.low <= interval.median <= interval.high

    def test_higher_level_gives_wider_interval(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(1.0, size=300)
        narrow = nonparametric_ci(data, 0.95)
        wide = nonparametric_ci(data, 0.99)
        assert wide.width >= narrow.width

    def test_more_samples_shrink_the_relative_width(self):
        rng = np.random.default_rng(2)
        small = nonparametric_ci(rng.normal(5, 1, size=30), 0.95)
        large = nonparametric_ci(rng.normal(5, 1, size=3000), 0.95)
        assert large.relative_width < small.relative_width

    def test_single_sample_degenerates(self):
        interval = nonparametric_ci([3.0], 0.95)
        assert interval.low == interval.high == interval.median == 3.0

    def test_within_checks_endpoints_against_median(self):
        interval = nonparametric_ci([1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.0, 1.0, 1.0], 0.95)
        assert interval.within(0.05)

    def test_contains(self):
        interval = nonparametric_ci(list(range(1, 101)), 0.95)
        assert interval.contains(interval.median)
        assert not interval.contains(1e9)

    def test_rejects_invalid_level(self):
        with pytest.raises(ConfigurationError):
            nonparametric_ci([1.0, 2.0], 1.5)

    def test_rejects_empty_samples(self):
        with pytest.raises(ConfigurationError):
            nonparametric_ci([], 0.95)

    def test_coverage_on_known_distribution(self):
        # The 95% interval should cover the true median in the large majority
        # of repeated experiments.
        rng = np.random.default_rng(3)
        covered = 0
        trials = 200
        for _ in range(trials):
            data = rng.normal(0.0, 1.0, size=60)
            interval = nonparametric_ci(data, 0.95)
            if interval.low <= 0.0 <= interval.high:
                covered += 1
        assert covered / trials >= 0.90


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_whiskers_use_2nd_and_98th_percentiles(self):
        data = list(range(101))
        summary = summarize(data)
        assert summary.whisker_low == pytest.approx(2.0)
        assert summary.whisker_high == pytest.approx(98.0)

    def test_includes_both_confidence_levels(self):
        summary = summarize(list(range(50)))
        assert set(summary.confidence_intervals) == {0.95, 0.99}

    def test_coefficient_of_variation(self):
        summary = summarize([2.0, 2.0, 2.0, 2.0])
        assert summary.coefficient_of_variation == 0.0

    def test_to_dict_round_trip(self):
        as_dict = summarize([1.0, 2.0, 3.0]).to_dict()
        assert as_dict["count"] == 3
        assert "percentiles" in as_dict and "confidence_intervals" in as_dict

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestLinearFit:
    def test_perfect_line_recovered(self):
        xs = np.arange(10, dtype=float)
        ys = 3.0 * xs + 2.0
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.adjusted_r_squared == pytest.approx(1.0)

    def test_noisy_line_has_high_r_squared(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(0, 100, 200)
        ys = 0.5 * xs + 1.0 + rng.normal(0, 0.5, size=xs.size)
        fit = fit_linear(xs, ys)
        assert fit.adjusted_r_squared > 0.98

    def test_random_data_has_low_r_squared(self):
        rng = np.random.default_rng(1)
        xs = np.linspace(0, 1, 100)
        ys = rng.normal(0, 1, size=100)
        fit = fit_linear(xs, ys)
        assert fit.r_squared < 0.2

    def test_predict_scalar_and_vector(self):
        fit = fit_linear([0.0, 1.0, 2.0], [0.0, 2.0, 4.0])
        assert fit.predict(3.0) == pytest.approx(6.0)
        assert np.allclose(fit.predict([3.0, 4.0]), [6.0, 8.0])

    def test_residuals_of_perfect_fit_are_zero(self):
        fit = fit_linear([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert np.allclose(fit.residuals([0.0, 1.0, 2.0], [1.0, 3.0, 5.0]), 0.0)

    def test_requires_two_distinct_points(self):
        with pytest.raises(ModelFitError):
            fit_linear([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(ModelFitError):
            fit_linear([1.0], [2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelFitError):
            fit_linear([1.0, 2.0], [1.0])


class TestRSquared:
    def test_perfect_prediction(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_constant_observation_edge_case(self):
        assert r_squared([2, 2, 2], [2, 2, 2]) == pytest.approx(1.0)
        assert r_squared([2, 2, 2], [1, 2, 3]) == pytest.approx(0.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ModelFitError):
            r_squared([1, 2], [1])


class TestRequiredSamples:
    def test_stops_quickly_on_tight_distribution(self):
        rng = np.random.default_rng(0)

        def draw(n):
            return rng.normal(100.0, 0.1, size=n).tolist()

        count, samples = required_samples_for_ci(draw, initial_samples=20, growth_step=20, max_samples=500)
        assert count == len(samples)
        assert count <= 60

    def test_caps_at_max_samples_on_noisy_distribution(self):
        rng = np.random.default_rng(1)

        def draw(n):
            # Heavy-tailed distribution: the CI never gets within 5%.
            return rng.pareto(1.1, size=n).tolist()

        count, _ = required_samples_for_ci(draw, initial_samples=10, growth_step=10, max_samples=60)
        assert count == 60

    def test_rejects_invalid_schedule(self):
        with pytest.raises(ConfigurationError):
            required_samples_for_ci(lambda n: [1.0] * n, initial_samples=0)
        with pytest.raises(ConfigurationError):
            required_samples_for_ci(lambda n: [1.0] * n, initial_samples=10, max_samples=5)
