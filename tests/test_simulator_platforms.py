"""Tests for the simulated FaaS platforms (AWS / GCP / Azure / IaaS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DYNAMIC_MEMORY, FunctionConfig, Language, Provider, SimulationConfig, StartType, TriggerType
from repro.exceptions import (
    ConfigurationError,
    FunctionAlreadyExistsError,
    FunctionNotFoundError,
    PlatformError,
)
from repro.experiments.base import deploy_benchmark
from repro.faas.platform import LogQueryType
from repro.simulator.iaas import IaaSPlatform
from repro.simulator.providers import AWSLambdaSimulator, AzureFunctionsSimulator, GoogleCloudFunctionsSimulator, create_platform


class TestDeployment:
    def test_package_code_reports_benchmark_size(self, aws):
        package = aws.package_code("image-recognition", Language.PYTHON)
        assert package.size_mb == pytest.approx(240.0)
        assert package.benchmark == "image-recognition"

    def test_gcp_package_clamped_to_deployment_limit(self, gcp):
        package = gcp.package_code("image-recognition", Language.PYTHON)
        assert package.size_mb == pytest.approx(100.0)

    def test_package_code_rejects_missing_language(self, aws):
        with pytest.raises(PlatformError):
            aws.package_code("compression", Language.NODEJS)

    def test_create_function_and_lookup(self, aws):
        package = aws.package_code("thumbnailer", Language.PYTHON)
        function = aws.create_function("thumb", package, FunctionConfig(memory_mb=512))
        assert aws.get_function("thumb") is function
        assert aws.functions() == ["thumb"]

    def test_duplicate_function_rejected(self, aws):
        package = aws.package_code("thumbnailer", Language.PYTHON)
        aws.create_function("thumb", package, FunctionConfig(memory_mb=512))
        with pytest.raises(FunctionAlreadyExistsError):
            aws.create_function("thumb", package, FunctionConfig(memory_mb=512))

    def test_invalid_memory_rejected_on_aws(self, aws):
        package = aws.package_code("thumbnailer", Language.PYTHON)
        with pytest.raises(ConfigurationError):
            aws.create_function("thumb", package, FunctionConfig(memory_mb=64))

    def test_azure_only_accepts_dynamic_memory(self, azure):
        package = azure.package_code("thumbnailer", Language.PYTHON)
        with pytest.raises(ConfigurationError):
            azure.create_function("thumb", package, FunctionConfig(memory_mb=512))
        azure.create_function("thumb", package, FunctionConfig(memory_mb=DYNAMIC_MEMORY))

    def test_timeout_above_limit_rejected(self, aws):
        package = aws.package_code("thumbnailer", Language.PYTHON)
        with pytest.raises(PlatformError):
            aws.create_function("thumb", package, FunctionConfig(memory_mb=512, timeout_s=3600.0))

    def test_missing_function_errors(self, aws):
        with pytest.raises(FunctionNotFoundError):
            aws.get_function("nope")
        with pytest.raises(FunctionNotFoundError):
            aws.invoke("nope", payload={})

    def test_delete_function(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=512)
        aws.delete_function(fname)
        assert aws.functions() == []

    def test_update_function_bumps_version_and_evicts(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=512)
        aws.invoke(fname, payload={})
        assert aws.warm_container_count(fname) == 1
        aws.update_function(fname, config=FunctionConfig(memory_mb=1024))
        assert aws.get_function(fname).version == 2
        assert aws.warm_container_count(fname) == 0


class TestInvocationLifecycle:
    def test_first_invocation_cold_then_warm(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        first = aws.invoke(fname, payload={})
        second = aws.invoke(fname, payload={})
        assert first.start_type is StartType.COLD
        assert second.start_type is StartType.WARM
        assert first.client_time_s > second.client_time_s

    def test_enforce_cold_start(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        aws.invoke(fname, payload={})
        aws.enforce_cold_start(fname)
        record = aws.invoke(fname, payload={})
        assert record.start_type is StartType.COLD

    def test_clock_advances_by_client_time(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        start = aws.clock.now()
        record = aws.invoke(fname, payload={})
        assert aws.clock.now() == pytest.approx(start + record.client_time_s)

    def test_time_ordering_benchmark_provider_client(self, aws):
        fname = deploy_benchmark(aws, "thumbnailer", memory_mb=1024)
        record = aws.invoke(fname, payload={})
        assert record.benchmark_time_s <= record.provider_time_s <= record.client_time_s

    def test_invocation_record_billing_fields(self, aws):
        fname = deploy_benchmark(aws, "thumbnailer", memory_mb=1024)
        record = aws.invoke(fname, payload={})
        assert record.billed_duration_s >= record.provider_time_s
        assert record.billed_duration_s == pytest.approx(np.ceil(record.provider_time_s * 10) / 10, abs=0.11)
        assert record.cost.total > 0
        assert record.memory_declared_mb == 1024

    def test_batch_invocations_use_distinct_containers(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        records = aws.invoke_batch(fname, 10)
        assert len({r.container_id for r in records}) == 10
        assert all(r.start_type is StartType.COLD for r in records)
        assert aws.warm_container_count(fname) == 10

    def test_warm_batch_reuses_containers(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        aws.invoke_batch(fname, 10)
        warm = aws.invoke_batch(fname, 10)
        assert all(r.start_type is StartType.WARM for r in warm)
        assert aws.warm_container_count(fname) == 10

    def test_consecutive_aws_invocations_always_warm(self, aws):
        """Section 6.2 Q3: AWS consecutive warm invocations always hit warm containers."""
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        aws.invoke(fname, payload={})
        records = [aws.invoke(fname, payload={}) for _ in range(30)]
        assert all(r.start_type is StartType.WARM for r in records)

    def test_gcp_shows_spurious_cold_starts(self, gcp):
        """Section 6.2 Q3: GCP produces unexpected cold starts for sequential calls."""
        fname = deploy_benchmark(gcp, "graph-bfs", memory_mb=1024)
        gcp.invoke(fname, payload={})
        records = [gcp.invoke(fname, payload={}) for _ in range(60)]
        cold = sum(r.start_type is StartType.COLD for r in records)
        assert cold > 0

    def test_sdk_trigger_cheaper_than_http(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        http = aws.create_trigger(fname, TriggerType.HTTP)
        sdk = aws.create_trigger(fname, TriggerType.SDK)
        http_overheads = [http.invoke().invocation_overhead_s for _ in range(20)]
        sdk_overheads = [sdk.invoke().invocation_overhead_s for _ in range(20)]
        assert np.median(sdk_overheads) < np.median(http_overheads)

    def test_all_trigger_types_are_implemented(self, aws):
        """Timer, storage and queue triggers are part of the platform model."""
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        for trigger_type in TriggerType:
            trigger = aws.create_trigger(fname, trigger_type)
            assert trigger.trigger_type is trigger_type
            record = trigger.invoke()
            assert record.function_name == fname
        # Async channels take the internal (SDK-like) path, not the gateway.
        queue_overheads = [
            aws.create_trigger(fname, TriggerType.QUEUE).invoke().invocation_overhead_s
            for _ in range(20)
        ]
        http_overheads = [
            aws.create_trigger(fname, TriggerType.HTTP).invoke().invocation_overhead_s
            for _ in range(20)
        ]
        assert np.median(queue_overheads) < np.median(http_overheads)

    def test_query_logs(self, aws):
        fname = deploy_benchmark(aws, "graph-bfs", memory_mb=1024)
        aws.invoke(fname, payload={})
        aws.invoke(fname, payload={})
        assert len(aws.query_logs(fname, LogQueryType.TIME)) == 2
        assert len(aws.query_logs(fname, LogQueryType.MEMORY)) == 2
        assert all(cost > 0 for cost in aws.query_logs(fname, LogQueryType.COST))

    def test_timeout_enforcement(self, aws):
        fname = deploy_benchmark(aws, "compression", memory_mb=256, timeout_s=0.1)
        record = aws.invoke(fname, payload={})
        assert not record.success and record.error == "timeout"

    def test_payload_bytes_override_increases_overhead(self, aws):
        fname = deploy_benchmark(aws, "dynamic-html", memory_mb=256)
        aws.invoke(fname, payload={})
        small = np.median([aws.invoke(fname, payload={}, payload_bytes=1024).invocation_overhead_s for _ in range(10)])
        large = np.median(
            [aws.invoke(fname, payload={}, payload_bytes=5 * 1024 * 1024).invocation_overhead_s for _ in range(10)]
        )
        assert large > small

    def test_reproducibility_with_same_seed(self):
        results = []
        for _ in range(2):
            platform = AWSLambdaSimulator(simulation=SimulationConfig(seed=5))
            fname = deploy_benchmark(platform, "thumbnailer", memory_mb=1024)
            records = [platform.invoke(fname, payload={}) for _ in range(5)]
            results.append([r.client_time_s for r in records])
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        times = []
        for seed in (1, 2):
            platform = AWSLambdaSimulator(simulation=SimulationConfig(seed=seed))
            fname = deploy_benchmark(platform, "thumbnailer", memory_mb=1024)
            times.append(platform.invoke(fname, payload={}).client_time_s)
        assert times[0] != times[1]


class TestCrossProviderBehaviour:
    def _warm_median(self, platform, benchmark="thumbnailer", memory=2048, n=30):
        memory = memory if platform.limits.memory_static else DYNAMIC_MEMORY
        fname = deploy_benchmark(platform, benchmark, memory_mb=memory)
        platform.invoke(fname, payload={})
        times = []
        while len(times) < n:
            record = platform.invoke(fname, payload={})
            if record.success and record.start_type is StartType.WARM:
                times.append(record.client_time_s)
        return float(np.median(times))

    def test_aws_fastest_on_storage_bound_benchmark(self, simulation):
        aws = create_platform(Provider.AWS, simulation=simulation)
        gcp = create_platform(Provider.GCP, simulation=simulation)
        assert self._warm_median(aws) < self._warm_median(gcp)

    def test_execution_time_decreases_with_memory_on_aws(self, aws):
        medians = {}
        for memory in (128, 512, 2048):
            fname = deploy_benchmark(aws, "thumbnailer", memory_mb=memory, function_name=f"thumb-{memory}")
            aws.invoke(fname, payload={})
            times = [aws.invoke(fname, payload={}).benchmark_time_s for _ in range(20)]
            medians[memory] = np.median(times)
        assert medians[128] > medians[512] > medians[2048]

    def test_gcp_image_recognition_fails_at_512mb_occasionally(self, gcp):
        fname = deploy_benchmark(gcp, "image-recognition", memory_mb=512)
        records = []
        for _ in range(15):
            records.extend(gcp.invoke_batch(fname, 10))
        failures = [r for r in records if not r.success and r.error == "out-of-memory"]
        assert failures, "expected sporadic out-of-memory failures on GCP at 512 MB"
        assert len(failures) < len(records) * 0.5

    def test_aws_image_recognition_stable_at_512mb(self, aws):
        fname = deploy_benchmark(aws, "image-recognition", memory_mb=512)
        records = aws.invoke_batch(fname, 30)
        assert all(r.success for r in records)

    def test_gcp_highmem_burst_availability_errors(self, gcp):
        fname = deploy_benchmark(gcp, "image-recognition", memory_mb=4096)
        records = gcp.invoke_batch(fname, 50)
        error_rate = sum(not r.success for r in records) / len(records)
        assert error_rate > 0.3

    def test_azure_bursts_reuse_function_app_instances(self, azure):
        fname = deploy_benchmark(azure, "thumbnailer", memory_mb=DYNAMIC_MEMORY)
        azure.invoke_batch(fname, 8)
        records = azure.invoke_batch(fname, 40)
        warm = sum(r.start_type is StartType.WARM for r in records)
        # A single warm app instance can absorb several concurrent executions,
        # so most of the burst avoids cold starts (Section 3.3).
        assert warm >= len(records) // 2

    def test_azure_concurrent_invocations_more_variable_than_sequential(self, azure):
        fname = deploy_benchmark(azure, "compression", memory_mb=DYNAMIC_MEMORY)
        azure.invoke_batch(fname, 8)
        sequential = [azure.invoke(fname, payload={}).client_time_s for _ in range(40)]
        concurrent = [r.client_time_s for r in azure.invoke_batch(fname, 40) if r.success]
        cv_seq = np.std(sequential) / np.mean(sequential)
        cv_conc = np.std(concurrent) / np.mean(concurrent)
        assert cv_conc > cv_seq

    def test_cold_warm_ratio_largest_for_image_recognition(self, aws):
        ratios = {}
        for benchmark, memory in (("image-recognition", 2048), ("compression", 2048)):
            fname = deploy_benchmark(aws, benchmark, memory_mb=memory, function_name=f"{benchmark}-ratio")
            cold = []
            for _ in range(5):
                aws.enforce_cold_start(fname)
                cold.append(aws.invoke(fname, payload={}).client_time_s)
            warm = [aws.invoke(fname, payload={}).client_time_s for _ in range(10)]
            ratios[benchmark] = np.median(cold) / np.median(warm)
        # Figure 4: image-recognition has by far the largest cold overhead,
        # compression the smallest (long-running function hides the cold start).
        assert ratios["image-recognition"] > 3.0
        assert ratios["compression"] < 2.0
        assert ratios["image-recognition"] > ratios["compression"]


class TestIaaS:
    def test_invocations_are_always_warm(self, simulation):
        platform = IaaSPlatform(simulation=simulation)
        fname = deploy_benchmark(platform, "thumbnailer", memory_mb=1024)
        records = [platform.invoke(fname, payload={}) for _ in range(5)]
        assert all(r.start_type is StartType.WARM for r in records)

    def test_faster_than_lambda_at_comparable_resources(self, simulation):
        """Table 5: the VM outperforms warm Lambda executions."""
        iaas = IaaSPlatform(simulation=simulation)
        aws = create_platform(Provider.AWS, simulation=simulation)
        iaas_fname = deploy_benchmark(iaas, "thumbnailer", memory_mb=1024)
        aws_fname = deploy_benchmark(aws, "thumbnailer", memory_mb=1024)
        aws.invoke(aws_fname, payload={})
        iaas_times = [iaas.invoke(iaas_fname, payload={}).provider_time_s for _ in range(30)]
        aws_times = [aws.invoke(aws_fname, payload={}).provider_time_s for _ in range(30)]
        assert np.median(iaas_times) < np.median(aws_times)

    def test_cloud_storage_mode_slower_than_local(self, simulation):
        local = IaaSPlatform(simulation=simulation, use_cloud_storage=False)
        cloud = IaaSPlatform(simulation=simulation, use_cloud_storage=True)
        local_fname = deploy_benchmark(local, "compression", memory_mb=1024)
        cloud_fname = deploy_benchmark(cloud, "compression", memory_mb=1024)
        local_times = [local.invoke(local_fname, payload={}).provider_time_s for _ in range(20)]
        cloud_times = [cloud.invoke(cloud_fname, payload={}).provider_time_s for _ in range(20)]
        assert np.median(cloud_times) > np.median(local_times)

    def test_hourly_cost_matches_t2_micro(self, simulation):
        assert IaaSPlatform(simulation=simulation).hourly_cost() == pytest.approx(0.0116)

    def test_max_requests_per_hour(self, simulation):
        platform = IaaSPlatform(simulation=simulation)
        fname = deploy_benchmark(platform, "graph-bfs", memory_mb=1024)
        rate = platform.max_requests_per_hour(fname, samples=20)
        assert rate > 1000

    def test_create_platform_factory(self, simulation):
        assert isinstance(create_platform(Provider.IAAS, simulation=simulation), IaaSPlatform)
        assert isinstance(create_platform(Provider.AWS, simulation=simulation), AWSLambdaSimulator)
        assert isinstance(create_platform(Provider.GCP, simulation=simulation), GoogleCloudFunctionsSimulator)
        assert isinstance(create_platform(Provider.AZURE, simulation=simulation), AzureFunctionsSimulator)
        with pytest.raises(ValueError):
            create_platform(Provider.LOCAL, simulation=simulation)

    def test_execute_kernels_mode_returns_real_output(self, simulation):
        platform = create_platform(Provider.AWS, simulation=simulation, execute_kernels=True)
        fname = deploy_benchmark(platform, "graph-bfs", memory_mb=1024)
        from repro.benchmarks.base import BenchmarkContext, InputSize
        from repro.benchmarks.registry import default_registry

        context = BenchmarkContext(storage=platform.object_store, rng=np.random.default_rng(0))
        event = default_registry().get("graph-bfs").generate_input(InputSize.TEST, context)
        record = platform.invoke(fname, payload=event)
        assert record.output and "result" in record.output
        assert record.output_bytes > 100
        assert record.output["num_vertices"] == 128
