"""End-to-end integration tests combining kernels, platforms and experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.base import BenchmarkContext, InputSize
from repro.benchmarks.registry import default_registry
from repro.config import DYNAMIC_MEMORY, ExperimentConfig, Provider, SimulationConfig, StartType
from repro.experiments.base import deploy_benchmark
from repro.experiments.cost_analysis import CostAnalysis
from repro.experiments.perf_cost import PerfCostExperiment
from repro.models.eviction import optimal_initial_batch
from repro.simulator.providers import create_platform


class TestRealKernelsOnSimulatedCloud:
    """Deploy every benchmark with kernel execution enabled and invoke it once."""

    @pytest.mark.parametrize("name", sorted(default_registry().names()))
    def test_full_deploy_and_invoke(self, name, simulation):
        platform = create_platform(Provider.AWS, simulation=simulation, execute_kernels=True)
        fname = deploy_benchmark(platform, name, memory_mb=2048, input_size=InputSize.TEST)
        context = BenchmarkContext(storage=platform.object_store, rng=np.random.default_rng(1))
        event = default_registry().get(name).generate_input(InputSize.TEST, context)
        record = platform.invoke(fname, payload=event)
        assert record.success
        assert record.output, f"benchmark {name} produced no output"
        assert record.benchmark_time_s > 0
        assert record.cost.total > 0


class TestScenarioWarmingStrategy:
    """Combine the eviction model with the platform to avoid cold starts."""

    def test_optimal_batch_keeps_containers_warm_for_one_period(self, simulation):
        platform = create_platform(Provider.AWS, simulation=simulation)
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256, input_size=InputSize.TEST)
        # The user wants 4 instances of a 95-second workload warm; Equation 2
        # says a single period needs D_init = ceil(4 * 95 / 380) = 1 container.
        batch = optimal_initial_batch(instances_needed=4, function_runtime_s=95.0)
        assert batch == 1
        platform.invoke_batch(fname, 8)
        platform.clock.advance(370.0)
        assert platform.warm_container_count(fname) == 8
        platform.clock.advance(20.0)  # crosses the 380 s boundary
        assert platform.warm_container_count(fname) == 4


class TestScenarioCostawareConfiguration:
    """Pick a memory size by jointly looking at performance and cost."""

    def test_image_recognition_speeds_up_without_cost_explosion(self):
        config = ExperimentConfig(samples=10, batch_size=5, seed=21)
        experiment = PerfCostExperiment(config=config, simulation=SimulationConfig(seed=21))
        result = experiment.run("image-recognition", providers=(Provider.AWS,), memory_sizes=(1024, 3008))
        analysis = CostAnalysis(result)
        warm_costs = {e.memory_mb: e.cost_usd for e in analysis.cost_of_million() if e.start_type == "warm"}
        small = result.config(Provider.AWS, 1024).warm_metrics().benchmark_time.median
        large = result.config(Provider.AWS, 3008).warm_metrics().benchmark_time.median
        # Figure 5a: performance gains are significant for image-recognition
        # while the cost increases far less than the 3x memory increase.
        assert large < small * 0.75
        assert warm_costs[3008] < warm_costs[1024] * 2.5


class TestScenarioCrossProviderPortability:
    """Identical configuration, different providers, different behaviour."""

    def test_same_deployment_differs_across_providers(self, simulation):
        results = {}
        for provider in (Provider.AWS, Provider.GCP, Provider.AZURE):
            platform = create_platform(provider, simulation=simulation)
            memory = 1024 if platform.limits.memory_static else DYNAMIC_MEMORY
            fname = deploy_benchmark(platform, "compression", memory_mb=memory)
            platform.invoke(fname, payload={})
            times = []
            while len(times) < 15:
                record = platform.invoke(fname, payload={})
                if record.success and record.start_type is StartType.WARM:
                    times.append(record.provider_time_s)
            results[provider] = float(np.median(times))
        assert results[Provider.AWS] < results[Provider.GCP]
        assert len({round(v, 3) for v in results.values()}) == 3


class TestScenarioLogsMatchInvocations:
    def test_provider_logs_reflect_all_invocations(self, aws):
        from repro.faas.platform import LogQueryType

        fname = deploy_benchmark(aws, "uploader", memory_mb=512)
        records = [aws.invoke(fname, payload={}) for _ in range(10)]
        times = aws.query_logs(fname, LogQueryType.TIME)
        costs = aws.query_logs(fname, LogQueryType.COST)
        assert len(times) == len(records)
        assert sum(costs) == pytest.approx(sum(r.cost.total for r in records), rel=1e-6)
