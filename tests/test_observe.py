"""The observability layer's contracts (see ``docs/architecture.md``).

What is pinned here:

* **pure observation** — attaching an :class:`~repro.observe.EventLog`,
  a time-series builder and the profiler changes *nothing*: the replay's
  records and summaries are ``==``-identical to a detached run, for every
  provider (the observer draws no RNG values and reorders no decisions);
* **exact sharded series** — the merged time series of a sharded replay
  (``workers=4``, both backends, workload and workflow engines) equals the
  serial one exactly, including reservoir-backed window percentiles;
* **mode independence** — record mode and streaming mode fold the same
  series;
* **exporters** — edge cases (empty stream, single invocation, missing
  output directory) and schema sanity of the Chrome trace document;
* **guard rails** — spec-mismatch merges and resuming a pre-observability
  checkpoint fail loudly instead of producing a partial series.
"""

from __future__ import annotations

import json

import pytest

from repro.config import Provider, SimulationConfig
from repro.exceptions import CheckpointError, ConfigurationError
from repro.experiments.base import deploy_benchmark
from repro.faas.invocation import InvocationRequest
from repro.observe import (
    ContainerEvent,
    EventLog,
    InvocationSpan,
    ProfileBuilder,
    TimeSeriesSpec,
    WorkflowStageSpan,
    chrome_trace,
    invocation_span,
    iter_spans,
    prometheus_snapshot,
    timeseries_csv,
    write_chrome_trace,
    write_event_jsonl,
    write_prometheus_snapshot,
    write_timeseries_csv,
)
from repro.simulator.providers import create_platform
from repro.workflows import standard_workflow, synthesize_workflow_arrivals
from repro.workload import BurstyArrivals, PoissonArrivals, WorkloadTrace

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)

_DEPLOYMENTS = (
    ("web", "dynamic-html", 256),
    ("thumbs", "thumbnailer", 1024),
)


def _platform(provider: Provider = Provider.AWS, seed: int = 21):
    platform = create_platform(provider, SimulationConfig(seed=seed))
    for fname, benchmark, memory_mb in _DEPLOYMENTS:
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=fname,
        )
    return platform


def _trace(duration_s: float = 40.0) -> WorkloadTrace:
    return WorkloadTrace.merge(
        WorkloadTrace.synthesize("web", PoissonArrivals(4.0), duration_s=duration_s, rng=81),
        WorkloadTrace.synthesize(
            "thumbs",
            BurstyArrivals(on_rate_per_s=10.0, mean_on_s=4.0, mean_off_s=8.0),
            duration_s=duration_s,
            rng=82,
        ),
    )


def _workflow_setup(provider: Provider):
    spec, deployments = standard_workflow("pipeline", fan_out=4)
    platform = create_platform(provider, SimulationConfig(seed=33))
    for deployment in deployments:
        deploy_benchmark(
            platform,
            deployment.benchmark,
            memory_mb=deployment.memory_mb if platform.limits.memory_static else 0,
            function_name=deployment.function_name,
        )
    arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(0.8), 30.0, rng=90)
    return platform, arrivals


# ---------------------------------------------------------------------------
# Pure observation: attached == detached, bit for bit.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_observed_workload_replay_is_bit_identical(provider):
    trace = _trace()
    detached = _platform(provider).run_workload(trace)
    log = EventLog()
    attached = _platform(provider).run_workload(
        trace, observer=log, timeseries=TimeSeriesSpec(), profile=True
    )
    assert attached.records == detached.records
    assert attached.total_cost_usd == detached.total_cost_usd
    assert attached.simulated_span_s == detached.simulated_span_s
    assert attached.peak_in_flight == detached.peak_in_flight
    # The observer actually saw the replay.
    spans = [event for event in log.events if isinstance(event, InvocationSpan)]
    assert len(spans) == len(detached.records)
    assert any(isinstance(event, ContainerEvent) for event in log.events)
    assert attached.timeseries is not None and attached.profile is not None
    assert detached.timeseries is None and detached.profile is None


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_observed_workflow_replay_is_bit_identical(provider):
    platform, arrivals = _workflow_setup(provider)
    detached = platform.run_workflows(arrivals)
    attached_platform, _ = _workflow_setup(provider)
    log = EventLog()
    attached = attached_platform.run_workflows(arrivals, observer=log)
    assert [r.to_row() for r in attached.executions] == [
        r.to_row() for r in detached.executions
    ]
    stages = [event for event in log.events if isinstance(event, WorkflowStageSpan)]
    assert stages, "workflow stages must reach the observer"
    assert {stage.workflow for stage in stages} == {"pipeline"}


def test_invocation_span_segments_are_consistent():
    result = _platform().run_workload(_trace(15.0))
    for record in result.records:
        span = invocation_span(record)
        assert span.function == record.function_name
        assert span.finished_at >= span.started_at >= span.submitted_at
        assert span.queue_wait_s >= 0 and span.cold_init_s >= 0
        assert span.network_s >= 0
        if span.outcome == "executed":
            assert span.compute_s > 0
        document = span.to_dict()
        assert document["type"] == "invocation" and document["function"] == span.function


# ---------------------------------------------------------------------------
# Time series: sharded == serial, streaming == record mode.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_sharded_timeseries_equals_serial_sequential(provider):
    trace = _trace()
    spec = TimeSeriesSpec(window_s=5.0)
    serial = _platform(provider).run_workload(trace, timeseries=spec)
    sharded = _platform(provider).run_workload(
        trace, workers=4, backend="sequential", timeseries=spec
    )
    assert sharded.timeseries.to_dict() == serial.timeseries.to_dict()


def test_sharded_timeseries_equals_serial_process_backend():
    trace = _trace()
    spec = TimeSeriesSpec(window_s=5.0)
    serial = _platform().run_workload(trace, timeseries=spec)
    sharded = _platform().run_workload(trace, workers=4, backend="process", timeseries=spec)
    assert sharded.timeseries.to_dict() == serial.timeseries.to_dict()


def test_sharded_workflow_timeseries_equals_serial():
    platform, arrivals = _workflow_setup(Provider.AWS)
    spec = TimeSeriesSpec(window_s=5.0)
    serial = platform.run_workflows(arrivals, timeseries=spec)
    sharded_platform, _ = _workflow_setup(Provider.AWS)
    sharded = sharded_platform.run_workflows(
        arrivals, workers=4, backend="sequential", timeseries=spec
    )
    assert sharded.timeseries.to_dict() == serial.timeseries.to_dict()


def test_streaming_mode_folds_the_same_series():
    trace = _trace()
    spec = TimeSeriesSpec(window_s=5.0)
    record_mode = _platform().run_workload(trace, keep_records=True, timeseries=spec)
    streaming = _platform().run_workload(trace, keep_records=False, timeseries=spec)
    assert streaming.records == []
    assert streaming.timeseries.to_dict() == record_mode.timeseries.to_dict()


def test_streaming_mode_still_feeds_event_observers():
    trace = _trace(15.0)
    log = EventLog()
    result = _platform().run_workload(trace, keep_records=False, observer=log)
    assert result.records == []
    assert len([e for e in log.events if isinstance(e, InvocationSpan)]) == result.invocations


def test_timeseries_rows_are_dense_and_levels_prefix_summed():
    trace = _trace()
    result = _platform().run_workload(trace, timeseries=TimeSeriesSpec(window_s=5.0))
    rows = result.timeseries.rows()
    by_function: dict[str, list[dict]] = {}
    for row in rows:
        by_function.setdefault(row["function"], []).append(row)
    for fname, series in by_function.items():
        windows = [row["window"] for row in series]
        assert windows == list(range(windows[0], windows[0] + len(windows)))
        assert all(row["start_s"] == row["window"] * 5.0 for row in series)
        assert all(row["in_flight"] >= 0 and row["warm_pool"] >= 0 for row in series)
        assert sum(row["arrivals"] for row in series) == sum(
            1 for record in result.records if record.function_name == fname
        )


def test_timeseries_spec_validation():
    with pytest.raises(ConfigurationError):
        TimeSeriesSpec(window_s=0.0)
    with pytest.raises(ConfigurationError):
        TimeSeriesSpec(reservoir_capacity=0)


def test_merge_rejects_mismatched_specs():
    narrow = TimeSeriesSpec(window_s=5.0).build()
    wide = TimeSeriesSpec(window_s=10.0).build()
    with pytest.raises(ConfigurationError):
        narrow.merge(wide)


def test_event_observer_requires_serial_replay():
    with pytest.raises(ConfigurationError):
        _platform().run_workload(_trace(10.0), workers=2, observer=EventLog())


def test_resuming_pre_observability_checkpoint_fails_loudly(tmp_path):
    trace = _trace(20.0)
    checkpoint_dir = tmp_path / "ckpt"
    _platform().run_workload(
        trace, workers=2, backend="sequential", checkpoint_dir=checkpoint_dir
    )
    with pytest.raises(CheckpointError):
        _platform().run_workload(
            trace,
            workers=2,
            backend="sequential",
            checkpoint_dir=checkpoint_dir,
            resume=True,
            timeseries=TimeSeriesSpec(window_s=5.0),
        )


# ---------------------------------------------------------------------------
# Profiling.
# ---------------------------------------------------------------------------


def test_serial_profile_covers_the_replay_phase():
    result = _platform().run_workload(_trace(15.0), profile=True)
    profile = result.profile
    assert set(profile.phases) == {"replay"}
    assert 0 < profile.accounted_s <= profile.wall_clock_s * 1.5 + 1e-6
    rows = profile.rows()
    assert rows and all(set(row) == {"phase", "seconds", "share"} for row in rows)


def test_sharded_profile_has_plan_shards_merge_phases():
    result = _platform().run_workload(
        _trace(20.0), workers=2, backend="sequential", profile=True
    )
    assert set(result.profile.phases) == {"plan", "shards", "merge"}
    # The profile mirrors whatever supervision the replay ran with (none here).
    assert result.profile.supervision == result.supervision
    document = result.profile.to_dict()
    assert set(document["phases"]) == {"plan", "shards", "merge"}


def test_profile_builder_nested_phases_accumulate():
    builder = ProfileBuilder()
    with builder.phase("outer"):
        with builder.phase("inner"):
            pass
    with builder.phase("outer"):
        pass
    profile = builder.build()
    assert set(profile.phases) == {"outer", "inner"}
    assert profile.phases["outer"] >= profile.phases["inner"]


# ---------------------------------------------------------------------------
# Exporters.
# ---------------------------------------------------------------------------


def test_chrome_trace_of_empty_stream(tmp_path):
    document = chrome_trace([])
    assert document == {"traceEvents": [], "displayTimeUnit": "ms"}
    target = tmp_path / "nested" / "dir" / "trace.json"
    write_chrome_trace([], target)
    assert json.loads(target.read_text()) == document


def test_chrome_trace_schema_sanity():
    trace = _trace(15.0)
    log = EventLog()
    _platform().run_workload(trace, observer=log)
    document = chrome_trace(log.events)
    events = document["traceEvents"]
    assert events
    phases = {event["ph"] for event in events}
    assert "X" in phases and "M" in phases
    for event in events:
        assert event["ph"] in {"X", "i", "M"}
        if event["ph"] == "X":
            assert event["dur"] >= 0 and event["ts"] >= 0
            assert event["pid"] in (1, 2)
            assert "outcome" in event["args"]
        if event["ph"] == "i":
            assert event["s"] == "g"
    names = [e["args"]["name"] for e in events if e["ph"] == "M"]
    assert set(names) >= {"web", "thumbs"}


def test_chrome_trace_single_invocation():
    trace = WorkloadTrace([InvocationRequest(function_name="web", submitted_at=0.0)])
    log = EventLog()
    _platform().run_workload(trace, observer=log)
    spans = list(iter_spans(log.events))
    assert len(spans) == 1
    document = chrome_trace(log.events)
    complete = [event for event in document["traceEvents"] if event["ph"] == "X"]
    assert len(complete) == 1
    assert complete[0]["name"] == "web"


def test_event_jsonl_round_trips(tmp_path):
    log = EventLog()
    _platform().run_workload(_trace(10.0), observer=log)
    target = tmp_path / "events.jsonl"
    write_event_jsonl(log.events, target)
    lines = target.read_text().splitlines()
    assert len(lines) == len(log.events)
    parsed = [json.loads(line) for line in lines]
    assert parsed == [event.to_dict() for event in log.events]
    empty = tmp_path / "empty.jsonl"
    write_event_jsonl([], empty)
    assert empty.read_text() == ""


def test_timeseries_csv_header_only_when_empty(tmp_path):
    builder = TimeSeriesSpec().build()
    text = timeseries_csv(builder)
    lines = text.splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("function,window,start_s,arrivals,")
    assert lines[0].endswith("p50_client_s,p95_client_s,p99_client_s")
    target = tmp_path / "sub" / "series.csv"
    write_timeseries_csv(builder, target)
    assert target.read_text() == text


def test_timeseries_csv_rows_match_builder(tmp_path):
    result = _platform().run_workload(_trace(), timeseries=TimeSeriesSpec(window_s=5.0))
    text = timeseries_csv(result.timeseries)
    lines = text.splitlines()
    assert len(lines) == len(result.timeseries.rows()) + 1
    # Empty cells are exactly the None percentiles; numbers round-trip via repr.
    first = lines[1].split(",")
    assert first[0] in {"web", "thumbs"}


def test_prometheus_snapshot_format(tmp_path):
    result = _platform().run_workload(_trace(10.0))
    text = prometheus_snapshot(result, labels={"provider": "aws", "trace": "t"})
    assert text.endswith("\n")
    assert '# TYPE repro_replay_invocations_total counter' in text
    assert 'repro_replay_invocations_total{provider="aws",trace="t"}' in text
    assert "repro_replay_wall_clock_seconds" in text
    target = tmp_path / "metrics" / "snapshot.prom"
    write_prometheus_snapshot(result, target, labels={"provider": "aws"})
    assert target.read_text().startswith("# HELP ")


def test_iter_spans_unwraps_workflow_stages():
    platform, arrivals = _workflow_setup(Provider.AWS)
    log = EventLog()
    platform.run_workflows(arrivals, observer=log)
    spans = list(iter_spans(log.events))
    assert spans and all(isinstance(span, InvocationSpan) for span in spans)
    assert len(spans) == sum(
        1 for event in log.events if isinstance(event, WorkflowStageSpan)
    )
