"""Tests for the network substrate: link model, clock sync, transfer helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.clock_sync import ClockDriftEstimator
from repro.network.latency import NetworkLink, NetworkProfile
from repro.network.transfer import payload_transfer_time


def make_link(seed=0, offset=0.0, **kwargs) -> NetworkLink:
    profile = NetworkProfile(**kwargs)
    return NetworkLink(profile, np.random.default_rng(seed), clock_offset_s=offset)


class TestNetworkProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkProfile(min_rtt_s=0.0)
        with pytest.raises(ConfigurationError):
            NetworkProfile(asymmetry=1.0)
        with pytest.raises(ConfigurationError):
            NetworkProfile(bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            NetworkProfile(jitter_scale_s=-1.0)


class TestNetworkLink:
    def test_round_trip_never_below_floor(self):
        link = make_link(min_rtt_s=0.05)
        for _ in range(200):
            assert link.round_trip() >= 0.05

    def test_request_direction_is_slower_when_asymmetric(self):
        link = make_link(asymmetry=0.8, jitter_scale_s=0.0)
        assert link.one_way_delay("request") > link.one_way_delay("response")

    def test_payload_adds_serialization_delay(self):
        link = make_link(jitter_scale_s=0.0, bandwidth_mbps=10.0)
        empty = link.one_way_delay("request", 0)
        loaded = link.one_way_delay("request", 10 * 1024 * 1024)
        assert loaded - empty == pytest.approx(1.0, rel=0.01)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().one_way_delay("sideways")

    def test_min_round_trip_exposes_floor(self):
        assert make_link(min_rtt_s=0.033).min_round_trip() == pytest.approx(0.033)

    def test_rtt_distribution_is_right_skewed(self):
        link = make_link(jitter_scale_s=0.01)
        samples = np.array([link.round_trip() for _ in range(500)])
        assert np.mean(samples) > np.median(samples)


class TestClockDriftEstimator:
    def test_recovers_positive_offset(self):
        link = make_link(seed=1, offset=1.5, jitter_scale_s=0.002)
        estimate = ClockDriftEstimator(link).estimate()
        assert estimate.offset_s == pytest.approx(1.5, abs=0.01)

    def test_recovers_negative_offset(self):
        link = make_link(seed=2, offset=-0.75, jitter_scale_s=0.002)
        estimate = ClockDriftEstimator(link).estimate()
        assert estimate.offset_s == pytest.approx(-0.75, abs=0.01)

    def test_runs_at_least_n_exchanges(self):
        link = make_link(seed=3)
        estimate = ClockDriftEstimator(link, stop_after_non_decreasing=10).estimate()
        assert estimate.exchanges >= 10

    def test_respects_max_exchanges(self):
        link = make_link(seed=4, jitter_scale_s=0.05)
        estimate = ClockDriftEstimator(link, stop_after_non_decreasing=1000, max_exchanges=1000).estimate()
        assert estimate.exchanges <= 1000

    def test_min_rtt_close_to_floor(self):
        link = make_link(seed=5, min_rtt_s=0.04, jitter_scale_s=0.001)
        estimate = ClockDriftEstimator(link).estimate()
        assert estimate.min_rtt_s >= 0.04
        assert estimate.min_rtt_s < 0.06

    def test_timestamp_conversions_are_inverse(self):
        link = make_link(seed=6, offset=2.0)
        estimate = ClockDriftEstimator(link).estimate()
        assert estimate.to_local(estimate.to_remote(12.0)) == pytest.approx(12.0)

    def test_invalid_configuration(self):
        link = make_link()
        with pytest.raises(ConfigurationError):
            ClockDriftEstimator(link, stop_after_non_decreasing=0)
        with pytest.raises(ConfigurationError):
            ClockDriftEstimator(link, stop_after_non_decreasing=10, max_exchanges=5)


class TestPayloadTransfer:
    def test_linear_in_payload(self):
        t1 = payload_transfer_time(1024 * 1024, 10.0)
        t2 = payload_transfer_time(2 * 1024 * 1024, 10.0)
        assert t2 == pytest.approx(2 * t1)

    def test_overhead_added(self):
        assert payload_transfer_time(0, 10.0, per_request_overhead_s=0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            payload_transfer_time(-1, 10.0)
        with pytest.raises(ConfigurationError):
            payload_transfer_time(1, 0.0)
