"""Property tests for the mergeable streaming sketches.

Hypothesis drives random value streams, random shard splits and random
merge orders through :class:`~repro.stats.streaming.StreamingMoments`,
:class:`~repro.stats.streaming.MergeableReservoir` and
:class:`~repro.stats.streaming.StreamingSummary`, pinning the algebra the
sharded-replay merge relies on:

* ``merge(split(xs)) == ingest(xs)`` — exactly for counts/min/max, within
  float-associativity bounds for mean/variance;
* reservoir union is associative, commutative and **permutation-stable**:
  any merge tree over the same shards yields bit-identical state;
* merging is closed under the identity element (empty accumulators).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.stats.streaming import MergeableReservoir, StreamingMoments, StreamingSummary

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite_floats, min_size=1, max_size=200)


def _split(xs: list[float], boundaries: list[int]) -> list[list[float]]:
    """Cut ``xs`` into contiguous shards at the given sorted boundaries."""
    cuts = sorted({min(b, len(xs)) for b in boundaries})
    shards, start = [], 0
    for cut in cuts:
        shards.append(xs[start:cut])
        start = cut
    shards.append(xs[start:])
    return shards


@st.composite
def stream_and_split(draw):
    xs = draw(sample_lists)
    boundaries = draw(st.lists(st.integers(min_value=0, max_value=len(xs)), max_size=5))
    return xs, _split(xs, boundaries)


class TestStreamingMomentsMerge:
    @given(stream_and_split())
    @settings(max_examples=200, deadline=None)
    def test_merge_of_split_equals_ingest(self, case):
        xs, shards = case
        whole = StreamingMoments()
        for x in xs:
            whole.add(x)
        merged = StreamingMoments()
        for shard in shards:
            part = StreamingMoments()
            for x in shard:
                part.add(x)
            merged.merge(part)
        assert merged.count == whole.count  # exact
        assert merged.minimum == whole.minimum  # exact
        assert merged.maximum == whole.maximum  # exact
        # Documented float-associativity bounds for the derived moments.
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
        scale = max(1.0, abs(whole.variance))
        assert math.isclose(merged.variance, whole.variance, rel_tol=1e-6, abs_tol=1e-6 * scale)

    @given(sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_empty_is_identity(self, xs):
        filled = StreamingMoments()
        for x in xs:
            filled.add(x)
        before = (filled.count, filled.mean, filled._m2, filled.minimum, filled.maximum)
        filled.merge(StreamingMoments())
        assert (filled.count, filled.mean, filled._m2, filled.minimum, filled.maximum) == before
        adopted = StreamingMoments()
        adopted.merge(filled)
        assert (adopted.count, adopted.mean, adopted._m2, adopted.minimum, adopted.maximum) == before

    @given(sample_lists, sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_commutative_on_exact_fields(self, xs, ys):
        def folded(first, second):
            a, b = StreamingMoments(), StreamingMoments()
            for x in first:
                a.add(x)
            for y in second:
                b.add(y)
            a.merge(b)
            return a
        ab, ba = folded(xs, ys), folded(ys, xs)
        assert ab.count == ba.count
        assert ab.minimum == ba.minimum
        assert ab.maximum == ba.maximum
        assert ab.mean == pytest.approx(ba.mean, rel=1e-9, abs=1e-9)


def _reservoir_state(reservoir: MergeableReservoir):
    return (reservoir.seen, reservoir.entries())


def _fill(key: str, values: list[float], capacity: int = 16) -> MergeableReservoir:
    reservoir = MergeableReservoir(capacity, key=key, seed=9)
    for value in values:
        reservoir.add(value)
    return reservoir


class TestMergeableReservoir:
    @given(
        st.lists(sample_lists, min_size=1, max_size=6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_union_is_permutation_stable(self, shard_values, rng):
        """Any merge order over the same shards yields identical state."""
        def union(order):
            target = MergeableReservoir(16, key="sink", seed=9)
            for index in order:
                target.merge(_fill(f"shard-{index}", shard_values[index]))
            return _reservoir_state(target)

        order = list(range(len(shard_values)))
        reference = union(order)
        for _ in range(3):
            rng.shuffle(order)
            assert union(order) == reference

    @given(st.lists(sample_lists, min_size=3, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_union_is_associative(self, shard_values):
        c = _fill("s2", shard_values[2])
        left = _fill("s0", shard_values[0])
        left.merge(_fill("s1", shard_values[1]))
        left.merge(c)
        right_inner = _fill("s1", shard_values[1])
        right_inner.merge(_fill("s2", shard_values[2]))
        right = _fill("s0", shard_values[0])
        right.merge(right_inner)
        assert _reservoir_state(left) == _reservoir_state(right)

    @given(sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_small_streams_are_kept_exactly(self, xs):
        reservoir = _fill("whole", xs, capacity=max(16, len(xs)))
        assert sorted(reservoir.values()) == sorted(xs)
        assert reservoir.seen == len(xs)

    @given(stream_and_split())
    @settings(max_examples=100, deadline=None)
    def test_shard_union_equals_whole_stream_distribution(self, case):
        """Disjoint-shard union == one reservoir over the concatenation,
        when every shard keeps its own tag stream (distinct keys)."""
        xs, shards = case
        capacity = max(16, len(xs))  # large enough that nothing is dropped
        target = MergeableReservoir(capacity, key="sink", seed=9)
        for index, shard in enumerate(shards):
            target.merge(_fill(f"shard-{index}", shard, capacity=capacity))
        assert sorted(target.values()) == sorted(xs)

    def test_merge_with_self_is_rejected(self):
        reservoir = _fill("self", [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            reservoir.merge(reservoir)

    def test_percentile_of_empty_reservoir_raises(self):
        with pytest.raises(ConfigurationError):
            MergeableReservoir(4, key="empty").percentile(50.0)

    def test_bottom_k_is_uniformly_distributed(self):
        """Sampling sanity: kept values track the stream distribution."""
        rng = np.random.default_rng(3)
        xs = rng.exponential(1.0, size=20_000)
        reservoir = MergeableReservoir(2048, key="big", seed=5)
        for x in xs:
            reservoir.add(float(x))
        kept = np.asarray(reservoir.values())
        assert len(kept) == 2048
        assert float(np.median(kept)) == pytest.approx(float(np.median(xs)), rel=0.08)
        assert float(np.percentile(kept, 95)) == pytest.approx(
            float(np.percentile(xs, 95)), rel=0.10
        )


class TestStreamingSummaryMerge:
    @given(stream_and_split())
    @settings(max_examples=100, deadline=None)
    def test_merge_of_split_matches_whole_ingest(self, case):
        xs, shards = case
        whole = StreamingSummary(key="whole")
        for x in xs:
            whole.add(x)
        merged = StreamingSummary(key="sink")
        for index, shard in enumerate(shards):
            part = StreamingSummary(key=f"shard-{index}")
            for x in shard:
                part.add(x)
            merged.merge(part)
        assert merged.count == whole.count
        assert merged.moments.minimum == whole.moments.minimum
        assert merged.moments.maximum == whole.moments.maximum
        assert merged.moments.mean == pytest.approx(whole.moments.mean, rel=1e-9, abs=1e-9)
        # Below reservoir capacity both sides kept every sample: percentile
        # queries must agree exactly (same value multiset).
        summary = merged.to_summary()
        assert summary.median == pytest.approx(whole.to_summary().median, rel=1e-12, abs=1e-12)

    def test_merged_summary_keeps_accepting_samples(self):
        left = StreamingSummary(key="left")
        right = StreamingSummary(key="right")
        for x in (1.0, 2.0, 3.0):
            left.add(x)
        for x in (4.0, 5.0):
            right.add(x)
        left.merge(right)
        left.add(6.0)
        assert left.count == 6
        assert left.moments.maximum == 6.0

    def test_merge_with_self_is_rejected(self):
        summary = StreamingSummary(key="s")
        summary.add(1.0)
        with pytest.raises(ConfigurationError):
            summary.merge(summary)
