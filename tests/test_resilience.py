"""Client-side resilience layer: breaker properties, hedging, staleness.

The circuit breaker is property-tested (hypothesis): arbitrary event
sequences may only ever produce the legal state transitions, OPEN can
advance to HALF_OPEN only after the cooldown, and the whole state trace is
a pure function of the per-function outcome stream (interleaving two
functions' streams changes nothing) — the invariant that keeps sharded
replay bit-identical.  Integration tests replay small traces with hedging,
staleness deadlines and breakers enabled.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import OverloadConfig
from repro.config import Provider, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.experiments.base import deploy_benchmark
from repro.faults import FaultPlaneConfig, OutageWindow
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    HedgeConfig,
    ResilienceConfig,
    VALID_TRANSITIONS,
)
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

# ----------------------------------------------------------- strategies

breaker_configs = st.integers(min_value=2, max_value=12).flatmap(
    lambda window: st.builds(
        CircuitBreakerConfig,
        window=st.just(window),
        min_calls=st.integers(min_value=1, max_value=window),
        failure_threshold=st.floats(min_value=0.1, max_value=1.0),
        cooldown_s=st.floats(min_value=0.5, max_value=10.0),
        half_open_probes=st.integers(min_value=1, max_value=4),
    )
)

#: One breaker-visible event: (time delta, kind).
events = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        st.sampled_from(["allow", "success", "failure", "throttle"]),
    ),
    max_size=80,
)


def _drive(breaker: CircuitBreaker, sequence):
    """Feed a sequence of events; return the [(before, after)] state trace."""
    now = 0.0
    trace = []
    for dt, kind in sequence:
        now += dt
        before = breaker.state
        if kind == "allow":
            allowed = breaker.allow(now)
            if before is BreakerState.OPEN and breaker.state is BreakerState.HALF_OPEN:
                # OPEN may only yield to HALF_OPEN once the cooldown elapsed.
                assert now - breaker.opened_at >= breaker.config.cooldown_s
            if breaker.state is BreakerState.OPEN:
                assert not allowed
        elif kind == "success":
            breaker.on_outcome(now, True)
        elif kind == "failure":
            breaker.on_outcome(now, False)
        else:
            breaker.on_outcome(now, False, throttle=True)
        trace.append((before, breaker.state))
    return trace


class TestBreakerProperties:
    @given(breaker_configs, events)
    @settings(max_examples=200)
    def test_only_legal_transitions_ever_occur(self, config, sequence):
        trace = _drive(CircuitBreaker(config), sequence)
        for before, after in trace:
            if before is not after:
                assert (before, after) in VALID_TRANSITIONS

    @given(breaker_configs, events)
    @settings(max_examples=100)
    def test_state_trace_is_pure_function_of_event_stream(self, config, sequence):
        first = _drive(CircuitBreaker(config), sequence)
        second = _drive(CircuitBreaker(config), sequence)
        assert first == second

    @given(breaker_configs, events, events, st.lists(st.booleans(), max_size=160))
    @settings(max_examples=100)
    def test_interleaving_two_functions_changes_nothing(
        self, config, sequence_a, sequence_b, picks
    ):
        """Two per-function breakers fed in any interleaved order produce
        exactly the traces of driving each stream alone — no shared state,
        which is what lets each shard replay its functions independently."""
        alone_a = _drive(CircuitBreaker(config), sequence_a)
        alone_b = _drive(CircuitBreaker(config), sequence_b)

        breaker_a, breaker_b = CircuitBreaker(config), CircuitBreaker(config)
        queue_a, queue_b = list(sequence_a), list(sequence_b)
        now_a = now_b = 0.0
        trace_a, trace_b = [], []
        picks = iter(picks)
        while queue_a or queue_b:
            take_a = bool(queue_a) and (not queue_b or next(picks, True))
            if take_a:
                dt, kind = queue_a.pop(0)
                now_a += dt
                trace_a.append(_step(breaker_a, now_a, kind))
            else:
                dt, kind = queue_b.pop(0)
                now_b += dt
                trace_b.append(_step(breaker_b, now_b, kind))
        assert trace_a == [pair for pair in alone_a]
        assert trace_b == [pair for pair in alone_b]

    @given(breaker_configs, events)
    @settings(max_examples=100)
    def test_open_always_follows_a_trip_and_counts_opens(self, config, sequence):
        breaker = CircuitBreaker(config)
        trace = _drive(breaker, sequence)
        trips = sum(
            1 for before, after in trace
            if before is not BreakerState.OPEN and after is BreakerState.OPEN
        )
        assert breaker.opens == trips


def _step(breaker, now, kind):
    before = breaker.state
    if kind == "allow":
        breaker.allow(now)
    elif kind == "success":
        breaker.on_outcome(now, True)
    elif kind == "failure":
        breaker.on_outcome(now, False)
    else:
        breaker.on_outcome(now, False, throttle=True)
    return (before, breaker.state)


# ----------------------------------------------------------- breaker units

_CONFIG = CircuitBreakerConfig(
    window=4, min_calls=4, failure_threshold=0.5, cooldown_s=10.0, half_open_probes=2
)


class TestBreakerStateMachine:
    def _tripped(self):
        breaker = CircuitBreaker(_CONFIG)
        for i in range(4):
            breaker.on_outcome(float(i), i % 2 == 0)  # 2 failures of 4 = 50%
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_trips_at_threshold_after_min_calls(self):
        breaker = CircuitBreaker(_CONFIG)
        breaker.on_outcome(0.0, False)
        breaker.on_outcome(1.0, False)
        assert breaker.state is BreakerState.CLOSED  # below min_calls
        breaker.on_outcome(2.0, True)
        breaker.on_outcome(3.0, True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 3.0

    def test_open_rejects_until_cooldown_then_probes(self):
        breaker = self._tripped()
        assert not breaker.allow(breaker.opened_at + 9.9)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(breaker.opened_at + 10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        # Probe budget: one more probe, then rejection.
        assert breaker.allow(breaker.opened_at + 10.1)
        assert not breaker.allow(breaker.opened_at + 10.2)

    def test_probe_successes_close_and_clear_the_window(self):
        breaker = self._tripped()
        now = breaker.opened_at + 10.0
        breaker.allow(now)
        breaker.on_outcome(now + 0.1, True)
        breaker.on_outcome(now + 0.2, True)
        assert breaker.state is BreakerState.CLOSED
        # The window restarted: min_calls failures are needed again.
        breaker.on_outcome(now + 0.3, False)
        breaker.on_outcome(now + 0.4, False)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_re_trips(self):
        breaker = self._tripped()
        now = breaker.opened_at + 10.0
        breaker.allow(now)
        breaker.on_outcome(now + 0.1, False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == now + 0.1
        assert breaker.opens == 2

    def test_throttles_ignored_while_closed(self):
        breaker = CircuitBreaker(_CONFIG)
        for i in range(50):
            breaker.on_outcome(float(i), False, throttle=True)
        assert breaker.state is BreakerState.CLOSED

    def test_throttled_probe_re_trips(self):
        breaker = self._tripped()
        now = breaker.opened_at + 10.0
        breaker.allow(now)
        breaker.on_outcome(now + 0.1, False, throttle=True)
        assert breaker.state is BreakerState.OPEN

    def test_outcomes_while_open_are_ignored(self):
        breaker = self._tripped()
        breaker.on_outcome(breaker.opened_at + 1.0, True)
        breaker.on_outcome(breaker.opened_at + 2.0, False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1


# ------------------------------------------------------------- validation


class TestResilienceConfigValidation:
    def test_breaker_config_bounds(self):
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(window=0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(window=5, min_calls=6)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(cooldown_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(half_open_probes=0)

    def test_hedge_and_resilience_bounds(self):
        with pytest.raises(ConfigurationError):
            HedgeConfig(delay_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(retry_policy="nope")
        with pytest.raises(ConfigurationError):
            ResilienceConfig(stale_after_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)


# ------------------------------------------------------------ integration


def _replay(resilience=None, faults=None, overload=None, seed=7, rate=6.0, duration_s=40.0):
    platform = create_platform(
        Provider.AWS,
        SimulationConfig(seed=seed, resilience=resilience, faults=faults, overload=overload),
    )
    fname = deploy_benchmark(
        platform, "dynamic-html", memory_mb=256, function_name="res-web"
    )
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(rate), duration_s=duration_s, rng=33
    )
    return platform.run_workload(trace, keep_records=True)


def _conserved(result) -> bool:
    return (
        result.executed_count
        + result.throttled_count
        + result.dropped_count
        + result.faulted_count
        + result.short_circuited_count
        == result.invocations
    )


class TestResilienceIntegration:
    def test_hedging_duplicates_slow_requests_and_bills_both(self):
        hedged = _replay(ResilienceConfig(hedge=HedgeConfig(delay_s=0.15)))
        baseline = _replay()
        assert hedged.invocations == baseline.invocations
        assert hedged.hedge_count > 0
        assert _conserved(hedged)
        # One record per logical request even when hedged; both attempts bill.
        assert len(hedged.records) == len(baseline.records)
        assert hedged.total_cost_usd > baseline.total_cost_usd
        for record in hedged.records:
            assert record.hedges in (0, 1)

    def test_breaker_short_circuits_during_outage_and_recovers(self):
        faults = FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=10.0),))
        resilience = ResilienceConfig(
            breaker=CircuitBreakerConfig(
                window=10, min_calls=4, failure_threshold=0.5, cooldown_s=3.0
            )
        )
        result = _replay(resilience=resilience, faults=faults)
        assert result.short_circuited_count > 0
        assert _conserved(result)
        for record in result.records:
            if record.outcome.value == "short-circuited":
                assert record.error == "breaker-open"
                assert record.cost.total == 0.0
        # After the outage plus cooldown the breaker closes again and
        # traffic executes normally.
        tail = [r for r in result.records if r.submitted_at >= 25.0]
        assert tail and all(r.success for r in tail)

    def test_client_retries_ride_out_the_outage(self):
        faults = FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=5.0),))
        fail_fast = _replay(faults=faults)
        retrying = _replay(
            resilience=ResilienceConfig(
                retry_policy="exponential", max_retries=6, retry_max_delay_s=4.0
            ),
            faults=faults,
        )
        assert retrying.invocations == fail_fast.invocations
        # Retries push outage-window requests past the window: fewer faults.
        assert retrying.faulted_count < fail_fast.faulted_count
        assert retrying.retry_count > 0
        assert _conserved(retrying)

    def test_stale_deadline_resubmits_and_folds_saga_cost(self):
        overload = OverloadConfig(
            reserved_concurrency=2,
            retry_policy="no-jitter",
            max_retries=10,
            retry_base_delay_s=0.2,
            retry_max_delay_s=0.4,
        )
        resilience = ResilienceConfig(
            retry_policy="no-jitter",
            max_retries=10,
            retry_base_delay_s=0.2,
            retry_max_delay_s=0.4,
            stale_after_s=1.0,
        )
        result = _replay(resilience=resilience, overload=overload, rate=12.0)
        stale = [r for r in result.records if r.error == "stale"]
        assert stale
        assert _conserved(result)
        # A stale saga burned at least one execution: its terminal record
        # carries the cost even though the outcome is FAILED.
        assert all(r.cost.total > 0.0 for r in stale)
        assert result.failure_count >= len(stale)
        # Costs are conserved: the per-function totals equal the record sum.
        summary = result.per_function()["res-web"]
        assert summary.total_cost_usd == pytest.approx(
            sum(r.cost.total for r in result.records)
        )

    def test_defaults_off_replay_is_untouched(self):
        """resilience=None replays bit-identically to the seed behaviour."""
        assert _replay().records == _replay(resilience=None).records
