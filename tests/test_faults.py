"""Fault-injection plane: schedules, crash eviction, storm scaling.

Unit tests drive :mod:`repro.faults` directly (with stub pools/streams);
the integration tests replay small traces through the platform and check
the observable failure modes — faulted records for outages, cold-start
storms for crashes, latency inflation (and nothing else) for storms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Provider, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.experiments.base import deploy_benchmark
from repro.faults import (
    ContainerCrash,
    FaultPlaneConfig,
    LatencyStorm,
    OutageWindow,
    build_fault_state,
)
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

# ------------------------------------------------------------------ stubs


class _Stream:
    """Deterministic stand-in for the derived per-function fault stream."""

    def __init__(self, values=()):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)

    def uniform(self, low, high):
        return low + (high - low) * self._values.pop(0)


class _Container:
    def __init__(self, container_id, warm=True):
        self.container_id = container_id
        self.is_warm = warm


class _Pool:
    def __init__(self, containers, in_use=()):
        self.containers = list(containers)
        self._in_use = set(in_use)

    def __iter__(self):
        return iter(self.containers)

    def in_use_count(self, container_id):
        return 1 if container_id in self._in_use else 0

    def evict(self, victims):
        for victim in victims:
            self.containers.remove(victim)


# ----------------------------------------------------------- config layer


class TestFaultConfigValidation:
    def test_outage_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(start_s=-1.0, duration_s=5.0)
        with pytest.raises(ConfigurationError):
            OutageWindow(start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigurationError, match="mode"):
            OutageWindow(start_s=0.0, duration_s=1.0, mode="explode")

    def test_crash_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            ContainerCrash(at_s=-0.1)
        with pytest.raises(ConfigurationError):
            ContainerCrash(at_s=1.0, survive_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ContainerCrash(at_s=1.0, survive_fraction=-0.2)

    def test_storm_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            LatencyStorm(start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            LatencyStorm(start_s=0.0, duration_s=1.0, compute_multiplier=0.0)

    def test_plane_needs_at_least_one_event(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FaultPlaneConfig()
        with pytest.raises(ConfigurationError):
            FaultPlaneConfig(
                outages=(OutageWindow(start_s=0.0, duration_s=1.0),),
                boundary_jitter_s=-1.0,
            )

    def test_function_scoping(self):
        window = OutageWindow(start_s=0.0, duration_s=1.0, functions=("web",))
        assert window.applies_to("web") and not window.applies_to("api")
        region_wide = OutageWindow(start_s=0.0, duration_s=1.0)
        assert region_wide.applies_to("anything")


# ------------------------------------------------------------ plane layer


class TestBuildFaultState:
    def test_returns_none_when_nothing_applies(self):
        config = FaultPlaneConfig(
            outages=(OutageWindow(start_s=0.0, duration_s=1.0, functions=("other",)),)
        )
        assert build_fault_state("web", config, _Stream()) is None

    def test_outage_window_boundaries_are_half_open(self):
        config = FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=5.0),))
        state = build_fault_state("web", config, _Stream())
        assert state.outage_at(9.999) is None
        assert state.outage_at(10.0) is not None
        assert state.outage_at(14.999) is not None
        assert state.outage_at(15.0) is None

    def test_boundary_jitter_shifts_starts_deterministically(self):
        config = FaultPlaneConfig(
            outages=(OutageWindow(start_s=10.0, duration_s=5.0),),
            storms=(LatencyStorm(start_s=20.0, duration_s=5.0, compute_multiplier=2.0),),
            boundary_jitter_s=2.0,
        )
        # Draws happen eagerly in config order: outage first, then storm.
        state = build_fault_state("web", config, _Stream([0.5, 0.25]))
        assert state.outage_at(10.5) is None  # shifted to start at 11.0
        assert state.outage_at(11.0) is not None
        assert state.multipliers_at(20.25) is None  # shifted to 20.5
        assert state.multipliers_at(20.5) == (2.0, 1.0)

    def test_schedule_is_pure_function_of_stream(self):
        config = FaultPlaneConfig(
            outages=(OutageWindow(start_s=5.0, duration_s=5.0),),
            boundary_jitter_s=1.0,
        )
        draws = [float(x) for x in np.random.default_rng(3).random(4)]
        first = build_fault_state("web", config, _Stream(list(draws)))
        second = build_fault_state("web", config, _Stream(list(draws)))
        for t in (4.0, 5.0, 5.5, 6.0, 9.9, 10.5, 11.0):
            assert (first.outage_at(t) is None) == (second.outage_at(t) is None)

    def test_overlapping_storms_multiply(self):
        config = FaultPlaneConfig(
            storms=(
                LatencyStorm(start_s=0.0, duration_s=10.0, compute_multiplier=2.0, network_multiplier=3.0),
                LatencyStorm(start_s=5.0, duration_s=10.0, compute_multiplier=1.5),
            )
        )
        state = build_fault_state("web", config, _Stream())
        assert state.multipliers_at(2.0) == (2.0, 3.0)
        assert state.multipliers_at(7.0) == (3.0, 3.0)
        assert state.multipliers_at(12.0) == (1.5, 1.0)
        assert state.multipliers_at(20.0) is None


class TestCrashEviction:
    def _state(self, crashes, stream=None):
        config = FaultPlaneConfig(crashes=tuple(crashes))
        return build_fault_state("web", config, stream or _Stream())

    def test_evicts_idle_warm_only(self):
        state = self._state([ContainerCrash(at_s=10.0)])
        pool = _Pool(
            [_Container("a"), _Container("b"), _Container("c", warm=False)],
            in_use=("b",),
        )
        # Not due yet: nothing happens.
        assert state.apply_crashes(pool, 9.0) == 0
        # Due: only the idle warm container "a" dies ("b" is in flight,
        # "c" is not warm).
        assert state.apply_crashes(pool, 10.0) == 1
        assert [c.container_id for c in pool.containers] == ["b", "c"]
        assert state.crash_evictions == 1
        # The event applied exactly once; a later call is a no-op.
        assert state.apply_crashes(pool, 20.0) == 0

    def test_survive_fraction_draws_per_victim_in_pool_order(self):
        # One draw per victim in pool order; a draw below survive_fraction
        # spares the sandbox: a=0.1 survives, b=0.9 evicted, c=0.2 survives.
        state = self._state(
            [ContainerCrash(at_s=1.0, survive_fraction=0.5)],
            stream=_Stream([0.1, 0.9, 0.2]),
        )
        pool = _Pool([_Container("a"), _Container("b"), _Container("c")])
        assert state.apply_crashes(pool, 1.0) == 1
        assert [c.container_id for c in pool.containers] == ["a", "c"]

    def test_multiple_due_crashes_apply_in_order(self):
        state = self._state([ContainerCrash(at_s=5.0), ContainerCrash(at_s=2.0)])
        pool = _Pool([_Container("a")])
        assert state.apply_crashes(pool, 6.0) == 1
        assert pool.containers == []


# ------------------------------------------------------------ integration


def _replay(faults=None, seed=7, rate=6.0, duration_s=40.0):
    platform = create_platform(
        Provider.AWS, SimulationConfig(seed=seed, faults=faults)
    )
    fname = deploy_benchmark(
        platform, "dynamic-html", memory_mb=256, function_name="fault-web"
    )
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(rate), duration_s=duration_s, rng=31
    )
    return platform.run_workload(trace, keep_records=True)


class TestFaultReplayIntegration:
    def test_outage_faults_requests_inside_the_window(self):
        faults = FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=10.0),))
        result = _replay(faults)
        baseline = _replay()
        assert result.faulted_count > 0
        # Conservation: every request resolves exactly once.
        assert result.executed_count + result.faulted_count == result.invocations
        assert result.invocations == baseline.invocations
        for record in result.records:
            if record.outcome.value == "faulted":
                assert 10.0 <= record.submitted_at < 20.0
                assert record.error == "outage-fail-fast"
                assert record.cost.total == 0.0

    def test_hang_outage_holds_clients_until_timeout(self):
        fast = _replay(FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=10.0),)))
        hang = _replay(
            FaultPlaneConfig(outages=(OutageWindow(start_s=10.0, duration_s=10.0, mode="hang"),))
        )
        fast_faulted = [r for r in fast.records if r.outcome.value == "faulted"]
        hang_faulted = [r for r in hang.records if r.outcome.value == "faulted"]
        assert len(fast_faulted) == len(hang_faulted)
        # The hang variant's clients wait for the function timeout.
        assert min(r.client_time_s for r in hang_faulted) > max(
            r.client_time_s for r in fast_faulted
        )

    def test_crash_causes_cold_start_storm(self):
        faults = FaultPlaneConfig(crashes=(ContainerCrash(at_s=20.0),))
        crashed = _replay(faults)
        baseline = _replay()
        assert crashed.invocations == baseline.invocations
        assert crashed.cold_start_count > baseline.cold_start_count
        # Before the crash both replays are byte-identical.
        pre = [r for r in crashed.records if r.submitted_at < 20.0]
        assert pre == [r for r in baseline.records if r.submitted_at < 20.0]

    def test_storm_inflates_latency_without_changing_outcomes(self):
        faults = FaultPlaneConfig(
            storms=(
                LatencyStorm(
                    start_s=10.0, duration_s=20.0, compute_multiplier=4.0, network_multiplier=2.0
                ),
            )
        )
        stormy = _replay(faults)
        baseline = _replay()
        assert stormy.invocations == baseline.invocations
        assert stormy.executed_count == baseline.executed_count
        by_id = {r.submitted_at: r for r in baseline.records}
        inside = [
            (r, by_id[r.submitted_at])
            for r in stormy.records
            if 10.0 <= r.submitted_at < 30.0
        ]
        assert inside
        assert all(s.client_time_s > b.client_time_s for s, b in inside)
        # Calm instants replay the exact fault-free bytes.
        calm = [r for r in stormy.records if r.submitted_at < 10.0]
        assert calm == [r for r in baseline.records if r.submitted_at < 10.0]
