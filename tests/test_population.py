"""Million-tenant population generation, trace ingestion, and sharded replay.

The contracts pinned here:

* **bit-identity** — ``replay_population`` at any worker count (sequential
  or process backend) merges to exactly the serial result, modulo the
  documented streaming exemptions (``peak_in_flight`` is a max-over-shards
  lower bound, wall clock is a measurement);
* **scenario-bridge equivalence** — the dedicated population replay and
  ``platform.run_workload(population.scenario(seed))`` replay the *same*
  invocations: identical counts and bit-identical total cost;
* **ingest round-trip** — the checked-in Azure-format fixture parses to a
  pinned structural summary and replays identically sharded vs serial;
* **recipe laziness** — arrivals and recipes are pure functions of
  ``(population, seed, index)``, independent of sharding or call order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DYNAMIC_MEMORY, Provider, SimulationConfig, TriggerType
from repro.exceptions import ConfigurationError
from repro.parallel import ShardPlanner
from repro.population import (
    SEBS_PROFILES,
    AppProfile,
    PopulationSpec,
    TraceIngest,
    replay_population,
    tenant_attribution,
)
from repro.population.ingest import summarize_population
from repro.population.replay import (
    PopulationSnapshot,
    _replay_population_shard,
    _resolve_memory,
    deploy_population,
)
from repro.simulator.providers import create_platform

FIXTURE = "tests/fixtures/azure_trace_sample.csv"

SMALL = PopulationSpec(
    n_functions=120,
    duration_s=120.0,
    aggregate_rate_per_s=12.0,
    n_tenants=10,
    name="small-pop",
)


def _platform(provider=Provider.AWS, seed=42, columnar=False):
    return create_platform(provider, SimulationConfig(seed=seed, columnar=columnar))


def _assert_streaming_equal(serial, parallel):
    """Merged sharded result equals serial, minus the documented exemptions."""
    assert parallel.records == []
    assert parallel.invocations == serial.invocations
    assert parallel.cold_start_total == serial.cold_start_total
    assert parallel.failure_total == serial.failure_total
    assert parallel.total_cost_usd == serial.total_cost_usd
    assert parallel.simulated_span_s == serial.simulated_span_s
    serial_fns = serial.per_function()
    parallel_fns = parallel.per_function()
    assert set(parallel_fns) == set(serial_fns)
    for fname, serial_summary in serial_fns.items():
        parallel_summary = parallel_fns[fname]
        assert parallel_summary.invocations == serial_summary.invocations
        assert parallel_summary.cold_starts == serial_summary.cold_starts
        assert parallel_summary.failures == serial_summary.failures
        assert parallel_summary.total_cost_usd == serial_summary.total_cost_usd
        serial_dist = serial_summary.client_time
        parallel_dist = parallel_summary.client_time
        assert parallel_dist.count == serial_dist.count
        assert parallel_dist.mean == serial_dist.mean
        assert parallel_dist.median == serial_dist.median
        assert parallel_dist.percentiles == serial_dist.percentiles


# --------------------------------------------------------------------- spec
class TestPopulationSpec:
    def test_validation_rejects_bad_envelopes(self):
        with pytest.raises(ConfigurationError):
            PopulationSpec(n_functions=0, duration_s=60.0, aggregate_rate_per_s=1.0)
        with pytest.raises(ConfigurationError):
            PopulationSpec(n_functions=10, duration_s=0.0, aggregate_rate_per_s=1.0)
        with pytest.raises(ConfigurationError):
            PopulationSpec(n_functions=10, duration_s=60.0, aggregate_rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                n_functions=10, duration_s=60.0, aggregate_rate_per_s=1.0, n_tenants=0
            )
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                n_functions=10, duration_s=60.0, aggregate_rate_per_s=1.0,
                diurnal_amplitude=1.5,
            )
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                n_functions=10, duration_s=60.0, aggregate_rate_per_s=1.0,
                burst_multiplier=0.5,
            )
        with pytest.raises(ConfigurationError):
            PopulationSpec(
                n_functions=10, duration_s=60.0, aggregate_rate_per_s=1.0, profiles=()
            )

    def test_expected_counts_are_zipf_and_sum_to_rate_times_duration(self):
        counts = SMALL.expected_counts()
        assert counts.shape == (SMALL.n_functions,)
        assert np.all(np.diff(counts) < 0)  # strictly decreasing popularity
        assert counts.sum() == pytest.approx(
            SMALL.aggregate_rate_per_s * SMALL.duration_s
        )

    def test_recipes_are_deterministic_and_profile_consistent(self):
        for index in (0, 7, 119):
            first = SMALL.recipe(index, seed=42)
            again = SMALL.recipe(index, seed=42)
            assert first == again
            assert first.function_name == f"small-pop-{index:07d}"
            assert first.profile in SEBS_PROFILES
            assert first.memory_mb in first.profile.memory_mb_choices
            low, high = first.profile.payload_bytes_range
            assert low <= first.payload_bytes <= high
            assert first.trigger is first.profile.trigger

    def test_arrivals_are_pure_functions_of_spec_seed_index(self):
        first = SMALL.arrivals(3, seed=42)
        again = SMALL.arrivals(3, seed=42)
        np.testing.assert_array_equal(first, again)
        assert np.all(np.diff(first) >= 0)
        assert first.size == 0 or (first[0] >= 0.0 and first[-1] < SMALL.duration_s)
        # A different seed re-derives a different stream.
        other = SMALL.arrivals(3, seed=43)
        assert first.shape != other.shape or not np.array_equal(first, other)

    def test_arrival_process_is_pinned_to_population_horizon(self):
        traffic = SMALL.traffic(0, seed=42)
        rng = np.random.default_rng(0)
        pinned = traffic.process.generate(SMALL.duration_s, rng)
        np.testing.assert_array_equal(pinned, SMALL.arrivals(0, seed=42))
        with pytest.raises(ConfigurationError):
            traffic.process.generate(SMALL.duration_s + 1.0, rng)


# ------------------------------------------------------------------ planner
class TestPopulationPlanner:
    def test_plan_partitions_members_disjointly_and_deterministically(self):
        shards = ShardPlanner().plan_population(SMALL, seed=42, workers=4)
        again = ShardPlanner().plan_population(SMALL, seed=42, workers=4)
        assert len(shards) == 4
        seen = np.concatenate([shard.member_indices for shard in shards])
        assert sorted(seen.tolist()) == list(range(SMALL.n_functions))
        for shard, repeat in zip(shards, again):
            np.testing.assert_array_equal(shard.member_indices, repeat.member_indices)
            assert np.all(np.diff(shard.member_indices) > 0)  # sorted ascending
            assert shard.weight == pytest.approx(
                SMALL.expected_counts()[shard.member_indices].sum()
            )

    def test_plan_never_exceeds_workers_or_members(self):
        assert len(ShardPlanner().plan_population(SMALL, seed=1, workers=1)) == 1
        tiny = PopulationSpec(n_functions=3, duration_s=10.0, aggregate_rate_per_s=1.0)
        assert len(ShardPlanner().plan_population(tiny, seed=1, workers=8)) == 3
        with pytest.raises(ConfigurationError):
            ShardPlanner().plan_population(SMALL, seed=1, workers=0)


# ---------------------------------------------------------------- deployment
class TestMemoryResolution:
    def test_azure_collapses_to_dynamic(self):
        platform = _platform(Provider.AZURE)
        assert _resolve_memory(platform.limits, 1024) == DYNAMIC_MEMORY

    def test_gcp_rounds_up_to_discrete_size(self):
        limits = _platform(Provider.GCP).limits
        assert _resolve_memory(limits, 200) == 256
        assert _resolve_memory(limits, 256) == 256
        assert _resolve_memory(limits, 1536) == 2048
        assert _resolve_memory(limits, 99999) == max(
            size for size in limits.allowed_memory_mb if size != DYNAMIC_MEMORY
        )

    def test_aws_clamps_into_range(self):
        limits = _platform(Provider.AWS).limits
        assert _resolve_memory(limits, 64) == limits.memory_min_mb
        assert _resolve_memory(limits, 512) == 512
        assert _resolve_memory(limits, 10**6) == limits.memory_max_mb

    @pytest.mark.parametrize(
        "provider", (Provider.AWS, Provider.GCP, Provider.AZURE), ids=lambda p: p.value
    )
    def test_deploy_population_deploys_legal_configs(self, provider):
        platform = _platform(provider)
        deployed = deploy_population(platform, SMALL, range(10), seed=42)
        assert deployed == 10
        assert len(platform.functions()) == 10


# ------------------------------------------------------------------- replay
class TestPopulationReplay:
    def test_snapshot_refuses_deployed_or_kernel_platforms(self):
        platform = _platform()
        deploy_population(platform, SMALL, [0], seed=42)
        with pytest.raises(ConfigurationError):
            PopulationSnapshot.capture(platform)

    def test_shard_worker_refuses_record_mode(self):
        platform = _platform()
        snapshot = PopulationSnapshot.capture(platform)
        (shard,) = ShardPlanner().plan_population(SMALL, seed=42, workers=1)
        with pytest.raises(ConfigurationError):
            _replay_population_shard(snapshot, shard, keep_records=True)

    def test_sharded_replay_is_bit_identical_to_serial(self):
        serial = replay_population(_platform(), SMALL, workers=1)
        for workers in (2, 4):
            sharded = replay_population(_platform(), SMALL, workers=workers)
            _assert_streaming_equal(serial.result, sharded.result)
            assert sharded.top_tenants == serial.top_tenants
            assert sharded.functions_active == serial.functions_active

    def test_process_backend_matches_sequential(self):
        sequential = replay_population(_platform(), SMALL, workers=2, backend="sequential")
        process = replay_population(_platform(), SMALL, workers=2, backend="process")
        _assert_streaming_equal(sequential.result, process.result)
        assert process.top_tenants == sequential.top_tenants

    def test_columnar_replay_matches_scalar(self):
        scalar = replay_population(_platform(columnar=False), SMALL, workers=2)
        columnar = replay_population(_platform(columnar=True), SMALL, workers=2)
        _assert_streaming_equal(scalar.result, columnar.result)
        assert columnar.top_tenants == scalar.top_tenants

    def test_dedicated_path_equals_scenario_bridge(self):
        """The scale path replays exactly the scenario bridge's invocations."""
        dedicated = replay_population(_platform(), SMALL, workers=1)
        bridge_platform = _platform()
        deploy_population(
            bridge_platform, SMALL, range(SMALL.n_functions), seed=42
        )
        scenario = SMALL.scenario(seed=42)
        bridged = bridge_platform.run_workload(
            scenario.build_trace(0), keep_records=False
        )
        assert dedicated.invocations == bridged.invocations
        assert dedicated.total_cost_usd == bridged.total_cost_usd
        dedicated_fns = dedicated.result.per_function()
        bridged_fns = {
            fname: summary
            for fname, summary in bridged.per_function().items()
            if summary.invocations
        }
        assert set(dedicated_fns) == set(bridged_fns)
        for fname, summary in bridged_fns.items():
            assert dedicated_fns[fname].invocations == summary.invocations
            assert dedicated_fns[fname].total_cost_usd == summary.total_cost_usd

    def test_attribution_ranks_by_spend_and_conserves_totals(self):
        replay = replay_population(_platform(), SMALL, workers=1, top_tenants=5)
        spends = tenant_attribution(replay.result, SMALL, seed=42)
        costs = [spend.cost_usd for spend in spends]
        assert costs == sorted(costs, reverse=True)
        assert sum(spend.invocations for spend in spends) == replay.invocations
        assert sum(costs) == pytest.approx(replay.total_cost_usd)
        assert replay.top_tenants == tuple(spends[:5])

    def test_profile_and_summary_row(self):
        replay = replay_population(_platform(), SMALL, workers=2, profile=True)
        assert set(replay.result.profile.phases) >= {"plan", "shards", "merge"}
        row = replay.summary_row()
        assert row["population"] == "small-pop"
        assert row["functions_total"] == SMALL.n_functions
        assert row["functions_active"] == replay.functions_active


# ------------------------------------------------------------------- ingest
class TestTraceIngest:
    def test_fixture_round_trips_to_pinned_summary(self):
        population = TraceIngest.load(FIXTURE)
        assert summarize_population(population, seed=42) == {
            "name": "azure_trace_sample",
            "functions": 12,
            "tenants": 5,
            "duration_s": 1800.0,
            "expected_invocations": 2887.0,
            "hottest_function": "az-00000-7c57996e",
            "hottest_share": pytest.approx(0.4135781087634222),
        }
        assert population.counts.shape == (12, 30)
        assert population.tenant_names[0] == "app-bae34f3e7161"
        assert population.triggers[2] is TriggerType.TIMER
        assert population.triggers[4] is TriggerType.STORAGE

    def test_arrivals_reconstruct_exact_minute_counts(self):
        population = TraceIngest.load(FIXTURE)
        for index in range(population.n_functions):
            offsets = population.arrivals(index, seed=42)
            assert offsets.size == int(population.counts[index].sum())
            assert np.all(np.diff(offsets) >= 0)
            minutes = np.floor(offsets / 60.0).astype(int)
            per_minute = np.bincount(minutes, minlength=population.counts.shape[1])
            np.testing.assert_array_equal(per_minute, population.counts[index])

    def test_limit_slices_rows(self):
        population = TraceIngest.load(FIXTURE, limit=5)
        assert population.n_functions == 5

    def test_ingested_replay_sharded_equals_serial(self):
        population = TraceIngest.load(FIXTURE)
        serial = replay_population(_platform(), population, workers=1)
        sharded = replay_population(_platform(), population, workers=3)
        _assert_streaming_equal(serial.result, sharded.result)
        assert sharded.top_tenants == serial.top_tenants
        assert serial.invocations == 2887

    def test_malformed_traces_raise_configuration_errors(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            TraceIngest.load(empty)
        missing = tmp_path / "missing.csv"
        missing.write_text("HashOwner,HashApp,1,2\n")
        with pytest.raises(ConfigurationError, match="HashFunction"):
            TraceIngest.load(missing)
        no_minutes = tmp_path / "nominutes.csv"
        no_minutes.write_text("HashOwner,HashApp,HashFunction,Trigger\n")
        with pytest.raises(ConfigurationError, match="minute"):
            TraceIngest.load(no_minutes)
        bad_count = tmp_path / "bad.csv"
        bad_count.write_text("HashOwner,HashApp,HashFunction,1\no,a,f,oops\n")
        with pytest.raises(ConfigurationError, match="non-numeric"):
            TraceIngest.load(bad_count)
        no_rows = tmp_path / "norows.csv"
        no_rows.write_text("HashOwner,HashApp,HashFunction,1\n")
        with pytest.raises(ConfigurationError, match="no data rows"):
            TraceIngest.load(no_rows)


# ----------------------------------------------------------------- profiles
class TestProfiles:
    def test_catalog_profiles_are_valid(self):
        for profile in SEBS_PROFILES:
            assert profile.memory_mb_choices
            low, high = profile.payload_bytes_range
            assert 0 < low <= high
            assert profile.timeout_s > 0
            assert profile.mix_weight > 0

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            AppProfile(
                name="bad", benchmark="dynamic-html", memory_mb_choices=(),
                payload_bytes_range=(1, 2),
            )
        with pytest.raises(ConfigurationError):
            AppProfile(
                name="bad", benchmark="dynamic-html", memory_mb_choices=(128,),
                payload_bytes_range=(10, 2),
            )
