"""Docstring-coverage gate for the public configuration surface.

Mirrors the ruff pydocstyle scope in ``ruff.toml`` (D1 rules on
``src/repro/config.py`` + the population package, dunders exempt) so the
contract is enforced by the tier-1 suite even in environments where ruff
is not installed.  These docstrings are the API reference the docs book
links into — a missing one is breakage, not style.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GATED_FILES = [
    REPO_ROOT / "src" / "repro" / "config.py",
    *sorted((REPO_ROOT / "src" / "repro" / "population").glob("*.py")),
]


def _missing_docstrings(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if not ast.get_docstring(tree):
        missing.append("module docstring")
    for node in ast.walk(tree):
        if not isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):  # private helpers and dunders exempt
            continue
        if not ast.get_docstring(node):
            missing.append(f"line {node.lineno}: {node.name}")
    return missing


def test_gated_files_exist() -> None:
    """The gate must cover config.py and a non-empty population package."""
    assert any(path.name == "config.py" for path in GATED_FILES)
    assert sum(path.parent.name == "population" for path in GATED_FILES) >= 4


@pytest.mark.parametrize("path", GATED_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_public_api_is_documented(path: Path) -> None:
    """Every public module/class/function in the gated files has a docstring."""
    missing = _missing_docstrings(path)
    assert not missing, f"{path.relative_to(REPO_ROOT)} missing docstrings: {missing}"
