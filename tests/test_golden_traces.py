"""Golden-trace regression gate: replay summaries must not drift.

Two canned traces under ``tests/golden/`` have their exact (full float
precision) streaming replay summaries checked in.  Any behavioural change
to the simulator — RNG derivation, scheduler order, billing arithmetic,
float reduction order — fails here; if the change is intentional, run
``make regen-golden`` and commit the regenerated fixtures alongside it.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.workload import WorkloadTrace

_GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _load_builder():
    spec = importlib.util.spec_from_file_location("golden_builder", _GOLDEN_DIR / "builder.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("golden_builder", module)
    spec.loader.exec_module(module)
    return module


builder = _load_builder()


@pytest.mark.parametrize("name", sorted(builder.TRACES))
def test_golden_trace_summary_has_not_drifted(name):
    trace_file = builder.trace_path(name)
    expected_file = builder.expected_path(name)
    assert trace_file.exists() and expected_file.exists(), (
        f"golden fixtures for {name!r} missing — run `make regen-golden`"
    )
    trace = WorkloadTrace.from_json(trace_file)
    actual = builder.summarize_trace(trace)
    expected = json.loads(expected_file.read_text(encoding="utf-8"))
    assert actual == expected, (
        f"golden trace {name!r} drifted; if intentional, run `make regen-golden` "
        "and commit the regenerated fixtures"
    )


@pytest.mark.parametrize("name", sorted(builder.TRACES))
def test_golden_trace_matches_its_recipe(name):
    """The checked-in trace file equals its synthesis recipe (no bit rot)."""
    recipe = builder.TRACES[name]().materialize()
    stored = WorkloadTrace.from_json(builder.trace_path(name))
    assert list(stored) == list(recipe)


def test_golden_storm_summary_has_not_drifted():
    """The metastable-failure scenario (outage + naive retry storm) is
    pinned at full float precision — fault handling, stale-resubmission
    sagas and their cost folding cannot change silently."""
    trace_file = builder.trace_path(builder.STORM_NAME)
    expected_file = builder.expected_path(builder.STORM_NAME)
    assert trace_file.exists() and expected_file.exists(), (
        "golden storm fixtures missing — run `make regen-golden`"
    )
    trace = WorkloadTrace.from_json(trace_file)
    actual = builder.summarize_storm(trace)
    expected = json.loads(expected_file.read_text(encoding="utf-8"))
    assert actual == expected, (
        "golden storm scenario drifted; if intentional, run `make regen-golden` "
        "and commit the regenerated fixtures"
    )
    # Sanity of the pinned scenario itself: the outage faults or sheds work
    # and the post-outage retry herd produces stale failures somewhere.
    for summary in actual["providers"].values():
        assert summary["retries"] > 0
        assert summary["throttled"] + summary["faulted"] + summary["failures"] > 0


def test_golden_storm_timeseries_has_not_drifted():
    """The storm scenario's windowed time series is pinned exactly: window
    fold order, mergeable-reservoir percentile state and the prefix-summed
    in-flight/warm-pool levels cannot change silently."""
    expected_file = builder.expected_path(builder.STORM_TIMESERIES_NAME)
    assert expected_file.exists(), (
        "golden storm time-series fixture missing — run `make regen-golden`"
    )
    trace = WorkloadTrace.from_json(builder.trace_path(builder.STORM_NAME))
    actual = builder.summarize_storm_timeseries(trace)
    expected = json.loads(expected_file.read_text(encoding="utf-8"))
    assert actual == expected, (
        "golden storm time series drifted; if intentional, run `make regen-golden` "
        "and commit the regenerated fixtures"
    )
    # The scenario exercises the interesting columns: the outage window
    # registers faults/sheds and some window carries a latency percentile.
    for series in actual["providers"].values():
        rows = series["rows"]
        assert any(
            row["throttled"] + row["faulted"] + row["dropped"] > 0 for row in rows
        )
        assert any(row["p95_client_s"] is not None for row in rows)


def test_golden_storm_trace_matches_its_recipe():
    recipe = builder.storm_trace()
    stored = WorkloadTrace.from_json(builder.trace_path(builder.STORM_NAME))
    assert list(stored) == list(recipe)


def test_golden_mixed_columnar_matches_scalar_fixture():
    """The columnar hot path reproduces the mixed golden byte-identically —
    against the *same* expected file the scalar path is pinned to (the
    columnar mode may never need fixtures of its own)."""
    trace = WorkloadTrace.from_json(builder.trace_path("mixed"))
    actual = builder.summarize_trace(trace, columnar=True)
    expected = json.loads(builder.expected_path("mixed").read_text(encoding="utf-8"))
    assert actual == expected, (
        "columnar replay of the mixed golden diverged from the scalar fixture"
    )


def test_golden_storm_columnar_matches_scalar_fixture():
    """The storm golden runs the controlled overload/fault/resilience loop;
    under ``columnar=True`` it must still match the scalar fixture exactly
    (the pre-drawn blocks feed the scalar loop through the stream shims)."""
    trace = WorkloadTrace.from_json(builder.trace_path(builder.STORM_NAME))
    actual = builder.summarize_storm(trace, columnar=True)
    expected = json.loads(
        builder.expected_path(builder.STORM_NAME).read_text(encoding="utf-8")
    )
    assert actual == expected, (
        "columnar replay of the storm golden diverged from the scalar fixture"
    )
