"""Shared fixtures for the SeBS-reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.base import BenchmarkContext
from repro.benchmarks.registry import fresh_registry
from repro.config import ExperimentConfig, Provider, SimulationConfig
from repro.simulator.providers import create_platform
from repro.storage.object_store import ObjectStore


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def store() -> ObjectStore:
    return ObjectStore()


@pytest.fixture
def context(store, rng) -> BenchmarkContext:
    return BenchmarkContext(storage=store, rng=rng)


@pytest.fixture
def registry():
    return fresh_registry()


@pytest.fixture
def simulation() -> SimulationConfig:
    return SimulationConfig(seed=99)


@pytest.fixture
def quick_config() -> ExperimentConfig:
    """A small experiment configuration keeping tests fast."""
    return ExperimentConfig(samples=10, batch_size=5, seed=99)


@pytest.fixture
def aws(simulation):
    return create_platform(Provider.AWS, simulation=simulation)


@pytest.fixture
def gcp(simulation):
    return create_platform(Provider.GCP, simulation=simulation)


@pytest.fixture
def azure(simulation):
    return create_platform(Provider.AZURE, simulation=simulation)
