"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.multimedia.imaging import Image
from repro.benchmarks.multimedia.video_processing import run_length_encode
from repro.benchmarks.scientific.algorithms import breadth_first_search, minimum_spanning_tree, pagerank
from repro.benchmarks.scientific.graph_generation import Graph
from repro.benchmarks.utilities.data_vis import squiggle_transform
from repro.benchmarks.webapps.uploader import synthesize_download
from repro.config import Provider
from repro.faas.billing import billing_model_for
from repro.models.eviction import optimal_initial_batch, predict_warm_containers
from repro.stats.confidence import nonparametric_ci
from repro.stats.summary import summarize
from repro.storage.object_store import ObjectStore
from repro.utils.rng import derive_seed
from repro.utils.units import round_up

# ----------------------------------------------------------------- strategies

edge_lists = st.integers(min_value=2, max_value=30).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            max_size=80,
        ),
    )
)


def build_graph(data) -> Graph:
    n, edges = data
    cleaned = [(u, v, w) for u, v, w in edges if u != v]
    return Graph.from_edges(n, cleaned)


# --------------------------------------------------------------------- stats


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_ci_always_brackets_median_and_stays_in_range(self, samples):
        interval = nonparametric_ci(samples, 0.95)
        assert min(samples) <= interval.low <= interval.median <= interval.high <= max(samples)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_summary_orderings(self, samples):
        summary = summarize(samples)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.whisker_low <= summary.whisker_high <= summary.maximum

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    def test_round_up_properties(self, value, granularity):
        rounded = round_up(value, granularity)
        assert rounded >= value - 1e-9
        assert rounded - value < granularity + 1e-6
        quotient = rounded / granularity
        assert abs(quotient - round(quotient)) < 1e-6

    @given(st.integers(min_value=0, max_value=2**31), st.lists(st.text(max_size=10), max_size=4))
    def test_derive_seed_stable_and_in_range(self, seed, names):
        first = derive_seed(seed, *names)
        second = derive_seed(seed, *names)
        assert first == second
        assert 0 <= first < 2**64


# --------------------------------------------------------------------- graphs


class TestGraphProperties:
    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_bfs_distances_are_consistent(self, data):
        graph = build_graph(data)
        result = breadth_first_search(graph, 0)
        assert result.distances[0] == 0
        for u, v, _ in graph.edges():
            du, dv = result.distances[u], result.distances[v]
            if du >= 0 and dv >= 0:
                # Neighbouring reachable vertices differ by at most one level.
                assert abs(du - dv) <= 1
            else:
                # A reachable vertex can never neighbour an unreachable one.
                assert du < 0 and dv < 0

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_pagerank_is_a_probability_distribution(self, data):
        graph = build_graph(data)
        ranks, _ = pagerank(graph)
        assert ranks.min() >= 0
        assert ranks.sum() == pytest.approx(1.0, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_mst_has_correct_edge_count_and_no_heavier_weight_than_total(self, data):
        graph = build_graph(data)
        result = minimum_spanning_tree(graph)
        bfs_components = 0
        visited = [False] * graph.num_vertices
        for vertex in range(graph.num_vertices):
            if not visited[vertex]:
                bfs_components += 1
                for node, distance in enumerate(breadth_first_search(graph, vertex).distances):
                    if distance >= 0:
                        visited[node] = True
        assert len(result.edges) == graph.num_vertices - bfs_components
        assert result.num_components == bfs_components
        assert result.total_weight <= sum(w for _, _, w in graph.edges()) + 1e-9


# ------------------------------------------------------------------- kernels


class TestKernelProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=300))
    def test_squiggle_output_length_and_bounds(self, sequence):
        xs, ys = squiggle_transform(sequence)
        assert len(xs) == len(ys) == 2 * len(sequence) + 1
        assert xs[-1] == pytest.approx(len(sequence))
        # The trace can never move further than one unit per base.
        assert np.all(np.abs(np.diff(ys)) <= 1.0 + 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=500))
    def test_run_length_encoding_never_expands_beyond_two_bytes_per_symbol(self, data):
        values = np.frombuffer(data, dtype=np.uint8)
        encoded = run_length_encode(values)
        assert len(encoded) <= 2 * max(1, len(values))
        assert len(encoded) % 2 == 0

    @settings(max_examples=20, deadline=None)
    @given(st.text(min_size=1, max_size=50), st.integers(min_value=0, max_value=5000))
    def test_synthesize_download_length_and_determinism(self, url, size):
        data = synthesize_download(url, size)
        assert len(data) == size
        assert data == synthesize_download(url, size)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**31))
    def test_image_serialisation_round_trip(self, width, height, seed):
        image = Image.generate(width, height, np.random.default_rng(seed))
        restored = Image.from_bytes(image.to_bytes())
        assert np.array_equal(image.pixels, restored.pixels)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=4, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    def test_resize_produces_requested_dimensions(self, width, height, new_width, new_height):
        image = Image.generate(width, height, np.random.default_rng(0))
        resized = image.resize(new_width, new_height)
        assert (resized.width, resized.height) == (new_width, new_height)


# ------------------------------------------------------------------- storage


class TestStorageProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=20), st.binary(max_size=200), max_size=20))
    def test_object_store_round_trips_all_objects(self, objects):
        store = ObjectStore()
        store.create_bucket("bucket")
        for key, data in objects.items():
            store.upload("bucket", key, data)
        for key, data in objects.items():
            assert store.download("bucket", key) == data
        assert set(store.list_objects("bucket")) == set(objects)
        assert store.metering.bytes_written == sum(len(v) for v in objects.values())


# ------------------------------------------------------------------- billing


class TestBillingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.sampled_from([Provider.AWS, Provider.GCP, Provider.AZURE]),
        st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
        st.sampled_from([128, 256, 512, 1024, 2048]),
        st.floats(min_value=1.0, max_value=2048.0, allow_nan=False),
        st.integers(min_value=0, max_value=6 * 1024 * 1024),
    )
    def test_costs_are_nonnegative_and_monotone_in_duration(self, provider, duration, memory, used, output):
        billing = billing_model_for(provider)
        cost = billing.invocation_cost(duration, memory, used, output_bytes=output)
        assert cost.total >= 0
        longer = billing.invocation_cost(duration + 10.0, memory, used, output_bytes=output)
        assert longer.compute_cost >= cost.compute_cost

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=900.0, allow_nan=False))
    def test_billed_duration_at_least_actual(self, duration):
        for provider in (Provider.AWS, Provider.GCP, Provider.AZURE):
            billed = billing_model_for(provider).billed_duration(duration)
            assert billed >= duration - 1e-9


# ----------------------------------------------------------- eviction model


class TestEvictionModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=1000), st.floats(min_value=0.0, max_value=10000.0, allow_nan=False))
    def test_prediction_monotone_in_time_and_bounded(self, d_init, elapsed):
        now = predict_warm_containers(d_init, elapsed)
        later = predict_warm_containers(d_init, elapsed + 380.0)
        assert 0 <= later <= now <= d_init

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=10000), st.floats(min_value=0.01, max_value=600.0, allow_nan=False))
    def test_optimal_batch_is_positive_and_scales(self, instances, runtime):
        batch = optimal_initial_batch(instances, runtime)
        assert batch >= 1
        assert batch >= math.floor(instances * runtime / 380.0)
