"""Tests of the workflow orchestration subsystem (repro.workflows)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import ExperimentConfig, Provider, SimulationConfig, StartType, TriggerType
from repro.exceptions import ConfigurationError, FunctionNotFoundError
from repro.experiments.base import deploy_benchmark
from repro.experiments.workflow_replay import WorkflowReplayExperiment
from repro.faas.invocation import InvocationRequest
from repro.simulator.providers import create_platform
from repro.workload import (
    ConstantRateArrivals,
    FunctionTraffic,
    MergedWorkloadTrace,
    PoissonArrivals,
    Scenario,
    WorkflowTraffic,
    WorkloadTrace,
)
from repro.workflows import (
    STANDARD_WORKFLOWS,
    TriggerEdgeModel,
    WorkflowArrival,
    WorkflowSpec,
    WorkflowStage,
    merge_workflow_arrivals,
    standard_workflow,
    synthesize_workflow_arrivals,
)


def _platform(seed: int = 11, provider: Provider = Provider.AWS):
    platform = create_platform(provider, SimulationConfig(seed=seed))
    deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name="web")
    deploy_benchmark(platform, "thumbnailer", memory_mb=1024, function_name="thumb")
    deploy_benchmark(platform, "uploader", memory_mb=512, function_name="up")
    return platform


def _signatures(records):
    """Per-record signatures with container ids canonicalised per run."""
    canonical: dict[str, int] = {}
    signatures = []
    for record in records:
        container = canonical.setdefault(record.container_id, len(canonical))
        signatures.append(
            (
                record.function_name,
                record.submitted_at,
                record.started_at,
                record.finished_at,
                record.start_type,
                record.cost.total,
                container,
            )
        )
    return signatures


# ------------------------------------------------------------------ spec layer
class TestWorkflowSpec:
    def test_validation_rejects_malformed_dags(self):
        with pytest.raises(ConfigurationError):
            WorkflowSpec("empty", ())
        with pytest.raises(ConfigurationError):
            WorkflowSpec("dup", (WorkflowStage("a", "f"), WorkflowStage("a", "g")))
        with pytest.raises(ConfigurationError):
            WorkflowSpec("unknown", (WorkflowStage("a", "f", after=("ghost",)),))
        with pytest.raises(ConfigurationError):
            WorkflowSpec("self", (WorkflowStage("a", "f", after=("a",)),))
        with pytest.raises(ConfigurationError):  # two-node cycle (also: no root)
            WorkflowSpec(
                "cycle",
                (WorkflowStage("a", "f", after=("b",)), WorkflowStage("b", "g", after=("a",))),
            )
        with pytest.raises(ConfigurationError):  # TIMER only fires roots
            WorkflowSpec(
                "timer-edge",
                (
                    WorkflowStage("a", "f"),
                    WorkflowStage("b", "g", after=("a",), trigger=TriggerType.TIMER),
                ),
            )

    def test_trigger_defaults(self):
        spec = WorkflowSpec(
            "defaults", (WorkflowStage("root", "f"), WorkflowStage("next", "g", after=("root",)))
        )
        assert spec.stage("root").resolved_trigger() is TriggerType.HTTP
        assert spec.stage("next").resolved_trigger() is TriggerType.QUEUE

    def test_topology_accessors(self):
        spec = WorkflowSpec(
            "diamond",
            (
                WorkflowStage("d", "f", after=("b", "c")),
                WorkflowStage("b", "f", after=("a",)),
                WorkflowStage("c", "f", after=("a",)),
                WorkflowStage("a", "f"),
            ),
        )
        assert spec.roots() == ("a",)
        assert spec.terminals() == ("d",)
        assert spec.downstream("a") == ("b", "c")
        assert spec.stage_names()[0] == "a" and spec.stage_names()[-1] == "d"
        assert spec.functions() == ["f"]

    def test_cardinality_and_guard(self):
        stage = WorkflowStage("m", "f", map_items="items")
        assert stage.cardinality({"items": [1, 2, 3]}) == 3
        assert stage.cardinality({"items": 5}) == 5
        assert stage.cardinality({}) == 1
        assert WorkflowStage("m", "f", map_items=4).cardinality({}) == 4
        with pytest.raises(ConfigurationError):
            stage.cardinality({"items": "lots"})
        guarded = WorkflowStage("g", "f", run_if=("route", "fast"))
        assert guarded.should_run({"route": "fast"})
        assert not guarded.should_run({"route": "slow"})
        assert not guarded.should_run({})

    def test_synthesize_and_merge_arrivals(self):
        spec = WorkflowSpec("one", (WorkflowStage("a", "f"),))
        first = synthesize_workflow_arrivals(spec, PoissonArrivals(2.0), 50.0, rng=3)
        second = synthesize_workflow_arrivals(spec, PoissonArrivals(2.0), 50.0, rng=3)
        assert [a.submitted_at for a in first] == [a.submitted_at for a in second]
        other = synthesize_workflow_arrivals(spec, ConstantRateArrivals(1.0), 50.0, rng=0)
        merged = merge_workflow_arrivals(first, other)
        times = [arrival.submitted_at for arrival in merged]
        assert times == sorted(times)
        assert len(merged) == len(first) + len(other)


# ---------------------------------------------------------------- edge latency
class TestTriggerEdges:
    def test_edge_delays_are_deterministic_per_identity(self):
        platform = _platform(seed=3)
        model_a = TriggerEdgeModel(platform)
        model_b = TriggerEdgeModel(platform)
        args = ("wf#0", "down", "up", 128, 1024)
        for trigger in (TriggerType.QUEUE, TriggerType.STORAGE):
            assert model_a.delay(trigger, *args) == model_b.delay(trigger, *args)
        # Different edges and executions draw different delays.
        assert model_a.delay(TriggerType.QUEUE, "wf#0", "down", "up", 128, 1024) != model_a.delay(
            TriggerType.QUEUE, "wf#1", "down", "up", 128, 1024
        )
        assert model_a.delay(TriggerType.QUEUE, "wf#0", "down", "up", 128, 1024) != model_a.delay(
            TriggerType.QUEUE, "wf#0", "other", "up", 128, 1024
        )

    def test_synchronous_edges_are_free_and_async_edges_are_not(self):
        model = TriggerEdgeModel(_platform(seed=3))
        assert model.delay(TriggerType.HTTP, "wf#0", "d", "u", 64, 512) == 0.0
        assert model.delay(TriggerType.SDK, "wf#0", "d", "u", 64, 512) == 0.0
        assert model.delay(TriggerType.QUEUE, "wf#0", "d", "u", 64, 512) > 0.0
        assert model.delay(TriggerType.STORAGE, "wf#0", "d", "u", 64, 512) > 0.0

    def test_storage_events_slower_than_queue_hops(self):
        model = TriggerEdgeModel(_platform(seed=3))
        queue = [
            model.delay(TriggerType.QUEUE, f"wf#{i}", "d", "u", 256, 1024) for i in range(50)
        ]
        storage = [
            model.delay(TriggerType.STORAGE, f"wf#{i}", "d", "u", 256, 1024) for i in range(50)
        ]
        assert sum(storage) / len(storage) > sum(queue) / len(queue)


# -------------------------------------------------------------- engine replay
class TestWorkflowEngine:
    def test_chain_respects_completion_plus_edge_delay(self):
        platform = _platform()
        spec = WorkflowSpec(
            "chain",
            (
                WorkflowStage("first", "web"),
                WorkflowStage("second", "thumb", after=("first",), trigger=TriggerType.QUEUE),
            ),
        )
        records = []
        result = platform.run_workflows(
            [WorkflowArrival(spec, 0.0)], record_sink=records.append
        )
        assert len(records) == 2
        first, second = records
        # The queue edge delays the downstream invocation past the upstream
        # completion — never before it, never simultaneous.
        assert second.submitted_at > first.finished_at
        execution = result.executions[0]
        assert execution.critical_path == ("first", "second")
        assert execution.trigger_propagation_s == pytest.approx(
            second.submitted_at - first.finished_at
        )

    def test_synchronous_chain_starts_at_upstream_completion(self):
        platform = _platform()
        spec = WorkflowSpec(
            "sync-chain",
            (
                WorkflowStage("first", "web"),
                WorkflowStage("second", "thumb", after=("first",), trigger=TriggerType.HTTP),
            ),
        )
        records = []
        platform.run_workflows([WorkflowArrival(spec, 0.0)], record_sink=records.append)
        assert records[1].submitted_at == pytest.approx(records[0].finished_at)

    def test_fan_in_waits_for_slowest_upstream(self):
        platform = _platform()
        spec = WorkflowSpec(
            "diamond",
            (
                WorkflowStage("src", "web"),
                WorkflowStage("fast", "web", after=("src",), trigger=TriggerType.QUEUE),
                WorkflowStage("slow", "thumb", after=("src",), trigger=TriggerType.QUEUE),
                WorkflowStage("join", "up", after=("fast", "slow"), trigger=TriggerType.QUEUE),
            ),
        )
        records = []
        result = platform.run_workflows(
            [WorkflowArrival(spec, 0.0)], record_sink=records.append
        )
        by_stage = {
            "src": records[0],
            "fast": next(r for r in records[1:] if r.function_name == "web"),
            "slow": next(r for r in records if r.function_name == "thumb"),
            "join": next(r for r in records if r.function_name == "up"),
        }
        assert by_stage["join"].submitted_at > max(
            by_stage["fast"].finished_at, by_stage["slow"].finished_at
        )
        # The critical path runs through whichever branch finished last.
        execution = result.executions[0]
        slowest = max(("fast", "slow"), key=lambda name: by_stage[name].finished_at)
        assert execution.critical_path == ("src", slowest, "join")

    def test_dynamic_map_spawns_one_task_per_item(self):
        platform = _platform()
        spec = WorkflowSpec(
            "mapper",
            (
                WorkflowStage("split", "web"),
                WorkflowStage(
                    "work", "thumb", after=("split",), map_items="items", trigger=TriggerType.QUEUE
                ),
                WorkflowStage("join", "up", after=("work",), trigger=TriggerType.QUEUE),
            ),
        )
        records = []
        result = platform.run_workflows(
            [WorkflowArrival(spec, 0.0, payload={"items": ["x", "y", "z"]})],
            record_sink=records.append,
        )
        execution = result.executions[0]
        assert execution.invocations == 5  # split + 3 map tasks + join
        map_records = [r for r in records if r.function_name == "thumb"]
        assert len(map_records) == 3
        # All tasks start together; the join waits for the slowest task.
        assert len({r.submitted_at for r in map_records}) == 1
        join = next(r for r in records if r.function_name == "up")
        assert join.submitted_at > max(r.finished_at for r in map_records)

    def test_map_cardinality_reads_the_stage_payload_override(self):
        """A map keyed on data in the stage's own payload override fans out."""
        platform = _platform()
        spec = WorkflowSpec(
            "override-map",
            (
                WorkflowStage("split", "web"),
                WorkflowStage(
                    "work",
                    "thumb",
                    after=("split",),
                    payload={"items": ["a", "b", "c", "d"]},
                    map_items="items",
                ),
            ),
        )
        result = platform.run_workflows([WorkflowArrival(spec, 0.0, payload={})])
        assert result.executions[0].invocations == 5  # split + 4 map tasks

    def test_conditional_branch_routes_and_skips(self):
        platform = _platform()
        spec = WorkflowSpec(
            "router",
            (
                WorkflowStage("classify", "web"),
                WorkflowStage(
                    "small", "thumb", after=("classify",), run_if=("size", "small")
                ),
                WorkflowStage(
                    "large", "up", after=("classify",), run_if=("size", "large")
                ),
                WorkflowStage("store", "up", after=("small", "large")),
            ),
        )
        records = []
        result = platform.run_workflows(
            [
                WorkflowArrival(spec, 0.0, payload={"size": "small"}),
                WorkflowArrival(spec, 30.0, payload={"size": "large"}),
            ],
            record_sink=records.append,
        )
        first, second = result.executions
        assert first.invocations == 3 and first.skipped_stages == 1
        assert "small" in first.critical_path and "large" not in first.critical_path
        assert second.invocations == 3 and second.skipped_stages == 1
        assert "large" in second.critical_path and "small" not in second.critical_path
        assert [r.function_name for r in records if r.function_name == "thumb"] == ["thumb"]

    def test_fully_skipped_execution_completes_without_invocations(self):
        platform = _platform()
        spec = WorkflowSpec(
            "ghost",
            (
                WorkflowStage("only", "web", run_if=("enabled", True)),
            ),
        )
        result = platform.run_workflows([WorkflowArrival(spec, 1.0, payload={})])
        execution = result.executions[0]
        assert execution.invocations == 0
        assert execution.skipped_stages == 1
        assert execution.end_to_end_s == 0.0

    def test_timer_root_charges_firing_jitter_as_trigger_time(self):
        platform = _platform()
        spec = WorkflowSpec(
            "cron", (WorkflowStage("tick", "web", trigger=TriggerType.TIMER),)
        )
        records = []
        result = platform.run_workflows(
            [WorkflowArrival(spec, 5.0)], record_sink=records.append
        )
        execution = result.executions[0]
        assert execution.trigger_propagation_s > 0
        assert records[0].submitted_at == pytest.approx(5.0 + execution.trigger_propagation_s)

    def test_critical_path_components_sum_to_end_to_end(self):
        spec, functions = standard_workflow("fanout", fan_out=5)
        platform = create_platform(Provider.AWS, SimulationConfig(seed=23))
        for function in functions:
            deploy_benchmark(
                platform,
                function.benchmark,
                memory_mb=function.memory_mb,
                function_name=function.function_name,
            )
        arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(1.0), 120.0, rng=2)
        result = platform.run_workflows(arrivals)
        assert result.executions
        for execution in result.executions:
            total = execution.compute_s + execution.cold_start_s + execution.trigger_propagation_s
            assert total == pytest.approx(execution.end_to_end_s, rel=1e-9, abs=1e-12)

    def test_costs_aggregate_constituent_invocations(self):
        platform = _platform()
        spec = WorkflowSpec(
            "billed",
            (
                WorkflowStage("a", "web"),
                WorkflowStage("b", "thumb", after=("a",)),
            ),
        )
        records = []
        result = platform.run_workflows(
            [WorkflowArrival(spec, 0.0)], record_sink=records.append
        )
        execution = result.executions[0]
        assert execution.cost_usd == pytest.approx(sum(r.cost.total for r in records))
        assert execution.cold_starts == sum(
            1 for r in records if r.start_type is StartType.COLD
        )

    def test_unknown_function_fails_before_simulation(self):
        platform = _platform()
        spec = WorkflowSpec("missing", (WorkflowStage("a", "nope"),))
        with pytest.raises(FunctionNotFoundError):
            platform.run_workflows([WorkflowArrival(spec, 0.0)])

    def test_unsorted_arrivals_rejected(self):
        platform = _platform()
        spec = WorkflowSpec("sorted", (WorkflowStage("a", "web"),))
        arrivals = [WorkflowArrival(spec, 10.0), WorkflowArrival(spec, 1.0)]
        with pytest.raises(ConfigurationError):
            platform.run_workflows(arrivals)

    def test_replay_is_deterministic(self):
        def run():
            platform = _platform(seed=31)
            spec = WorkflowSpec(
                "det",
                (
                    WorkflowStage("a", "web"),
                    WorkflowStage("b", "thumb", after=("a",), trigger=TriggerType.STORAGE),
                    WorkflowStage("c", "up", after=("a", "b"), trigger=TriggerType.QUEUE),
                ),
            )
            arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(0.5), 80.0, rng=6)
            records = []
            result = platform.run_workflows(arrivals, record_sink=records.append)
            return [e.to_row() for e in result.executions], _signatures(records)

        rows_a, signatures_a = run()
        rows_b, signatures_b = run()
        assert rows_a == rows_b
        assert signatures_a == signatures_b

    def test_streaming_mode_matches_exact_aggregates(self):
        spec = WorkflowSpec(
            "agg",
            (
                WorkflowStage("a", "web"),
                WorkflowStage("b", "thumb", after=("a",)),
            ),
        )
        arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(1.0), 90.0, rng=8)
        exact = _platform(seed=13).run_workflows(arrivals, keep_records=True)
        streamed = _platform(seed=13).run_workflows(arrivals, keep_records=False)
        assert streamed.executions == []
        assert streamed.execution_count == exact.execution_count == len(arrivals)
        assert streamed.invocation_total == exact.invocation_total
        assert streamed.cold_start_total == exact.cold_start_total
        assert streamed.cost_usd_total == pytest.approx(exact.cost_usd_total)
        assert streamed.end_to_end_s_total == pytest.approx(exact.end_to_end_s_total)
        assert streamed.summaries.keys() == exact.summaries.keys()
        assert streamed.summaries["agg"].invocations == exact.summaries["agg"].invocations


# ------------------------------------------------- property-based invariants
class TestWorkflowProperties:
    DIAMOND_STAGES = (
        WorkflowStage("src", "web"),
        WorkflowStage("left", "thumb", after=("src",), trigger=TriggerType.QUEUE),
        WorkflowStage("right", "up", after=("src",), trigger=TriggerType.STORAGE),
        WorkflowStage("sink", "web", after=("left", "right"), trigger=TriggerType.QUEUE),
    )

    @settings(max_examples=8, deadline=None)
    @given(order=st.permutations(range(4)))
    def test_declaration_order_invariance(self, order):
        """Topologically equivalent specs replay bit-identically."""
        spec = WorkflowSpec("perm", tuple(self.DIAMOND_STAGES[i] for i in order))
        platform = _platform(seed=17)
        arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(0.8), 30.0, rng=5)
        records = []
        result = platform.run_workflows(arrivals, record_sink=records.append)
        rows = [e.to_row() for e in result.executions]
        signatures = _signatures(records)
        baseline_rows, baseline_signatures = self._baseline()
        assert rows == baseline_rows
        assert signatures == baseline_signatures

    _cached_baseline = None

    @classmethod
    def _baseline(cls):
        if cls._cached_baseline is None:
            spec = WorkflowSpec("perm", cls.DIAMOND_STAGES)
            platform = _platform(seed=17)
            arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(0.8), 30.0, rng=5)
            records = []
            result = platform.run_workflows(arrivals, record_sink=records.append)
            cls._cached_baseline = (
                [e.to_row() for e in result.executions],
                _signatures(records),
            )
        return cls._cached_baseline

    def test_single_stage_workflow_equals_plain_trace_replay(self):
        """A 1-stage HTTP workflow is exactly a flat trace replay."""
        times = [0.0, 0.4, 0.4, 2.5, 30.0]
        payload = {"kind": "check"}
        spec = WorkflowSpec("single", (WorkflowStage("only", "web"),))
        workflow_records = []
        workflow_platform = _platform(seed=41)
        result = workflow_platform.run_workflows(
            [WorkflowArrival(spec, t, payload=payload) for t in times],
            record_sink=workflow_records.append,
        )
        plain_platform = _platform(seed=41)
        trace = WorkloadTrace(
            [InvocationRequest("web", payload=payload, submitted_at=t) for t in times]
        )
        plain = plain_platform.run_workload(trace)
        assert _signatures(workflow_records) == _signatures(plain.records)
        # And the workflow view agrees: one invocation per execution, the
        # whole client time attributed to compute + cold start, no trigger
        # propagation on a synchronous root.
        for execution, record in zip(result.executions, plain.records):
            assert execution.invocations == 1
            assert execution.trigger_propagation_s == 0.0
            assert execution.end_to_end_s == pytest.approx(record.client_time_s)


# ---------------------------------------------------- scenario + experiment
class TestWorkflowScenario:
    def test_scenario_workflow_traffic(self):
        spec, _ = standard_workflow("pipeline")
        scenario = Scenario(
            name="mixed-composition",
            duration_s=60.0,
            traffic=(FunctionTraffic("web", PoissonArrivals(1.0)),),
            workflow_traffic=(WorkflowTraffic(spec, PoissonArrivals(0.5)),),
        )
        assert "wf-thumbnail" in scenario.functions() and "web" in scenario.functions()
        arrivals_a = scenario.build_workflow_arrivals(seed=4)
        arrivals_b = scenario.build_workflow_arrivals(seed=4)
        assert [a.submitted_at for a in arrivals_a] == [a.submitted_at for a in arrivals_b]
        assert all(a.workflow is spec for a in arrivals_a)
        # Flat traffic streams are untouched by adding workflow traffic.
        flat_only = Scenario(
            name="mixed-composition",
            duration_s=60.0,
            traffic=(FunctionTraffic("web", PoissonArrivals(1.0)),),
        )
        assert list(scenario.build_trace(seed=4)) == list(flat_only.build_trace(seed=4))

    def test_workload_experiment_rejects_workflow_traffic(self):
        """The flat replay refuses to silently drop workflow arrivals."""
        from repro.experiments.workload_replay import (
            WorkloadDeployment,
            WorkloadReplayExperiment,
        )

        spec, _ = standard_workflow("pipeline")
        scenario = Scenario(
            name="both",
            duration_s=20.0,
            traffic=(FunctionTraffic("web", PoissonArrivals(1.0)),),
            workflow_traffic=(WorkflowTraffic(spec, PoissonArrivals(0.5)),),
        )
        experiment = WorkloadReplayExperiment(
            config=ExperimentConfig(samples=1, seed=3), simulation=SimulationConfig(seed=3)
        )
        with pytest.raises(ConfigurationError):
            experiment.run(
                providers=(Provider.AWS,),
                deployments=(WorkloadDeployment("web", "dynamic-html", 256),),
                scenario=scenario,
            )

    def test_scenario_requires_some_traffic(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="empty", duration_s=10.0)
        spec, _ = standard_workflow("pipeline")
        workflow_only = Scenario(
            name="wf", duration_s=10.0, workflow_traffic=(WorkflowTraffic(spec, PoissonArrivals(1.0)),)
        )
        with pytest.raises(ConfigurationError):
            workflow_only.build_trace(seed=0)

    def test_standard_workflows_cover_catalog(self):
        for name in STANDARD_WORKFLOWS:
            spec, functions = standard_workflow(name)
            assert spec.name == name
            deployed = {function.function_name for function in functions}
            assert set(spec.functions()) <= deployed
        with pytest.raises(ConfigurationError):
            standard_workflow("nope")

    def test_experiment_replays_same_arrivals_on_every_provider(self):
        experiment = WorkflowReplayExperiment(
            config=ExperimentConfig(samples=1, seed=7), simulation=SimulationConfig(seed=7)
        )
        result = experiment.run(
            providers=(Provider.AWS, Provider.AZURE),
            workflow="fanout",
            duration_s=30.0,
            rate_per_s=0.5,
            fan_out=3,
        )
        assert set(result.per_provider) == {Provider.AWS, Provider.AZURE}
        for provider_result in result.per_provider.values():
            assert provider_result.execution_count == result.executions
            assert provider_result.invocation_total == result.executions * 5
        assert {row["provider"] for row in result.to_rows()} == {"aws", "azure"}
        assert len(result.summary_rows()) == 2


# ------------------------------------------------------------ lazy trace merge
class TestLazyMerge:
    def test_merge_is_lazy_and_reiterable(self):
        a = WorkloadTrace.synthesize("a", ConstantRateArrivals(1.0), 10.0, rng=0)
        b = WorkloadTrace.synthesize("b", ConstantRateArrivals(1.0, phase_s=0.5), 10.0, rng=0)
        merged = WorkloadTrace.merge(a, b)
        assert isinstance(merged, MergedWorkloadTrace)
        assert len(merged) == len(a) + len(b)
        assert merged.functions() == ["a", "b"]
        assert merged.duration_s == max(a.duration_s, b.duration_s)
        # Re-iterable (each pass runs a fresh heapq.merge) and time-sorted.
        first_pass = [r.submitted_at for r in merged]
        second_pass = [r.submitted_at for r in merged]
        assert first_pass == second_pass == sorted(first_pass)

    def test_merge_matches_materialised_behaviour(self):
        a = WorkloadTrace.synthesize("a", PoissonArrivals(2.0), 40.0, rng=1)
        b = WorkloadTrace.synthesize("b", PoissonArrivals(3.0), 40.0, rng=2)
        lazy = list(WorkloadTrace.merge(a, b))
        eager = list(WorkloadTrace(list(a) + list(b)))
        assert lazy == eager

    def test_nested_merges_compose(self):
        a = WorkloadTrace.synthesize("a", ConstantRateArrivals(1.0), 5.0, rng=0)
        b = WorkloadTrace.synthesize("b", ConstantRateArrivals(1.0), 5.0, rng=0)
        c = WorkloadTrace.synthesize("c", ConstantRateArrivals(1.0), 5.0, rng=0)
        nested = WorkloadTrace.merge(WorkloadTrace.merge(a, b), c)
        assert len(nested) == 15
        assert nested.functions() == ["a", "b", "c"]
        times = [r.submitted_at for r in nested]
        assert times == sorted(times)

    def test_merge_rejects_unsorted_sources(self):
        with pytest.raises(ConfigurationError):
            WorkloadTrace.merge([InvocationRequest("f", submitted_at=1.0)])

    def test_merged_trace_replays_in_streaming_mode(self):
        platform = _platform(seed=5)
        merged = WorkloadTrace.merge(
            WorkloadTrace.synthesize("web", PoissonArrivals(2.0), 30.0, rng=1),
            WorkloadTrace.synthesize("thumb", PoissonArrivals(1.0), 30.0, rng=2),
        )
        result = platform.run_workload(merged, keep_records=False)
        assert result.records == []
        assert result.invocations == len(merged)
        assert set(result.per_function()) == {"thumb", "web"}

    def test_merged_trace_validates_functions_upfront(self):
        platform = _platform(seed=5)
        merged = WorkloadTrace.merge(
            WorkloadTrace.synthesize("ghost", PoissonArrivals(2.0), 10.0, rng=1)
        )
        with pytest.raises(FunctionNotFoundError):
            platform.run_workload(merged)

    def test_merged_trace_serialises_via_materialisation(self, tmp_path):
        merged = WorkloadTrace.merge(
            WorkloadTrace.synthesize("a", ConstantRateArrivals(1.0), 5.0, rng=0)
        )
        path = tmp_path / "merged.json"
        merged.to_json(path)
        assert len(WorkloadTrace.from_json(path)) == len(merged)


# -------------------------------------------------------------------- the CLI
class TestWorkflowCLI:
    def test_workflow_command_with_output(self, capsys, tmp_path):
        output = tmp_path / "workflow.json"
        assert main([
            "workflow", "--workflow", "fanout", "--duration", "20", "--rate", "0.5",
            "--fan-out", "3", "--providers", "aws", "--output", str(output),
        ]) == 0
        assert "Workflow replay" in capsys.readouterr().out
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["command"] == "workflow"
        assert document["providers"][0]["provider"] == "aws"
        assert document["per_workflow"][0]["workflow"] == "fanout"

    def test_workflow_command_streaming(self, capsys):
        assert main([
            "workflow", "--workflow", "branch", "--duration", "20", "--rate", "0.5",
            "--providers", "aws", "--streaming",
        ]) == 0
        assert "branch" in capsys.readouterr().out

    def test_workload_command_with_output(self, capsys, tmp_path):
        output = tmp_path / "workload.json"
        assert main([
            "workload", "--pattern", "poisson", "--duration", "30", "--rate", "1",
            "--providers", "aws", "--output", str(output),
        ]) == 0
        assert "Workload replay" in capsys.readouterr().out
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["command"] == "workload"
        assert document["providers"][0]["provider"] == "aws"
        assert document["per_function"]
