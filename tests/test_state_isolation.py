"""Per-instance and per-function state isolation of the simulator.

The sharding work (PR 4) surfaced two latent state leaks, both fixed and
pinned here:

* **module-level container-id counter** — sandbox ids used to come from one
  process-wide ``itertools.count``, so a platform's container ids (and the
  eviction policies' ``(created_at, container_id)`` tie-break ordering past
  the six-digit rollover) depended on how many containers *other* platforms
  had created.  Ids are now minted per pool.
* **shared billing-model singletons** — ``billing_model_for`` used to hand
  out module-level instances whose mutable ``_static_costs`` memo was
  shared by every platform in the process.

The remaining tests pin the isolation properties sharded replay depends
on: identical replays on identical fresh instances are bit-identical, a
platform instance is deterministic across repeated use, and one function's
records do not change when other functions' traffic is added or removed.
"""

from __future__ import annotations

import pytest

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.faas.billing import billing_model_for
from repro.simulator.containers import ContainerPool
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)


def _platform(provider: Provider, seed: int = 23):
    platform = create_platform(provider, SimulationConfig(seed=seed))
    for index, (benchmark, memory_mb) in enumerate(
        (("dynamic-html", 256), ("thumbnailer", 1024))
    ):
        deploy_benchmark(
            platform,
            benchmark,
            memory_mb=memory_mb if platform.limits.memory_static else 0,
            function_name=f"iso-{index}",
        )
    return platform


def _trace(duration_s: float = 40.0):
    return WorkloadTrace.merge(
        WorkloadTrace.synthesize("iso-0", PoissonArrivals(8.0), duration_s=duration_s, rng=51),
        WorkloadTrace.synthesize("iso-1", PoissonArrivals(8.0), duration_s=duration_s, rng=52),
    )


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_identical_fresh_platforms_replay_bit_identically(provider):
    """No module-level state: instance N and instance N+1 agree exactly.

    This is the test that caught the process-wide container-id counter —
    the second platform's records carried different ``container_id`` values
    purely because the first platform had already minted some.
    """
    trace = _trace()
    first = _platform(provider).run_workload(trace)
    second = _platform(provider).run_workload(trace)
    assert first.records == second.records


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_repeated_replay_on_one_instance_is_deterministic(provider):
    """Replaying the same trace twice on one platform instance produces the
    same pair of results as on any identically prepared instance — the
    second pass (warm pools, advanced streams) is a pure function of the
    instance's own history, never of process-global state."""
    trace = _trace()
    platform_a = _platform(provider)
    first_a = platform_a.run_workload(trace)
    second_a = platform_a.run_workload(trace)
    platform_b = _platform(provider)
    first_b = platform_b.run_workload(trace)
    second_b = platform_b.run_workload(trace)
    assert first_a.records == first_b.records
    assert second_a.records == second_b.records


def test_iaas_container_ids_are_pool_scoped():
    """The IaaS VM bookkeeping container must also mint pool-scoped ids."""
    platform = create_platform(Provider.IAAS, SimulationConfig(seed=5))
    for index, benchmark in enumerate(("dynamic-html", "thumbnailer")):
        deploy_benchmark(platform, benchmark, memory_mb=1024, function_name=f"vm-{index}")
    first = platform.invoke("vm-0", payload={})
    second = platform.invoke("vm-1", payload={})
    assert first.container_id == "vm-0-c00000001"
    assert second.container_id == "vm-1-c00000001"


def test_container_ids_are_pool_scoped():
    pool_a = ContainerPool("alpha")
    pool_b = ContainerPool("beta")
    assert pool_a.next_container_id() == "alpha-c00000001"
    assert pool_a.next_container_id() == "alpha-c00000002"
    # A different pool starts from 1 regardless of other pools' activity.
    assert pool_b.next_container_id() == "beta-c00000001"


def test_billing_models_do_not_share_static_cost_caches():
    first = billing_model_for(Provider.AWS)
    second = billing_model_for(Provider.AWS)
    assert first == second  # pricing fields identical
    first.invocation_cost(0.2, 256, 100.0, output_bytes=1024)
    assert first._static_costs and not second._static_costs


@pytest.mark.parametrize("provider", PROVIDERS, ids=lambda p: p.value)
def test_function_records_independent_of_co_deployed_traffic(provider):
    """The per-function isolation sharding relies on: function iso-0's
    records are identical whether iso-1's traffic replays alongside it or
    not."""
    solo_platform = _platform(provider)
    solo_trace = WorkloadTrace.synthesize("iso-0", PoissonArrivals(8.0), duration_s=40.0, rng=51)
    solo = solo_platform.run_workload(solo_trace)
    mixed = _platform(provider).run_workload(_trace())
    mixed_records = [r for r in mixed.records if r.function_name == "iso-0"]
    assert mixed_records == solo.records
