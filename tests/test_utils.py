"""Tests for repro.utils: virtual clock, random streams, unit helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.clock import VirtualClock
from repro.utils.rng import RandomStreams, derive_seed
from repro.utils.units import GB, KB, MB, bytes_to_mb, mb_to_bytes, ms_to_s, round_up, s_to_ms


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(12.5).now() == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(3.0) == 3.0
        assert clock.now() == 3.0

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            VirtualClock().advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = VirtualClock(5.0)
        clock.advance_to(9.0)
        assert clock.now() == 9.0

    def test_advance_to_rejects_going_backwards(self):
        clock = VirtualClock(5.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(4.9)

    def test_copy_is_independent(self):
        clock = VirtualClock(2.0)
        twin = clock.copy()
        clock.advance(10.0)
        assert twin.now() == 2.0

    def test_zero_advance_is_allowed(self):
        clock = VirtualClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0


class TestRandomStreams:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_derive_seed_depends_on_names(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_derive_seed_depends_on_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_same_name_returns_same_stream_object(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_reproducible_across_instances(self):
        a = RandomStreams(7).stream("network").random(5)
        b = RandomStreams(7).stream("network").random(5)
        assert (a == b).all()

    def test_different_names_produce_different_sequences(self):
        streams = RandomStreams(7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not (a == b).all()

    def test_fork_changes_sequences(self):
        base = RandomStreams(7)
        fork = base.fork("child")
        assert fork.master_seed != base.master_seed

    def test_reset_restarts_sequences(self):
        streams = RandomStreams(7)
        first = streams.stream("x").random(3)
        streams.reset()
        second = streams.stream("x").random(3)
        assert (first == second).all()


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GB == 1024**3

    def test_mb_bytes_roundtrip(self):
        assert mb_to_bytes(2) == 2 * MB
        assert bytes_to_mb(3 * MB) == pytest.approx(3.0)

    def test_time_conversions(self):
        assert s_to_ms(1.5) == 1500.0
        assert ms_to_s(250.0) == 0.25

    def test_round_up_to_granularity(self):
        assert round_up(0.31, 0.1) == pytest.approx(0.4)
        assert round_up(130, 128) == 256

    def test_round_up_exact_multiple_unchanged(self):
        assert round_up(0.3, 0.1) == pytest.approx(0.3)
        assert round_up(256, 128) == 256

    def test_round_up_zero_and_negative_values(self):
        assert round_up(0.0, 0.1) == 0.0
        assert round_up(-5.0, 0.1) == 0.0

    def test_round_up_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            round_up(1.0, 0.0)

    def test_round_up_handles_floating_point_noise(self):
        # 0.1 * 3 is slightly above 0.3 in binary floating point.
        assert round_up(0.1 * 3, 0.1) == pytest.approx(0.3)
