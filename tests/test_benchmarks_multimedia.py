"""Tests for the multimedia benchmarks: imaging primitives, thumbnailer, video-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks.base import InputSize
from repro.benchmarks.multimedia.imaging import Image
from repro.benchmarks.multimedia.thumbnailer import ThumbnailerBenchmark
from repro.benchmarks.multimedia.video_processing import (
    VideoProcessingBenchmark,
    decode_video,
    encode_video,
    generate_video,
    run_length_encode,
)
from repro.config import Language
from repro.exceptions import BenchmarkError


class TestImage:
    def test_generate_has_requested_dimensions(self, rng):
        image = Image.generate(64, 48, rng)
        assert (image.width, image.height) == (64, 48)
        assert image.pixels.dtype == np.uint8

    def test_serialisation_round_trip(self, rng):
        image = Image.generate(32, 20, rng)
        restored = Image.from_bytes(image.to_bytes())
        assert np.array_equal(image.pixels, restored.pixels)

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(BenchmarkError):
            Image.from_bytes(b"not an image")

    def test_from_bytes_rejects_truncated_payload(self, rng):
        data = Image.generate(10, 10, rng).to_bytes()
        with pytest.raises(BenchmarkError):
            Image.from_bytes(data[:-5])

    def test_shrink_resize_preserves_mean_color(self, rng):
        image = Image.generate(200, 200, rng)
        small = image.resize(50, 50)
        for original, resized in zip(image.mean_color(), small.mean_color()):
            assert resized == pytest.approx(original, abs=4.0)

    def test_upscale_uses_nearest_neighbour(self, rng):
        image = Image.generate(10, 10, rng)
        big = image.resize(40, 40)
        assert (big.width, big.height) == (40, 40)
        # Nearest-neighbour upscaling only reuses existing colours.
        original_colors = set(map(tuple, image.pixels.reshape(-1, 3)))
        upscaled_colors = set(map(tuple, big.pixels.reshape(-1, 3)))
        assert upscaled_colors <= original_colors

    def test_thumbnail_preserves_aspect_ratio(self, rng):
        image = Image.generate(640, 480, rng)
        thumb = image.thumbnail(200, 200)
        assert thumb.width == 200 and thumb.height == 150

    def test_thumbnail_never_enlarges(self, rng):
        image = Image.generate(100, 80, rng)
        thumb = image.thumbnail(500, 500)
        assert (thumb.width, thumb.height) == (100, 80)

    def test_resize_rejects_non_positive_target(self, rng):
        with pytest.raises(BenchmarkError):
            Image.generate(10, 10, rng).resize(0, 5)

    def test_watermark_blends_region(self, rng):
        base = Image(np.zeros((50, 50, 3), dtype=np.uint8))
        mark = Image(np.full((10, 10, 3), 255, dtype=np.uint8))
        stamped = base.watermark(mark, opacity=0.5, position=(40, 40))
        assert stamped.pixels[45, 45, 0] == pytest.approx(127, abs=2)
        assert stamped.pixels[0, 0, 0] == 0

    def test_watermark_out_of_bounds_rejected(self, rng):
        base = Image.generate(20, 20, rng)
        mark = Image.generate(30, 30, rng)
        with pytest.raises(BenchmarkError):
            base.watermark(mark)

    def test_invalid_pixel_shape_rejected(self):
        with pytest.raises(BenchmarkError):
            Image(np.zeros((10, 10), dtype=np.uint8))


class TestThumbnailer:
    def test_end_to_end(self, context):
        benchmark = ThumbnailerBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        stored = context.storage.download(result["output_bucket"], result["output_key"])
        thumbnail = Image.from_bytes(stored)
        assert thumbnail.width <= event["width"]
        assert thumbnail.height <= event["height"]
        assert result["original_size"] == [160, 120]

    def test_output_smaller_than_input(self, context):
        benchmark = ThumbnailerBenchmark()
        event = benchmark.generate_input(InputSize.SMALL, context)
        result = benchmark.run(event, context)
        input_size = len(context.storage.download(event["input_bucket"], event["input_key"]))
        assert result["bytes"] < input_size

    def test_profile_language_difference(self):
        benchmark = ThumbnailerBenchmark()
        python = benchmark.profile(language=Language.PYTHON)
        node = benchmark.profile(language=Language.NODEJS)
        # Table 4: the Node.js implementation (sharp) is slower than Pillow here.
        assert node.warm_compute_s > python.warm_compute_s
        assert python.output_bytes == 3000

    def test_profile_storage_traffic_scales_with_size(self):
        benchmark = ThumbnailerBenchmark()
        assert benchmark.profile(InputSize.LARGE).storage_read_bytes > benchmark.profile(InputSize.SMALL).storage_read_bytes


class TestVideoCodec:
    def test_encode_decode_round_trip(self, rng):
        frames = [rng.integers(0, 255, size=(12, 16, 3), dtype=np.uint8) for _ in range(3)]
        restored = decode_video(encode_video(frames))
        assert len(restored) == 3
        for original, back in zip(frames, restored):
            assert np.array_equal(original, back)

    def test_encode_rejects_mismatched_frames(self, rng):
        frames = [np.zeros((4, 4, 3), dtype=np.uint8), np.zeros((5, 4, 3), dtype=np.uint8)]
        with pytest.raises(BenchmarkError):
            encode_video(frames)

    def test_encode_rejects_empty_video(self):
        with pytest.raises(BenchmarkError):
            encode_video([])

    def test_decode_rejects_garbage(self):
        with pytest.raises(BenchmarkError):
            decode_video(b"XXXX" + b"\x00" * 20)

    def test_generate_video_shape(self, rng):
        data = generate_video(20, 10, 4, rng)
        frames = decode_video(data)
        assert len(frames) == 4 and frames[0].shape == (10, 20, 3)

    def test_run_length_encode_compresses_uniform_data(self):
        encoded = run_length_encode(np.zeros(1000, dtype=np.uint8))
        assert len(encoded) < 20

    def test_run_length_encode_handles_long_runs(self):
        encoded = run_length_encode(np.full(300, 7, dtype=np.uint8))
        # 300 = 255 + 45, so two (count, value) pairs.
        assert encoded == bytes([255, 7, 45, 7])

    def test_run_length_encode_empty(self):
        assert run_length_encode(np.array([], dtype=np.uint8)) == b""


class TestVideoProcessing:
    def test_end_to_end(self, context):
        benchmark = VideoProcessingBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["input_frames"] == 8
        assert result["gif_frames"] == 3  # every third frame is kept
        payload = context.storage.download(result["output_bucket"], result["output_key"])
        assert len(payload) == result["gif_bytes"]

    def test_gif_smaller_than_source(self, context):
        benchmark = VideoProcessingBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        source = context.storage.download(event["input_bucket"], event["input_key"])
        assert result["gif_bytes"] < len(source)

    def test_profile_is_longest_running_benchmark(self, registry):
        video = registry.get("video-processing").profile()
        others = [registry.get(name).profile() for name in registry.names() if name != "video-processing"]
        assert all(video.warm_compute_s > other.warm_compute_s for other in others)

    def test_requires_native_dependencies_flag(self):
        assert VideoProcessingBenchmark().requires_native_dependencies
