"""Tests for the utility and inference benchmarks: compression, data-vis, image-recognition."""

from __future__ import annotations

import io
import zipfile

import numpy as np
import pytest

from repro.benchmarks.base import BenchmarkContext, InputSize
from repro.benchmarks.inference.image_recognition import ImageRecognitionBenchmark
from repro.benchmarks.inference.resnet import (
    build_resnet_lite,
    deserialize_weights,
    serialize_weights,
)
from repro.benchmarks.multimedia.imaging import Image
from repro.benchmarks.utilities.compression import CompressionBenchmark, generate_project_files
from repro.benchmarks.utilities.data_vis import (
    DataVisBenchmark,
    downsample,
    generate_sequence,
    squiggle_transform,
)
from repro.exceptions import BenchmarkError
from repro.storage.object_store import ObjectStore


class TestCompression:
    def test_generate_project_files(self, rng):
        files = generate_project_files(5, 1000, rng)
        assert len(files) == 5
        assert "acmart-main.tex" in files
        assert all(len(data) <= 1000 for data in files.values())

    def test_end_to_end_produces_valid_zip(self, context):
        benchmark = CompressionBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        archive_bytes = context.storage.download(result["output_bucket"], result["output_key"])
        with zipfile.ZipFile(io.BytesIO(archive_bytes)) as archive:
            names = archive.namelist()
            assert len(names) == result["files"]
            assert archive.testzip() is None

    def test_archive_contents_match_sources(self, context):
        benchmark = CompressionBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        archive_bytes = context.storage.download(result["output_bucket"], result["output_key"])
        prefix = event["prefix"]
        with zipfile.ZipFile(io.BytesIO(archive_bytes)) as archive:
            for key in context.storage.list_objects(event["input_bucket"], prefix):
                original = context.storage.download(event["input_bucket"], key)
                assert archive.read(key[len(prefix) + 1 :]) == original

    def test_compression_achieves_reduction_on_text(self, context):
        benchmark = CompressionBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["compression_ratio"] > 1.5

    def test_profile_marks_gcp_failure_boundary(self):
        profile = CompressionBenchmark().profile()
        assert profile.min_memory_mb == 256
        assert profile.storage_read_requests > 1


class TestDataVis:
    def test_generate_sequence_alphabet(self, rng):
        sequence = generate_sequence(500, rng)
        assert len(sequence) == 500
        assert set(sequence) <= set("ACGT")

    def test_generate_sequence_rejects_bad_length(self, rng):
        with pytest.raises(BenchmarkError):
            generate_sequence(0, rng)

    def test_squiggle_known_values(self):
        # A rises then falls back: y = [0, 1, 0]; T mirrors it; G is a double
        # ascent of 0.5; C a double descent.
        xs, ys = squiggle_transform("A")
        assert np.allclose(ys, [0.0, 1.0, 0.0])
        _, ys_t = squiggle_transform("T")
        assert np.allclose(ys_t, [0.0, -1.0, 0.0])
        _, ys_g = squiggle_transform("G")
        assert np.allclose(ys_g, [0.0, 0.5, 1.0])
        _, ys_c = squiggle_transform("C")
        assert np.allclose(ys_c, [0.0, -0.5, -1.0])

    def test_squiggle_length_and_x_spacing(self):
        xs, ys = squiggle_transform("ACGTACGT")
        assert len(xs) == len(ys) == 2 * 8 + 1
        assert np.allclose(np.diff(xs), 0.5)

    def test_squiggle_balanced_sequence_returns_to_zero(self):
        _, ys = squiggle_transform("AT" * 10 + "GC" * 10)
        assert ys[-1] == pytest.approx(0.0)

    def test_squiggle_rejects_invalid_characters(self):
        with pytest.raises(BenchmarkError):
            squiggle_transform("ACGX")

    def test_downsample_caps_points(self):
        xs = np.arange(10000, dtype=float)
        ys = xs * 2
        dx, dy = downsample(xs, ys, 100)
        assert len(dx) == 100 and dx[0] == 0 and dx[-1] == 9999

    def test_downsample_keeps_short_series(self):
        xs = np.arange(10, dtype=float)
        dx, _ = downsample(xs, xs, 100)
        assert len(dx) == 10

    def test_end_to_end(self, context):
        benchmark = DataVisBenchmark()
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.run(event, context)
        assert result["sequence_length"] == 1000
        assert 0.0 <= result["gc_content"] <= 1.0
        stored = context.storage.download(result["output_bucket"], result["output_key"])
        assert len(stored) == result["visualization_bytes"]


class TestResNetLite:
    def test_forward_produces_logits_for_all_classes(self):
        model = build_resnet_lite(num_classes=10, channels=4, num_blocks=1)
        image = np.random.default_rng(0).integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        logits = model.forward(image)
        assert logits.shape == (10,)

    def test_predict_returns_sorted_probabilities(self):
        model = build_resnet_lite(num_classes=10, channels=4, num_blocks=1)
        image = np.random.default_rng(1).integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        predictions = model.predict(image, top_k=5)
        probs = [p for _, p in predictions]
        assert len(predictions) == 5
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_inference_is_deterministic(self):
        model = build_resnet_lite(num_classes=10, channels=4, num_blocks=1)
        image = np.random.default_rng(2).integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        assert model.predict(image) == model.predict(image)

    def test_weight_serialisation_round_trip(self):
        model = build_resnet_lite(num_classes=8, channels=4, num_blocks=2)
        restored = deserialize_weights(serialize_weights(model))
        assert restored.parameter_count() == model.parameter_count()
        image = np.random.default_rng(3).integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        assert np.allclose(model.forward(image), restored.forward(image))

    def test_rejects_non_rgb_input(self):
        model = build_resnet_lite(num_classes=4, channels=4, num_blocks=0)
        with pytest.raises(BenchmarkError):
            model.forward(np.zeros((16, 16), dtype=np.uint8))

    def test_rejects_invalid_configuration(self):
        with pytest.raises(BenchmarkError):
            build_resnet_lite(num_classes=0)


class TestImageRecognition:
    def _context(self):
        return BenchmarkContext(storage=ObjectStore(), rng=np.random.default_rng(5))

    def test_first_run_is_cold_then_warm(self):
        benchmark = ImageRecognitionBenchmark()
        context = self._context()
        event = benchmark.generate_input(InputSize.TEST, context)
        first = benchmark.run(event, context)
        second = benchmark.run(event, context)
        assert first["cold_model_load"] is True
        assert second["cold_model_load"] is False
        assert first["top_label"] == second["top_label"]

    def test_reset_cache_forces_cold_load(self):
        benchmark = ImageRecognitionBenchmark()
        context = self._context()
        event = benchmark.generate_input(InputSize.TEST, context)
        benchmark.run(event, context)
        benchmark.reset_cache()
        assert benchmark.run(event, context)["cold_model_load"] is True

    def test_predictions_have_requested_top_k(self):
        benchmark = ImageRecognitionBenchmark()
        context = self._context()
        event = benchmark.generate_input(InputSize.TEST, context)
        event["top_k"] = 3
        result = benchmark.run(event, context)
        assert len(result["predictions"]) == 3

    def test_model_uploaded_once(self):
        benchmark = ImageRecognitionBenchmark()
        context = self._context()
        benchmark.generate_input(InputSize.TEST, context)
        keys_before = context.storage.list_objects(context.input_bucket, "models/")
        benchmark.generate_input(InputSize.SMALL, context)
        keys_after = context.storage.list_objects(context.input_bucket, "models/")
        assert keys_before == keys_after == ["models/resnet-lite.npz"]

    def test_profile_has_largest_package_and_cold_cost(self, registry):
        profile = registry.get("image-recognition").profile()
        others = [registry.get(name).profile() for name in registry.names() if name != "image-recognition"]
        assert all(profile.code_package_mb >= other.code_package_mb for other in others)
        assert profile.cold_init_s > 1.0
        assert profile.min_memory_mb == 512
