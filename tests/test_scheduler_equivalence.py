"""Scheduler equivalence: the indexed fast path vs the scan-based semantics.

The indexed warm-pool scheduler (per-version MRU heaps, occupancy multiset,
lazy eviction-deadline heaps) must be a pure *performance* change: replaying
the same trace with the same seed has to produce bit-identical schedules —
the same container ids, cold-start counts, costs, latencies and warm-pool
sizes — as the original implementation, which re-scanned the pool on every
request.

``_ReferenceSchedulerMixin`` below re-implements those original semantics on
top of the current platform (linear warm-list scan + ``max()`` MRU pick +
full ``select_evictions`` application per request), and the tests replay
identical Poisson / bursty / diurnal traces through both paths on every
provider.
"""

from __future__ import annotations

import pytest

from repro.config import Provider, SimulationConfig, StartType
from repro.experiments.base import deploy_benchmark
from repro.simulator.containers import Container
from repro.simulator.providers import (
    AWSLambdaSimulator,
    AzureFunctionsSimulator,
    GoogleCloudFunctionsSimulator,
    create_platform,
)
from repro.workload import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    WorkloadEngine,
    WorkloadTrace,
)


class _ReferenceSchedulerMixin:
    """The pre-index scheduling semantics: full scans on every request."""

    def _acquire_container(self, function, state, start_at):  # type: ignore[override]
        self.eviction_policy.apply_full(state.pool, start_at)
        pool = state.pool
        capacity = self.sandbox_concurrency
        warm = [
            c
            for c in pool.warm_containers(version=function.version)
            if pool.in_use_count(c.container_id) < capacity
        ]
        probability = self.performance.spurious_cold_start_probability
        spurious = probability > 0 and state.spurious_stream.random() < probability
        if warm and not spurious:
            return max(warm, key=lambda c: c.last_used_at), StartType.WARM
        container = Container(
            function_name=function.name,
            function_version=function.version,
            memory_mb=function.config.memory_mb,
            created_at=start_at,
            container_id=state.pool.next_container_id(),
        )
        state.pool.add(container)
        return container, StartType.COLD

    def warm_container_count(self, fname):  # type: ignore[override]
        state = self._runtime_state(fname)
        self.eviction_policy.apply_full(state.pool, self.clock.now())
        function = self.get_function(fname)
        return state.pool.warm_count(version=function.version)


class _ReferenceAWS(_ReferenceSchedulerMixin, AWSLambdaSimulator):
    pass


class _ReferenceGCP(_ReferenceSchedulerMixin, GoogleCloudFunctionsSimulator):
    pass


class _ReferenceAzure(_ReferenceSchedulerMixin, AzureFunctionsSimulator):
    pass


_REFERENCE_CLASSES = {
    Provider.AWS: _ReferenceAWS,
    Provider.GCP: _ReferenceGCP,
    Provider.AZURE: _ReferenceAzure,
}


def _deploy_pair(provider: Provider, seed: int):
    """Fast-path and reference platforms with identical deployments."""
    fast = create_platform(provider, SimulationConfig(seed=seed))
    reference = _REFERENCE_CLASSES[provider](SimulationConfig(seed=seed))
    functions = []
    for platform in (fast, reference):
        memory = 256 if platform.limits.memory_static else 0
        web = deploy_benchmark(platform, "dynamic-html", memory_mb=memory, function_name="web")
        thumb = deploy_benchmark(
            platform,
            "thumbnailer",
            memory_mb=1024 if platform.limits.memory_static else 0,
            function_name="thumb",
        )
        functions = [web, thumb]
    return fast, reference, functions


def _build_trace(pattern: str, functions: list[str], seed: int) -> WorkloadTrace:
    if pattern == "poisson":
        processes = [PoissonArrivals(4.0), PoissonArrivals(2.0)]
    elif pattern == "bursty":
        processes = [
            BurstyArrivals(6.0, mean_on_s=15.0, mean_off_s=30.0),
            BurstyArrivals(3.0, mean_on_s=20.0, mean_off_s=45.0),
        ]
    else:
        processes = [DiurnalArrivals(4.0), DiurnalArrivals(2.0)]
    traces = [
        WorkloadTrace.synthesize(fname, process, duration_s=420.0, rng=seed + offset)
        for offset, (fname, process) in enumerate(zip(functions, processes))
    ]
    return WorkloadTrace.merge(*traces)


def _signatures(records):
    """Per-record signatures with container ids canonicalised per run.

    The global container-id counter is shared by every platform in the
    process, so the raw ids differ between the two runs; what must match is
    the *schedule* — which (canonical) sandbox served each request.  Ids are
    renumbered by order of first appearance.
    """
    canonical: dict[str, int] = {}
    signatures = []
    for record in records:
        if record.container_id not in canonical:
            canonical[record.container_id] = len(canonical)
        signatures.append(
            (
                canonical[record.container_id],
                record.start_type,
                record.success,
                record.cost.total,
                record.client_time_s,
                record.provider_time_s,
                record.finished_at,
                record.error,
            )
        )
    return signatures


@pytest.mark.parametrize("provider", [Provider.AWS, Provider.GCP, Provider.AZURE])
@pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal"])
def test_trace_replay_matches_reference_semantics(provider, pattern):
    fast, reference, functions = _deploy_pair(provider, seed=11)
    trace = _build_trace(pattern, functions, seed=17)
    assert len(trace) > 200

    fast_result = fast.run_workload(trace)
    reference_result = reference.run_workload(trace)

    assert fast_result.invocations == reference_result.invocations
    assert fast_result.cold_start_count == reference_result.cold_start_count
    assert fast_result.peak_in_flight == reference_result.peak_in_flight
    assert _signatures(fast_result.records) == _signatures(reference_result.records)
    # Post-replay warm-pool state is identical too (exercises both
    # warm_container_count paths: incremental and full-scan application).
    for fname in functions:
        assert fast.warm_container_count(fname) == reference.warm_container_count(fname)


@pytest.mark.parametrize("provider", [Provider.AWS, Provider.GCP, Provider.AZURE])
def test_burst_path_matches_reference_semantics(provider):
    fast, reference, functions = _deploy_pair(provider, seed=23)
    fname = functions[0]

    fast_records = fast.invoke_batch(fname, 25)
    reference_records = reference.invoke_batch(fname, 25)

    # Let the eviction policy bite between bursts, then reuse what survives.
    fast.clock.advance(400.0)
    reference.clock.advance(400.0)
    fast_records += fast.invoke_batch(fname, 25)
    reference_records += reference.invoke_batch(fname, 25)
    assert _signatures(fast_records) == _signatures(reference_records)
    assert fast.warm_container_count(fname) == reference.warm_container_count(fname)


def test_mixed_sequential_and_stream_matches_reference():
    """Interleaving invoke(), bursts and streams keeps the paths in lockstep."""
    fast, reference, functions = _deploy_pair(Provider.AWS, seed=5)
    fname = functions[0]
    trace = _build_trace("poisson", functions, seed=29)

    fast_records = [fast.invoke(fname, payload={"size": "small"})]
    reference_records = [reference.invoke(fname, payload={"size": "small"})]
    fast_records += fast.invoke_batch(fname, 10)
    reference_records += reference.invoke_batch(fname, 10)
    fast_records += fast.run_workload(trace).records
    reference_records += reference.run_workload(trace).records
    fast_records += [fast.invoke(fname, payload={}) for _ in range(5)]
    reference_records += [reference.invoke(fname, payload={}) for _ in range(5)]
    assert _signatures(fast_records) == _signatures(reference_records)


@pytest.mark.parametrize("provider", [Provider.AWS, Provider.GCP])
def test_pool_replacement_keeps_eviction_incremental(provider):
    """delete_function + create_function under the same name gets a fresh
    pool; the incremental eviction trackers must ingest the new pool's
    sandboxes instead of resuming a stale creation-log cursor."""
    fast, reference, _ = _deploy_pair(provider, seed=41)
    for platform in (fast, reference):
        memory = 256 if platform.limits.memory_static else 0
        platform.invoke_batch("web", 4)  # populate the first pool's creation log
        platform.delete_function("web")
        deploy_benchmark(platform, "dynamic-html", memory_mb=memory, function_name="web")
        platform.invoke_batch("web", 4)
        platform.clock.advance(5000.0)
    assert fast.warm_container_count("web") == reference.warm_container_count("web")
    fast_records = fast.invoke_batch("web", 4)
    reference_records = reference.invoke_batch("web", 4)
    assert _signatures(fast_records) == _signatures(reference_records)
    assert [r.start_type for r in fast_records] == [r.start_type for r in reference_records]


def test_failed_invocation_releases_reservation():
    """An exception mid-invocation (raising kernel) must not leave the
    sandbox reserved: the next request should still reuse it warm."""
    platform = create_platform(Provider.AWS, SimulationConfig(seed=3))
    platform.execute_kernels = True
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    first = platform.invoke(fname, payload={"username": "x", "random_len": 4})
    assert first.start_type is StartType.COLD

    with pytest.raises(Exception):
        platform.invoke(fname, payload={"truly": "malformed"})
    pool = platform._state[fname].pool
    assert pool.in_use_count(first.container_id) == 0

    again = platform.invoke(fname, payload={"username": "x", "random_len": 4})
    assert again.start_type is StartType.WARM
    assert again.container_id == first.container_id


def test_streaming_aggregation_matches_record_mode():
    """keep_records=False reproduces the exact counters of the record mode."""
    sim = SimulationConfig(seed=13)
    exact_platform = create_platform(Provider.AWS, sim)
    streaming_platform = create_platform(Provider.AWS, sim)
    functions = []
    for platform in (exact_platform, streaming_platform):
        functions = [deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name="web")]
    trace = _build_trace("poisson", functions * 2, seed=31)

    exact = exact_platform.run_workload(trace, keep_records=True)
    streaming = streaming_platform.run_workload(trace, keep_records=False)

    assert streaming.records == []
    assert streaming.invocations == exact.invocations
    assert streaming.cold_start_count == exact.cold_start_count
    assert streaming.failure_count == exact.failure_count
    assert streaming.peak_in_flight == exact.peak_in_flight
    # The online peak tracked from the live completion heap must agree with
    # the post-hoc interval-overlap reference computation.
    assert exact.peak_in_flight == WorkloadEngine._peak_in_flight(exact.records)
    assert streaming.total_cost_usd == pytest.approx(exact.total_cost_usd, rel=1e-12)
    assert streaming.simulated_span_s == pytest.approx(exact.simulated_span_s)

    exact_summary = exact.per_function()["web"]
    streaming_summary = streaming.per_function()["web"]
    assert streaming_summary.invocations == exact_summary.invocations
    assert streaming_summary.cold_starts == exact_summary.cold_starts
    assert streaming_summary.total_cost_usd == pytest.approx(exact_summary.total_cost_usd, rel=1e-12)
    # P² quantiles are estimates; on thousands of samples they should sit
    # within a few percent of the exact percentiles.
    assert streaming_summary.client_time.median == pytest.approx(
        exact_summary.client_time.median, rel=0.05
    )
    assert streaming_summary.client_time.percentiles[95.0] == pytest.approx(
        exact_summary.client_time.percentiles[95.0], rel=0.10
    )
