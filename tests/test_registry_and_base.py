"""Tests for the benchmark registry, base classes and work profiles."""

from __future__ import annotations

import pytest

from repro.benchmarks.base import Benchmark, BenchmarkCategory, InputSize, WorkProfile
from repro.benchmarks.registry import BenchmarkRegistry, default_registry, get_benchmark, list_benchmarks
from repro.config import Language
from repro.exceptions import BenchmarkError, UnknownBenchmarkError

#: The application list of Table 3.
TABLE3_BENCHMARKS = {
    "dynamic-html",
    "uploader",
    "thumbnailer",
    "video-processing",
    "compression",
    "data-vis",
    "image-recognition",
    "graph-pagerank",
    "graph-mst",
    "graph-bfs",
}


class TestRegistry:
    def test_contains_all_table3_applications(self, registry):
        assert set(registry.names()) == TABLE3_BENCHMARKS

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()

    def test_get_unknown_benchmark(self, registry):
        with pytest.raises(UnknownBenchmarkError):
            registry.get("does-not-exist")

    def test_list_benchmarks_matches_registry(self):
        assert set(list_benchmarks()) == TABLE3_BENCHMARKS

    def test_get_benchmark_returns_instance(self):
        assert get_benchmark("thumbnailer").name == "thumbnailer"

    def test_categories_cover_all_five_groups(self, registry):
        categories = {benchmark.category for benchmark in registry}
        assert categories == set(BenchmarkCategory)

    def test_by_category(self, registry):
        scientific = registry.by_category(BenchmarkCategory.SCIENTIFIC)
        assert {b.name for b in scientific} == {"graph-bfs", "graph-pagerank", "graph-mst"}

    def test_with_language_nodejs(self, registry):
        nodejs = {b.name for b in registry.with_language(Language.NODEJS)}
        assert nodejs == {"dynamic-html", "uploader", "thumbnailer"}

    def test_double_registration_rejected(self, registry):
        benchmark = registry.get("uploader")
        with pytest.raises(BenchmarkError):
            registry.register(benchmark)
        registry.register(benchmark, replace=True)  # replace is allowed

    def test_len_and_contains(self, registry):
        assert len(registry) == 10
        assert "compression" in registry
        assert "nope" not in registry

    def test_registry_is_isolated_per_instance(self, registry):
        class Dummy(Benchmark):
            name = "dummy"

            def generate_input(self, size, context):  # pragma: no cover - trivial
                return {}

            def run(self, event, context):  # pragma: no cover - trivial
                return {}

            def profile(self, size=InputSize.SMALL, language=Language.PYTHON):  # pragma: no cover
                return WorkProfile(0.001, 0.001, 1e6, 1.0, 10.0)

        registry.register(Dummy())
        assert "dummy" in registry
        assert "dummy" not in default_registry()


class TestWorkProfiles:
    @pytest.mark.parametrize("name", sorted(TABLE3_BENCHMARKS))
    def test_profiles_are_well_formed(self, registry, name):
        profile = registry.get(name).profile()
        assert profile.warm_compute_s > 0
        assert profile.cold_init_s >= 0
        assert profile.instructions > 0
        assert 0 < profile.cpu_utilization <= 1.0
        assert profile.peak_memory_mb > 0
        assert profile.output_bytes > 0
        assert profile.code_package_mb > 0
        assert profile.min_memory_mb >= 128

    @pytest.mark.parametrize("name", sorted(TABLE3_BENCHMARKS))
    def test_profiles_scale_with_input_size(self, registry, name):
        benchmark = registry.get(name)
        small = benchmark.profile(InputSize.SMALL)
        large = benchmark.profile(InputSize.LARGE)
        assert large.warm_compute_s > small.warm_compute_s

    def test_scaled_profile_adjusts_io_and_output(self):
        profile = WorkProfile(
            warm_compute_s=1.0,
            cold_init_s=0.5,
            instructions=1e9,
            cpu_utilization=0.9,
            peak_memory_mb=100,
            storage_read_bytes=1000,
            storage_write_bytes=500,
            output_bytes=100,
        )
        scaled = profile.scaled(2.0)
        assert scaled.warm_compute_s == 2.0
        assert scaled.storage_read_bytes == 2000
        assert scaled.output_bytes == 200
        assert scaled.cold_init_s == 0.5  # initialisation does not scale with input

    def test_io_bound_heuristic(self):
        io_bound = WorkProfile(0.1, 0.1, 1e6, 0.34, 10.0)
        compute_bound = WorkProfile(0.1, 0.1, 1e6, 0.99, 10.0)
        assert io_bound.io_bound and not compute_bound.io_bound

    def test_only_uploader_is_io_bound_in_suite(self, registry):
        io_bound = {b.name for b in registry if b.profile().io_bound}
        assert io_bound == {"uploader"}

    def test_table4_relative_ordering(self, registry):
        """The relative compute weights of Table 4 are preserved."""
        warm = {name: registry.get(name).profile().warm_compute_s for name in TABLE3_BENCHMARKS}
        assert warm["dynamic-html"] < warm["graph-bfs"] < warm["graph-mst"] < warm["graph-pagerank"]
        assert warm["graph-pagerank"] < warm["image-recognition"] < warm["compression"]
        assert warm["compression"] < warm["video-processing"]


class TestBenchmarkBase:
    def test_benchmark_without_name_rejected(self):
        class Nameless(Benchmark):
            def generate_input(self, size, context):  # pragma: no cover - trivial
                return {}

            def run(self, event, context):  # pragma: no cover - trivial
                return {}

            def profile(self, size=InputSize.SMALL, language=Language.PYTHON):  # pragma: no cover
                return WorkProfile(0.001, 0.001, 1e6, 1.0, 10.0)

        with pytest.raises(BenchmarkError):
            Nameless()

    def test_execute_wraps_result_and_counts_bytes(self, registry, context):
        benchmark = registry.get("dynamic-html")
        event = benchmark.generate_input(InputSize.TEST, context)
        result = benchmark.execute(event, context)
        assert result.benchmark == "dynamic-html"
        assert result.output_bytes > 0
        assert "size" in result.result
        assert '"benchmark"' in result.to_json()

    def test_input_size_scale_factors(self):
        assert InputSize.TEST.scale < InputSize.SMALL.scale < InputSize.LARGE.scale

    def test_supported_sizes_default(self, registry):
        assert registry.get("uploader").supported_sizes() == (InputSize.TEST, InputSize.SMALL, InputSize.LARGE)
