"""Tests for the reporting layer and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.config import ExperimentConfig, Provider, SimulationConfig
from repro.experiments.eviction_model import EvictionModelExperiment
from repro.experiments.invocation_overhead import InvocationOverheadExperiment
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting import figures
from repro.reporting.tables import format_table, table2_platform_limits, table3_applications, table9_insights


class TestTables:
    def test_format_table_alignment_and_content(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "22" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_format_table_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_table2_has_three_commercial_providers(self):
        rows = table2_platform_limits()
        assert [row["policy"] for row in rows] == ["AWS Lambda", "Azure Functions", "Google Cloud Functions"]
        aws = rows[0]
        assert aws["time_limit_min"] == 15.0
        assert aws["deployment_limit_mb"] == 250.0
        assert "Dynamic" in rows[1]["memory_allocation"]

    def test_table3_lists_ten_applications(self):
        rows = table3_applications()
        assert len(rows) == 10
        names = {row["name"] for row in rows}
        assert "image-recognition" in names and "graph-bfs" in names
        ffmpeg_row = next(row for row in rows if row["name"] == "video-processing")
        assert ffmpeg_row["native_dependencies"] == "yes"

    def test_table9_has_fifteen_insights(self):
        rows = table9_insights()
        assert len(rows) == 15
        assert any("380" in row["insight"] or "eviction" in row["insight"].lower() for row in rows)
        assert all({"insight", "novel", "experiment"} <= set(row) for row in rows)


@pytest.fixture(scope="module")
def small_perf_cost():
    experiment = PerfCostExperiment(
        config=ExperimentConfig(samples=8, batch_size=4, seed=3), simulation=SimulationConfig(seed=3)
    )
    return experiment.run("thumbnailer", providers=(Provider.AWS,), memory_sizes=(512, 2048))


class TestFigures:
    def test_figure3_series(self, small_perf_cost):
        rows = figures.figure3_performance_series(small_perf_cost)
        assert len(rows) == 2
        assert all(row["client_time_p2_s"] <= row["client_time_median_s"] <= row["client_time_p98_s"] for row in rows)

    def test_figure4_series(self, small_perf_cost):
        rows = figures.figure4_cold_overhead_series(small_perf_cost)
        assert rows and all(row["median_ratio"] > 1.0 for row in rows)

    def test_figure5_series(self, small_perf_cost):
        cost_rows = figures.figure5a_cost_series(small_perf_cost)
        usage_rows = figures.figure5b_resource_usage_series(small_perf_cost)
        assert cost_rows and usage_rows
        assert all(row["cost_per_1M_usd"] > 0 for row in cost_rows)
        assert all(0 <= row["resource_usage_pct"] <= 100 for row in usage_rows)

    def test_figure6_series(self):
        experiment = InvocationOverheadExperiment(
            config=ExperimentConfig(samples=10, batch_size=5, seed=3), simulation=SimulationConfig(seed=3)
        )
        result = experiment.run(providers=(Provider.AWS,), repetitions=3)
        rows = figures.figure6_invocation_overhead_series(result)
        assert any(row["payload_mb"] == "model" for row in rows)
        assert any(isinstance(row["payload_mb"], float) for row in rows)

    def test_figure7_series(self):
        from repro.config import Language

        experiment = EvictionModelExperiment(
            config=ExperimentConfig(samples=5, batch_size=5, seed=3), simulation=SimulationConfig(seed=3)
        )
        result = experiment.run(
            d_init_values=(8,),
            delta_t_values=(1.0, 381.0, 761.0),
            memory_values=(128,),
            languages=(Language.PYTHON,),
            code_sizes_mb=(0.008,),
            function_times_s=(1.0,),
        )
        rows = figures.figure7_eviction_series(result)
        assert len(rows) == 3
        for row in rows:
            assert abs(row["warm_observed"] - row["warm_predicted"]) <= 1.0


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "thumbnailer" in output and "graph-bfs" in output

    def test_table_commands(self, capsys):
        for command in ("table2", "table3", "table9"):
            assert main([command]) == 0
        assert "AWS Lambda" in capsys.readouterr().out

    def test_characterize_command(self, capsys):
        assert main(["characterize", "--repetitions", "2"]) == 0
        assert "dynamic-html" in capsys.readouterr().out

    def test_perf_cost_command(self, capsys):
        assert main(["perf-cost", "graph-bfs", "--samples", "6", "--batch", "3", "--providers", "aws"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output and "Figure 5a" in output

    def test_eviction_command(self, capsys):
        assert main(["eviction"]) == 0
        assert "Fitted eviction period: 380 s" in capsys.readouterr().out

    def test_faas_vs_iaas_command(self, capsys):
        assert main(["faas-vs-iaas", "--samples", "8"]) == 0
        assert "overhead" in capsys.readouterr().out

    def test_invoc_overhead_command(self, capsys):
        assert main(["invoc-overhead", "--samples", "6", "--providers", "aws"]) == 0
        assert "payload_mb" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_log_level_flag_precedes_subcommand(self, capsys):
        assert main(["--log-level", "info", "list"]) == 0
        assert "thumbnailer" in capsys.readouterr().out

    def test_rejects_unknown_log_level(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "list"])


class TestCLIObservability:
    """The --observe/--trace-out/--timeseries-out/--profile replay flags."""

    _BASE = ["workload", "--pattern", "poisson", "--duration", "20", "--rate", "1"]

    def test_workload_observability_artifacts(self, capsys, tmp_path):
        trace_out = tmp_path / "trace.json"
        series_out = tmp_path / "series.csv"
        output = tmp_path / "summary.json"
        assert main(self._BASE + [
            "--providers", "aws",
            "--observe", "--trace-out", str(trace_out),
            "--timeseries-out", str(series_out), "--timeseries-window", "5",
            "--profile", "--output", str(output),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "lifecycle events observed (aws)" in stdout
        assert "Replay profile (aws)" in stdout
        chrome = json.loads(trace_out.read_text(encoding="utf-8"))
        assert chrome["traceEvents"] and chrome["displayTimeUnit"] == "ms"
        header = series_out.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("function,window,start_s,arrivals,")
        document = json.loads(output.read_text(encoding="utf-8"))
        replay = document["replay"]["aws"]
        assert replay["wall_clock_s"] >= 0 and replay["throughput_per_s"] >= 0
        assert set(replay["profile"]["phases"]) == {"replay"}

    def test_multi_provider_outputs_are_suffixed(self, tmp_path):
        trace_out = tmp_path / "trace.json"
        series_out = tmp_path / "series.csv"
        assert main(self._BASE + [
            "--providers", "aws", "gcp",
            "--trace-out", str(trace_out), "--timeseries-out", str(series_out),
        ]) == 0
        for provider in ("aws", "gcp"):
            assert (tmp_path / f"trace-{provider}.json").exists()
            assert (tmp_path / f"series-{provider}.csv").exists()
        assert not trace_out.exists() and not series_out.exists()

    def test_observe_rejects_sharded_replay(self, capsys):
        assert main(self._BASE + ["--providers", "aws", "--observe", "--workers", "2"]) == 2

    def test_workflow_output_carries_replay_summary(self, tmp_path, capsys):
        output = tmp_path / "workflow.json"
        assert main([
            "workflow", "--workflow", "pipeline", "--duration", "15", "--rate", "0.5",
            "--providers", "aws", "--profile", "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        replay = document["replay"]["aws"]
        assert replay["wall_clock_s"] >= 0 and replay["throughput_per_s"] >= 0
        assert set(replay["profile"]["phases"]) == {"replay"}

    def test_fault_storm_output_carries_replay_summaries(self, tmp_path, capsys):
        output = tmp_path / "storm.json"
        assert main([
            "fault-storm", "--duration", "60", "--rate", "6",
            "--outage-start", "15", "--outage-duration", "5", "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["variants"]
        for variant in document["variants"].values():
            replay = variant["replay"]
            assert replay["wall_clock_s"] >= 0 and replay["throughput_per_s"] >= 0
