PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test compile ci bench bench-smoke workload workflow

## tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

## byte-compile the library as a syntax gate
compile:
	$(PYTHON) -m compileall -q src

## what CI runs
ci: compile test bench-smoke

## regenerate all paper figures/tables (pytest-benchmark harness)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

## fast scheduler-regression gate: 10k-invocation replay under a time budget
bench-smoke:
	$(PYTHON) benchmarks/smoke_replay.py

## quick trace-driven workload replay demo
workload:
	$(PYTHON) -m repro.cli workload --pattern mixed --duration 300 --rate 2

## quick DAG workflow replay demo (chain / fan-out / branch compositions)
workflow:
	$(PYTHON) -m repro.cli workflow --workflow pipeline --duration 300 --rate 1
