PYTHON ?= python
SMOKE_WORKERS ?= 2
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-slow test-cov compile lint ci ci-golden check-regression \
	bench bench-smoke bench-overload bench-fault-storm bench-chaos \
	bench-throughput bench-observability bench-population regen-golden \
	docs docs-cli workload workflow population

## tier-1 test suite (slow-marked tests are deselected; see test-slow)
test:
	$(PYTHON) -m pytest -x -q

## tier-1 suite with the coverage gate CI enforces (>=80% on stats +
## parallel + faults + resilience + observe).  Falls back to the plain
## tier-1 run when pytest-cov is not installed, so `make ci` works in
## minimal environments too.
test-cov:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -x -q \
			--cov=repro.stats --cov=repro.parallel \
			--cov=repro.faults --cov=repro.resilience \
			--cov=repro.observe --cov=repro.columnar \
			--cov-report=term-missing --cov-fail-under=80; \
	else \
		echo "pytest-cov not installed; running tier-1 tests without the coverage gate"; \
		$(PYTHON) -m pytest -x -q; \
	fi

## long-running tests only (large-scale parallel equivalence, ...)
test-slow:
	$(PYTHON) -m pytest -x -q -m slow

## byte-compile the library as a syntax gate
compile:
	$(PYTHON) -m compileall -q src

## critical-rule lint gate (see ruff.toml); skipped when ruff is absent
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint gate"; \
	fi

## intentionally regenerate the golden-trace fixtures (commit the diff!)
regen-golden:
	$(PYTHON) tests/golden/builder.py

## golden-drift gate: regenerating the fixtures must be a no-op, so fixture
## drift can never land silently
ci-golden: regen-golden
	git diff --exit-code tests/golden/

## perf-regression gate: emitted BENCH_*.json vs committed baselines (+-25%)
check-regression:
	$(PYTHON) benchmarks/check_regression.py

## regenerate the CLI reference from the argparse definition
docs-cli:
	$(PYTHON) tools/gen_cli_docs.py

## docs gate: the generated CLI reference must be diff-clean (the ci-golden
## pattern applied to documentation), every markdown link must resolve, and
## every runnable cookbook snippet must execute
docs: docs-cli
	git diff --exit-code docs/cli.md
	$(PYTHON) tools/check_links.py
	$(PYTHON) -m pytest tests/test_docs_examples.py -q

## what CI runs — the workflow invokes these same targets, one per step,
## in this order, so local `make ci` and CI can never drift
ci: compile lint test-cov test-slow bench-smoke bench-overload bench-fault-storm bench-chaos bench-throughput bench-observability check-regression ci-golden docs

## regenerate all paper figures/tables (pytest-benchmark harness)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

## fast scheduler-regression gate: 10k replay + workflow + sharded +
## overloaded equivalence checks under a time budget (emits BENCH_smoke.json)
bench-smoke:
	$(PYTHON) benchmarks/smoke_replay.py --workers $(SMOKE_WORKERS)

## overload sweep benchmark (emits BENCH_overload_sweep.json)
bench-overload:
	$(PYTHON) -m pytest benchmarks/bench_overload_sweep.py -q -s

## fault-storm / metastable-failure benchmark (emits BENCH_fault_storm.json)
bench-fault-storm:
	$(PYTHON) -m pytest benchmarks/bench_fault_storm.py -q -s

## chaos replay benchmark: supervision overhead (<=5%) + crash-recovery
## wall clock under an injected worker kill (emits BENCH_chaos_replay.json)
bench-chaos:
	$(PYTHON) -m pytest benchmarks/bench_chaos_replay.py -q -s

## 100k trace + workflow throughput benchmarks (refresh the BENCH jsons the
## perf-regression gate compares — a gated benchmark CI never re-ran would
## be comparing the committed artifact against itself)
bench-throughput:
	$(PYTHON) -m pytest benchmarks/bench_workload_throughput.py benchmarks/bench_workflow_throughput.py -q

## pure-observer overhead gate: detached hooks <=1%, attached observers
## <=10% on the 100k trace (emits BENCH_observability.json)
bench-observability:
	$(PYTHON) -m pytest benchmarks/bench_observability.py -q -s

## million-function population replay (multi-minute; emits
## BENCH_population.json — commit the refreshed artifact, check-regression
## gates it against baselines.json like the other committed-artifact tiers)
bench-population:
	$(PYTHON) -m pytest benchmarks/bench_population_replay.py -q -s

## quick trace-driven workload replay demo
workload:
	$(PYTHON) -m repro.cli workload --pattern mixed --duration 300 --rate 2

## quick DAG workflow replay demo (chain / fan-out / branch compositions)
workflow:
	$(PYTHON) -m repro.cli workflow --workflow pipeline --duration 300 --rate 1

## quick multi-tenant population replay demo (synthetic Zipf/diurnal/burst)
population:
	$(PYTHON) -m repro.cli population --functions 2000 --duration 300 --rate 50 --workers 2
