PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-slow compile ci bench bench-smoke coverage regen-golden workload workflow

## tier-1 test suite (slow-marked tests are deselected; see test-slow)
test:
	$(PYTHON) -m pytest -x -q

## long-running tests only (large-scale parallel equivalence, ...)
test-slow:
	$(PYTHON) -m pytest -x -q -m slow

## byte-compile the library as a syntax gate
compile:
	$(PYTHON) -m compileall -q src

## coverage gate: >=80% on the stats + parallel layers (needs pytest-cov)
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q -m "not slow" \
			--cov=repro.stats --cov=repro.parallel \
			--cov-report=term-missing --cov-fail-under=80; \
	else \
		echo "pytest-cov not installed; skipping coverage gate"; \
	fi

## intentionally regenerate the golden-trace fixtures (commit the diff!)
regen-golden:
	$(PYTHON) tests/golden/builder.py

## what CI runs
ci: compile test test-slow coverage bench-smoke

## regenerate all paper figures/tables (pytest-benchmark harness)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

## fast scheduler-regression gate: 10k-invocation replay under a time budget
bench-smoke:
	$(PYTHON) benchmarks/smoke_replay.py

## quick trace-driven workload replay demo
workload:
	$(PYTHON) -m repro.cli workload --pattern mixed --duration 300 --rate 2

## quick DAG workflow replay demo (chain / fan-out / branch compositions)
workflow:
	$(PYTHON) -m repro.cli workflow --workflow pipeline --duration 300 --rate 1
