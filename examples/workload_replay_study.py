#!/usr/bin/env python3
"""Workload replay study: identical traffic, three providers.

Builds a mixed-traffic scenario (Poisson web API, bursty thumbnailer,
diurnal archiver), synthesizes one trace, and replays it through the
event-queue engine on each simulated provider.  Because the trace is
identical, differences in cold-start rate, tail latency and cost are
attributable to the platforms' eviction and sandbox-sharing policies.
"""

from __future__ import annotations

from repro.config import ExperimentConfig, Provider, SimulationConfig
from repro.experiments.workload_replay import WorkloadDeployment, WorkloadReplayExperiment
from repro.reporting.tables import format_table
from repro.workload import BurstyArrivals, DiurnalArrivals, FunctionTraffic, PoissonArrivals, Scenario

DURATION_S = 1800.0


def main() -> None:
    scenario = Scenario(
        name="webshop",
        duration_s=DURATION_S,
        traffic=(
            FunctionTraffic("web-api", PoissonArrivals(rate_per_s=4.0)),
            FunctionTraffic(
                "thumbnails",
                BurstyArrivals(on_rate_per_s=6.0, mean_on_s=60.0, mean_off_s=180.0),
            ),
            FunctionTraffic(
                "archiver",
                DiurnalArrivals(mean_rate_per_s=0.5, amplitude=0.9, period_s=DURATION_S),
            ),
        ),
    )
    deployments = (
        WorkloadDeployment("web-api", "dynamic-html", 256),
        WorkloadDeployment("thumbnails", "thumbnailer", 1024),
        WorkloadDeployment("archiver", "compression", 1024),
    )
    experiment = WorkloadReplayExperiment(
        config=ExperimentConfig(samples=1, seed=2024), simulation=SimulationConfig(seed=2024)
    )
    result = experiment.run(
        providers=(Provider.AWS, Provider.GCP, Provider.AZURE),
        deployments=deployments,
        scenario=scenario,
    )

    print(f"scenario {scenario.name!r}: {result.trace_invocations} invocations "
          f"over {result.trace_duration_s:.0f}s of simulated time\n")
    print(format_table(result.to_rows()))
    print("\n" + format_table(result.summary_rows()))


if __name__ == "__main__":
    main()
