#!/usr/bin/env python3
"""Container-eviction study: recover the AWS eviction policy and use it.

Reproduces Section 6.5: submit batches of invocations, wait, count surviving
warm containers, fit the ``D_warm = D_init * 2^-floor(dT/380s)`` model, and
then apply Equation 2 to plan a container-warming strategy that avoids cold
starts without provisioned concurrency.
"""

from __future__ import annotations

from repro.config import ExperimentConfig, Language, Provider, SimulationConfig
from repro.experiments.eviction_model import EvictionModelExperiment
from repro.models.eviction import optimal_initial_batch
from repro.reporting.figures import figure7_eviction_series
from repro.reporting.tables import format_table


def main() -> None:
    experiment = EvictionModelExperiment(
        config=ExperimentConfig(samples=10, batch_size=10, seed=13),
        simulation=SimulationConfig(seed=13),
    )
    result = experiment.run(
        provider=Provider.AWS,
        d_init_values=(8, 12, 20),
        memory_values=(128, 1536),
        languages=(Language.PYTHON, Language.NODEJS),
        code_sizes_mb=(0.008, 250.0),
        function_times_s=(1.0, 10.0),
    )

    print("# Warm-container survival (Figure 7, first 20 rows)")
    print(format_table(figure7_eviction_series(result)[:20]))

    model = result.model
    assert model is not None
    print(f"\nfitted eviction period: {model.period_s:.0f} s (R^2 = {model.r_squared:.4f})")
    print("prediction for 20 containers after 0/380/760/1140 s:",
          [model.predict(20, dt) for dt in (0.0, 380.0, 760.0, 1140.0)])

    # Equation 2: how many invocations keep n instances warm for a workload
    # with runtime t, without paying for provisioned concurrency.
    for instances, runtime in ((100, 3.8), (500, 1.0), (50, 30.0)):
        batch = optimal_initial_batch(instances, runtime, period_s=model.period_s)
        print(f"keep {instances:4d} instances of a {runtime:5.1f}s function warm -> "
              f"re-invoke a batch of {batch} every {model.period_s:.0f} s")


if __name__ == "__main__":
    main()
