#!/usr/bin/env python3
"""Quickstart: deploy a benchmark on a simulated FaaS platform and invoke it.

Mirrors the basic SeBS workflow: build the code package, create the function,
create an HTTP trigger, invoke it (cold and warm) and read the provider logs
and billing information.
"""

from __future__ import annotations

import numpy as np

from repro import InputSize, Language, Provider, SimulationConfig, create_platform, deploy_benchmark
from repro.benchmarks.base import BenchmarkContext
from repro.benchmarks.registry import get_benchmark
from repro.config import TriggerType
from repro.faas.platform import LogQueryType


def main() -> None:
    # 1. Create a simulated AWS Lambda deployment (fully offline, seeded).
    platform = create_platform(Provider.AWS, SimulationConfig(seed=2024), execute_kernels=True)

    # 2. Package and deploy the thumbnailer benchmark with 1024 MB of memory.
    function_name = deploy_benchmark(
        platform, "thumbnailer", memory_mb=1024, language=Language.PYTHON, input_size=InputSize.SMALL
    )
    print(f"deployed {function_name!r} on {platform.name}")
    print(f"  package size: {platform.get_function(function_name).package.size_mb:.1f} MB")

    # 3. Generate a real invocation payload: the input generator uploads a
    #    synthetic image to the platform's object storage, exactly as the
    #    original toolkit uploads benchmark inputs to a cloud bucket.
    benchmark = get_benchmark("thumbnailer")
    context = BenchmarkContext(storage=platform.object_store, rng=np.random.default_rng(7))
    event = benchmark.generate_input(InputSize.SMALL, context)

    # 4. Invoke through the HTTP trigger: the first call is a cold start.
    trigger = platform.create_trigger(function_name, TriggerType.HTTP)
    for attempt in range(3):
        record = trigger.invoke(event)
        print(
            f"  invocation {attempt + 1}: {record.start_type.value:5s} "
            f"client={record.client_time_s * 1000:7.1f} ms  "
            f"benchmark={record.benchmark_time_s * 1000:7.1f} ms  "
            f"cost=${record.cost.total * 1e6:.2f}/1M  "
            f"thumbnail={record.output.get('thumbnail_size')}"
        )

    # 5. Query provider-side logs, as `sebs.py` does after an experiment.
    times = platform.query_logs(function_name, LogQueryType.TIME)
    memory = platform.query_logs(function_name, LogQueryType.MEMORY)
    print(f"  provider log: {len(times)} invocations, median time {np.median(times) * 1000:.1f} ms, "
          f"median memory {np.median(memory):.0f} MB")


if __name__ == "__main__":
    main()
