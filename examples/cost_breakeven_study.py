#!/usr/bin/env python3
"""FaaS-vs-IaaS break-even study (Table 5 + Table 6).

Measures warm performance of a set of benchmarks on the simulated AWS Lambda
and on a t2.micro-class VM (with local and S3-like storage), then computes
the request rate at which the pay-as-you-go function becomes more expensive
than renting the VM around the clock.
"""

from __future__ import annotations

import argparse

from repro.config import ExperimentConfig, Provider, SimulationConfig
from repro.experiments.cost_analysis import CostAnalysis
from repro.experiments.faas_vs_iaas import FaasVsIaasExperiment
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="+", default=["uploader", "thumbnailer", "graph-bfs"])
    parser.add_argument("--samples", type=int, default=30)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    config = ExperimentConfig(samples=args.samples, batch_size=max(5, args.samples // 3), seed=args.seed)
    simulation = SimulationConfig(seed=args.seed)
    table5 = FaasVsIaasExperiment(config=config, simulation=simulation)
    perf_cost = PerfCostExperiment(config=config, simulation=simulation)

    table5_rows = []
    table6_rows = []
    for name in args.benchmarks:
        comparison = table5.run_benchmark(name)
        table5_rows.append(comparison.to_row())
        result = perf_cost.run(name, providers=(Provider.AWS,), memory_sizes=(512, 1024, 2048))
        points = CostAnalysis(result).break_even(
            iaas_local_requests_per_hour=comparison.iaas_local_requests_per_hour,
            iaas_cloud_requests_per_hour=comparison.iaas_cloud_requests_per_hour,
        )
        for label, point in points.items():
            row = point.to_row()
            row["kind"] = label
            table6_rows.append(row)

    print("# FaaS vs IaaS warm performance (Table 5)")
    print(format_table(table5_rows))
    print("\n# Break-even request rates (Table 6)")
    print(format_table(table6_rows))
    print(
        "\nReading: below the break-even rate the serverless deployment is cheaper; "
        "above it, a fully utilised VM wins — provided it can sustain the rate."
    )


if __name__ == "__main__":
    main()
