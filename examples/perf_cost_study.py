#!/usr/bin/env python3
"""Perf-Cost study: compare providers and memory sizes for one application.

Reproduces the core of Section 6.2/6.3 for a single benchmark: warm and cold
performance across AWS, GCP and Azure (Figure 3/4) plus the cost of a million
invocations per configuration (Figure 5a), printed as plain-text tables.
"""

from __future__ import annotations

import argparse

from repro.config import ExperimentConfig, Provider, SimulationConfig
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.figures import (
    figure3_performance_series,
    figure4_cold_overhead_series,
    figure5a_cost_series,
)
from repro.reporting.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="thumbnailer")
    parser.add_argument("--samples", type=int, default=40)
    parser.add_argument("--memory", type=int, nargs="+", default=[256, 1024, 2048])
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    experiment = PerfCostExperiment(
        config=ExperimentConfig(samples=args.samples, batch_size=max(5, args.samples // 4), seed=args.seed),
        simulation=SimulationConfig(seed=args.seed),
    )
    result = experiment.run(
        args.benchmark,
        providers=(Provider.AWS, Provider.GCP, Provider.AZURE),
        memory_sizes=tuple(args.memory),
    )

    print(f"# Warm performance of {args.benchmark} (Figure 3)")
    print(format_table(figure3_performance_series(result)))
    print(f"\n# Cold-start overhead of {args.benchmark} (Figure 4)")
    print(format_table(figure4_cold_overhead_series(result)))
    print(f"\n# Cost of one million invocations (Figure 5a)")
    print(format_table(figure5a_cost_series(result)))

    best = result.best_configuration(Provider.AWS)
    metrics = best.warm_metrics()
    print(
        f"\nBest AWS configuration: {best.memory_mb} MB — "
        f"median warm client time {metrics.client_time.median * 1000:.1f} ms, "
        f"95% CI [{metrics.client_time.confidence_intervals[0.95].low * 1000:.1f}, "
        f"{metrics.client_time.confidence_intervals[0.95].high * 1000:.1f}] ms"
    )


if __name__ == "__main__":
    main()
