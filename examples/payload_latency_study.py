#!/usr/bin/env python3
"""Invocation-overhead study: latency versus payload size (Figure 6).

Synchronises the client and cloud clocks with the minimum-RTT protocol, then
sweeps the invocation payload from 1 kB to 5.9 MB for cold and warm starts on
all three providers and fits the linear latency model per series.
"""

from __future__ import annotations

from repro.config import ExperimentConfig, Provider, SimulationConfig, StartType
from repro.experiments.invocation_overhead import InvocationOverheadExperiment
from repro.reporting.figures import figure6_invocation_overhead_series
from repro.reporting.tables import format_table


def main() -> None:
    experiment = InvocationOverheadExperiment(
        config=ExperimentConfig(samples=30, batch_size=10, seed=5),
        simulation=SimulationConfig(seed=5),
    )
    providers = (Provider.AWS, Provider.GCP, Provider.AZURE)
    result = experiment.run(providers=providers, repetitions=6)

    print("# Invocation overhead vs payload size (Figure 6)")
    print(format_table(figure6_invocation_overhead_series(result)))

    print("\n# Clock-drift estimates used to align client and cloud timestamps")
    for provider, estimate in result.drift_estimates.items():
        print(f"  {provider.value:5s}: offset {estimate.offset_s * 1000:+8.2f} ms, "
              f"min RTT {estimate.min_rtt_s * 1000:6.2f} ms after {estimate.exchanges} exchanges")

    print("\n# Linearity of the latency(payload) relationship")
    for provider in providers:
        for start_type in (StartType.WARM, StartType.COLD):
            try:
                model = result.model(provider, start_type)
            except Exception:
                continue
            verdict = "linear" if model.is_linear else "erratic"
            print(f"  {provider.value:5s} {start_type.value:4s}: adj R^2 = {model.fit.adjusted_r_squared:5.2f} "
                  f"({verdict}), +{model.latency_per_mb_s * 1000:.0f} ms per MB")


if __name__ == "__main__":
    main()
