#!/usr/bin/env python3
"""Workflow pipeline study: composed invocations, three providers.

Builds a custom media-processing workflow — an HTTP-triggered ingest
endpoint, a storage-event-triggered thumbnailer fanning out over the
uploaded images (dynamic map), and a queue-triggered archiver fan-in —
and replays the identical arrival stream on each simulated provider.

Because the arrivals are identical, differences in end-to-end latency and
its critical-path decomposition (compute vs cold start vs trigger
propagation) are attributable to the platforms: cold-start-heavy providers
lose time initialising sandboxes mid-pipeline, while slow trigger
propagation shows up even when every stage runs warm.
"""

from __future__ import annotations

from repro.config import ExperimentConfig, Provider, SimulationConfig, TriggerType
from repro.experiments.workflow_replay import WorkflowReplayExperiment
from repro.reporting.tables import format_table
from repro.workflows import WorkflowFunction, WorkflowSpec, WorkflowStage

DURATION_S = 900.0
ARRIVAL_RATE_PER_S = 0.8


def build_spec() -> tuple[WorkflowSpec, tuple[WorkflowFunction, ...]]:
    spec = WorkflowSpec(
        name="media-pipeline",
        stages=(
            WorkflowStage("ingest", "media-ingest"),
            WorkflowStage(
                "thumbnail",
                "media-thumbnail",
                after=("ingest",),
                trigger=TriggerType.STORAGE,
                map_items="images",
            ),
            WorkflowStage(
                "archive",
                "media-archive",
                after=("thumbnail",),
                trigger=TriggerType.QUEUE,
            ),
        ),
    )
    functions = (
        WorkflowFunction("media-ingest", "dynamic-html", 256),
        WorkflowFunction("media-thumbnail", "thumbnailer", 1024),
        WorkflowFunction("media-archive", "compression", 1024),
    )
    return spec, functions


def main() -> None:
    spec, functions = build_spec()
    experiment = WorkflowReplayExperiment(
        config=ExperimentConfig(samples=1, seed=2026), simulation=SimulationConfig(seed=2026)
    )
    result = experiment.run(
        providers=(Provider.AWS, Provider.GCP, Provider.AZURE),
        spec=spec,
        deployments=functions,
        duration_s=DURATION_S,
        rate_per_s=ARRIVAL_RATE_PER_S,
        payload={"images": ["a.png", "b.png", "c.png", "d.png"]},
    )

    print(f"workflow {result.workflow_name!r}: {result.executions} executions "
          f"({result.per_provider[Provider.AWS].invocation_total} constituent "
          f"invocations per provider) over {DURATION_S:.0f}s of simulated time\n")
    print(format_table(result.to_rows()))
    print("\n" + format_table(result.summary_rows()))

    aws = result.per_provider[Provider.AWS]
    slowest = max(aws.executions, key=lambda execution: execution.end_to_end_s)
    print(f"\nslowest AWS execution ({slowest.end_to_end_s * 1000:.0f} ms end-to-end):")
    print(format_table([slowest.to_row()]))


if __name__ == "__main__":
    main()
