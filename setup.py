"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables the
legacy editable-install path (``pip install -e . --no-use-pep517``) on
machines where PEP 517 builds are unavailable offline.
"""

from setuptools import setup

setup()
