"""Ordinary least squares with the goodness-of-fit metrics used in the paper.

Two analyses rely on a linear model: the invocation-overhead experiment fits
latency against payload size and reports adjusted R² values of 0.89-0.99
(Section 6.4 Q2), and the container-eviction model is validated with an R²
test above 0.99 (Section 6.5 Q2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ModelFitError


@dataclass(frozen=True)
class LinearFit:
    """Result of fitting ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    adjusted_r_squared: float
    n_samples: int

    def predict(self, x: float | Sequence[float]) -> float | np.ndarray:
        """Evaluate the fitted line at ``x`` (scalar or vector)."""
        values = np.asarray(x, dtype=float)
        result = self.slope * values + self.intercept
        if np.isscalar(x) or (hasattr(values, "ndim") and values.ndim == 0):
            return float(result)
        return result

    def residuals(self, x: Sequence[float], y: Sequence[float]) -> np.ndarray:
        """Return ``y - prediction`` for the supplied points."""
        return np.asarray(y, dtype=float) - self.predict(np.asarray(x, dtype=float))


def r_squared(observed: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination between observations and predictions."""
    obs = np.asarray(observed, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if obs.size != pred.size or obs.size == 0:
        raise ModelFitError("observed and predicted series must be non-empty and equally sized")
    ss_res = float(np.sum((obs - pred) ** 2))
    ss_tot = float(np.sum((obs - np.mean(obs)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit a least-squares line ``y = a*x + b`` and compute (adjusted) R²."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size != ys.size:
        raise ModelFitError("x and y must have the same length")
    if xs.size < 2:
        raise ModelFitError("linear fit requires at least two points")
    if np.allclose(xs, xs[0]):
        raise ModelFitError("linear fit requires at least two distinct x values")
    slope, intercept = np.polyfit(xs, ys, 1)
    predictions = slope * xs + intercept
    r2 = r_squared(ys, predictions)
    n = int(xs.size)
    # One predictor: adjust for the degrees of freedom consumed by the slope.
    if n > 2:
        adjusted = 1.0 - (1.0 - r2) * (n - 1) / (n - 2)
    else:
        adjusted = r2
    return LinearFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r2),
        adjusted_r_squared=float(adjusted),
        n_samples=n,
    )
