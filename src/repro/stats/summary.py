"""Distribution summaries used when reporting experiment results.

The paper's figures report medians and whiskers spanning the 2nd to 98th
percentile (Figure 3), cold/warm ratios (Figure 4), and memory percentiles
(Section 6.2 Q3 reports the 95th and 99th percentile of memory consumption).
``DistributionSummary`` packages those statistics in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .confidence import ConfidenceInterval, nonparametric_ci

#: Percentiles reported by default: whisker range used by Figure 3 plus the
#: quartiles and tail percentiles quoted in the reliability analysis.
DEFAULT_PERCENTILES: tuple[float, ...] = (2.0, 25.0, 50.0, 75.0, 95.0, 98.0, 99.0)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a set of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    percentiles: Mapping[float, float]
    confidence_intervals: Mapping[float, ConfidenceInterval] = field(default_factory=dict)

    @property
    def coefficient_of_variation(self) -> float:
        """Relative dispersion (std / mean); 0 when the mean is 0."""
        if self.mean == 0:
            return 0.0
        return self.std / abs(self.mean)

    def percentile(self, which: float) -> float:
        """Return a stored percentile, raising ``KeyError`` if absent."""
        return self.percentiles[which]

    @property
    def whisker_low(self) -> float:
        """Lower whisker (2nd percentile) as drawn in Figure 3."""
        return self.percentiles.get(2.0, self.minimum)

    @property
    def whisker_high(self) -> float:
        """Upper whisker (98th percentile) as drawn in Figure 3."""
        return self.percentiles.get(98.0, self.maximum)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "percentiles": {str(k): v for k, v in self.percentiles.items()},
            "confidence_intervals": {
                str(level): {"low": ci.low, "high": ci.high}
                for level, ci in self.confidence_intervals.items()
            },
        }


def summarize(
    samples: Sequence[float],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    confidence_levels: Sequence[float] = (0.95, 0.99),
) -> DistributionSummary:
    """Summarize measurements with percentiles and median CIs."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot summarize an empty sample set")
    pct_values = np.percentile(data, list(percentiles)) if percentiles else []
    intervals = {level: nonparametric_ci(data, level) for level in confidence_levels}
    return DistributionSummary(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        median=float(np.median(data)),
        percentiles={float(p): float(v) for p, v in zip(percentiles, pct_values)},
        confidence_intervals=intervals,
    )
