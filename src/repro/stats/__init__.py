"""Statistical methodology used by SeBS experiments.

The paper follows established guidelines for scientific benchmarking of
parallel codes (Hoefler & Belli, SC'15): it reports medians with
non-parametric confidence intervals at the 95% and 99% levels, chooses the
number of samples so that the interval stays within 5% of the median, and
uses percentile-based summaries rather than means to resist outliers.

This package implements those building blocks plus the linear-regression
machinery (with adjusted R²) used by the invocation-overhead model and the
container-eviction model fit.
"""

from .confidence import ConfidenceInterval, nonparametric_ci
from .regression import LinearFit, fit_linear
from .sampling import required_samples_for_ci
from .streaming import (
    MergeableReservoir,
    P2Quantile,
    ReservoirSample,
    StreamingMoments,
    StreamingSummary,
)
from .summary import DistributionSummary, summarize

__all__ = [
    "ConfidenceInterval",
    "nonparametric_ci",
    "LinearFit",
    "fit_linear",
    "required_samples_for_ci",
    "MergeableReservoir",
    "P2Quantile",
    "ReservoirSample",
    "StreamingMoments",
    "StreamingSummary",
    "DistributionSummary",
    "summarize",
]
