"""Adaptive sample-size selection.

SeBS chooses the number of samples so that the non-parametric confidence
interval of the client time lies within 5% of the median (Section 4.1 and
6.2).  ``required_samples_for_ci`` implements that stopping rule over an
incrementally growing sample set, which experiments use to decide when they
have gathered enough invocations.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..exceptions import ConfigurationError
from .confidence import nonparametric_ci


def required_samples_for_ci(
    draw: Callable[[int], Sequence[float]],
    level: float = 0.95,
    target_relative_width: float = 0.05,
    initial_samples: int = 20,
    growth_step: int = 20,
    max_samples: int = 2000,
) -> tuple[int, list[float]]:
    """Grow a sample set until the median CI is within the target width.

    Parameters
    ----------
    draw:
        Callable producing ``n`` new measurements when asked; experiments pass
        a closure that performs ``n`` further invocations.
    level:
        Confidence level of the interval used for the stopping rule.
    target_relative_width:
        Maximum allowed deviation of each CI endpoint from the median,
        relative to the median (the paper uses 0.05).
    initial_samples, growth_step, max_samples:
        Sampling schedule.  The rule stops at ``max_samples`` even if the
        interval has not converged — multi-tenant noise can make convergence
        impossible, which the paper acknowledges.

    Returns
    -------
    A tuple of the total number of samples collected and the measurements.
    """
    if initial_samples <= 0 or growth_step <= 0:
        raise ConfigurationError("sampling schedule values must be positive")
    if max_samples < initial_samples:
        raise ConfigurationError("max_samples must be at least initial_samples")

    samples: list[float] = list(draw(initial_samples))
    while True:
        interval = nonparametric_ci(samples, level)
        if interval.within(target_relative_width):
            return len(samples), samples
        if len(samples) >= max_samples:
            return len(samples), samples
        request = min(growth_step, max_samples - len(samples))
        samples.extend(draw(request))
