"""Constant-memory streaming statistics for million-invocation replays.

The workload engine's streaming-aggregation mode cannot afford to keep every
sample (a million-invocation trace would otherwise materialise a million
latency floats per function just to report a median).  This module provides
the O(1)-per-sample building blocks:

* :class:`StreamingMoments` — Welford's online algorithm for count, mean,
  variance, min and max (numerically stable single pass);
* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac (CACM 1985),
  which tracks one quantile with five markers and parabolic interpolation,
  no samples stored;
* :class:`ReservoirSample` — Vitter's algorithm R, a fixed-size uniform
  sample of the stream for diagnostics that genuinely need raw values;
* :class:`MergeableReservoir` — a *bottom-k tagged* uniform sample: every
  observation receives a deterministic pseudo-random priority tag and the
  reservoir keeps the ``k`` smallest tags, so the union of two reservoirs
  is itself the reservoir of the concatenated streams — merge is exact,
  associative, commutative and independent of merge order;
* :class:`StreamingSummary` — the bundle the engine uses: moments plus a
  mergeable reservoir answering percentile queries, convertible to the same
  :class:`~repro.stats.summary.DistributionSummary` shape the exact path
  produces (confidence intervals are omitted — they require the full
  sample).

Everything except the reservoirs is closed-form deterministic; the
reservoirs use their own seeded generators so they never perturb the
simulation's random streams.

**Mergeability** (sharded parallel replay, :mod:`repro.parallel`): moments
merge with the Chan et al. parallel-variance update — ``count`` / ``min`` /
``max`` combine exactly and associatively, ``mean`` / ``variance`` up to
float associativity.  P² markers cannot be merged (the class is kept for
single-stream use), which is why :class:`StreamingSummary` answers
percentiles from a :class:`MergeableReservoir` instead: reservoir union is
exact, associative and commutative, so merged summaries are deterministic
under any merge order.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.rng import derive_generator
from .summary import DEFAULT_PERCENTILES, DistributionSummary

#: Samples kept by the mergeable reservoir a StreamingSummary feeds; merged
#: percentile estimates are exact below this count, sampled above it.
DEFAULT_RESERVOIR_CAPACITY = 1024


class StreamingMoments:
    """Welford single-pass count / mean / variance / min / max."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def add_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations, bit-identical to ``add`` per element.

        This is *not* a two-pass vectorized moment update: the columnar
        replay path requires byte-identical state against the scalar path,
        so the Welford recurrence is applied element by element in stream
        order — only the attribute traffic is hoisted out of the loop.
        """
        count = self.count
        mean = self.mean
        m2 = self._m2
        minimum = self.minimum
        maximum = self.maximum
        for x in values:
            count += 1
            delta = x - mean
            mean += delta / count
            m2 += delta * (x - mean)
            if x < minimum:
                minimum = x
            if x > maximum:
                maximum = x
        self.count = count
        self.mean = mean
        self._m2 = m2
        self.minimum = minimum
        self.maximum = maximum

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 for fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def merge(self, other: "StreamingMoments") -> None:
        """Fold ``other`` into this accumulator (Chan et al. parallel update).

        ``count``, ``minimum`` and ``maximum`` combine exactly (integer sum,
        float min/max — associative and commutative); ``mean`` and the second
        moment combine up to float associativity, the same rounding class as
        summing the stream in a different order.  An empty side is a strict
        no-op on the other, so ``merge`` has an identity element.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * (other.count / total)
        self._m2 += other._m2 + delta * delta * (self.count * other.count / total)
        self.count = total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the minimum, the target quantile, the two
    mid-quantiles and the maximum; marker heights move by parabolic (or, at
    the boundary, linear) interpolation as observations arrive.  Memory is
    constant and the estimate converges to the true quantile for stationary
    streams.  Until five observations have arrived the exact small-sample
    quantile is returned.
    """

    __slots__ = ("p", "_initial", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("quantile must lie in [0, 1]")
        self.p = p
        self._initial: list[float] = []
        self._q: list[float] = []
        self._n: list[int] = []
        self._np: list[float] = []
        self._dn: list[float] = []

    @property
    def count(self) -> int:
        return self._n[4] if self._q else len(self._initial)

    def add(self, x: float) -> None:
        if not self._q:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                p = self.p
                self._q = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
                self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
            return
        q, n = self._q, self._n
        # Locate the cell containing x, extending the extremes if needed.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # Adjust the three interior markers if they drifted off position.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                sign = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, sign)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self._q:
            return self._q[2]
        if not self._initial:
            raise ConfigurationError("no samples to estimate a quantile from")
        return float(np.percentile(self._initial, self.p * 100.0))


class ReservoirSample:
    """Fixed-size uniform random sample of a stream (Vitter's algorithm R).

    Uses a private seeded generator so that sampling never perturbs the
    simulation's named random streams — replays stay bit-identical whether
    or not a reservoir is attached.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ConfigurationError("reservoir capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, x: float) -> None:
        self.seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(x)
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._samples[slot] = x

    def values(self) -> list[float]:
        return list(self._samples)


class MergeableReservoir:
    """A fixed-size uniform sample whose union is exact (bottom-k tagging).

    Every observation is assigned a pseudo-random *priority tag* drawn from
    a generator seeded by ``(seed, key)``; the reservoir keeps the ``k``
    observations with the smallest tags.  Because membership depends only on
    an observation's own tag — never on arrival order or on which reservoir
    ingested it — the union of any number of reservoirs over disjoint
    streams is *identical* to the reservoir of the concatenated stream:

    * ``merge`` is associative and commutative (bit-identical results for
      any merge tree over the same shards — "permutation-stable");
    * each reservoir stays a uniform sample of everything it has seen
      (iid tags ⇒ the bottom-k is a uniform k-subset).

    Ties between tags are broken by ``(key, ingestion index)``, so the
    result is total-ordered and deterministic even in the astronomically
    unlikely event of equal float tags across shards.  ``key`` should be
    unique per ingesting stream (e.g. the function name) — two reservoirs
    sharing a key draw identical tag sequences, which would bias a merge.
    """

    __slots__ = ("capacity", "key", "seed", "seen", "_heap", "_rng", "_index", "_tags", "_tag_i")

    #: Tags are drawn from the generator in blocks of this size: one
    #: vectorized ``Generator.random(n)`` call yields the *identical*
    #: float sequence as ``n`` scalar ``random()`` calls, so pre-drawing
    #: changes nothing observable — it only amortizes the per-draw cost
    #: on hot ingest paths (the attached-observer budget of
    #: ``benchmarks/bench_observability.py``).
    _TAG_BLOCK = 64

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, key: str = "", seed: int = 0):
        if capacity <= 0:
            raise ConfigurationError("reservoir capacity must be positive")
        self.capacity = capacity
        self.key = key
        self.seed = int(seed)
        self.seen = 0
        #: Max-heap of (-tag, key, index, value): the root is the *largest*
        #: kept tag, evicted first when a smaller tag arrives.
        self._heap: list[tuple[float, str, int, float]] = []
        self._rng = derive_generator(self.seed, "mergeable-reservoir", key)
        self._index = 0
        self._tags = None
        self._tag_i = 0

    def add(self, x: float) -> None:
        i = self._tag_i
        tags = self._tags
        if tags is None or i == len(tags):
            # ``_tags is None`` also covers instances unpickled from a
            # pre-block-draw state: the generator resumes exactly where
            # its scalar draws left off.
            tags = self._tags = self._rng.random(self._TAG_BLOCK).tolist()
            i = 0
        tag = tags[i]
        self._tag_i = i + 1
        index = self._index
        self._index += 1
        self.seen += 1
        heap = self._heap
        if len(heap) >= self.capacity:
            root = heap[0]
            neg = -tag
            if neg < root[0]:
                # Larger tag than the largest kept one: rejected without
                # even building the entry tuple — after ``capacity``
                # ingests this is the overwhelmingly common case.
                return
            entry = (neg, self.key, index, float(x))
            if entry > root:
                # Smaller tag than the largest kept one (heap stores -tag,
                # so "greater entry" means "smaller tag" with deterministic
                # (key, index) tie-break).
                heapq.heapreplace(heap, entry)
            return
        heapq.heappush(heap, (-tag, self.key, index, float(x)))

    def add_many(self, values: Sequence[float]) -> None:
        """Ingest a batch, byte-identical to calling ``add`` per element.

        The tag-block refill, heap admission test and tie-break tuples are
        replicated op-for-op; only per-element attribute loads/stores are
        hoisted, so the reservoir state (heap contents, generator position,
        block cursor) matches the scalar ingest exactly.
        """
        i = self._tag_i
        tags = self._tags
        index = self._index
        key = self.key
        capacity = self.capacity
        heap = self._heap
        rng_random = self._rng.random
        block = self._TAG_BLOCK
        heapreplace = heapq.heapreplace
        heappush = heapq.heappush
        for x in values:
            if tags is None or i == len(tags):
                tags = self._tags = rng_random(block).tolist()
                i = 0
            tag = tags[i]
            i += 1
            this_index = index
            index += 1
            if len(heap) >= capacity:
                root = heap[0]
                neg = -tag
                if neg < root[0]:
                    continue
                entry = (neg, key, this_index, float(x))
                if entry > root:
                    heapreplace(heap, entry)
                continue
            heappush(heap, (-tag, key, this_index, float(x)))
        self._tag_i = i
        self._index = index
        self.seen += len(values)

    def merge(self, other: "MergeableReservoir") -> None:
        """Union with ``other``: keep the ``capacity`` smallest tags overall."""
        if other is self:
            raise ConfigurationError("cannot merge a reservoir with itself")
        self.seen += other.seen
        capacity = self.capacity
        for entry in other._heap:
            if len(self._heap) < capacity:
                heapq.heappush(self._heap, entry)
            elif entry > self._heap[0]:
                heapq.heapreplace(self._heap, entry)

    def entries(self) -> list[tuple[float, str, int, float]]:
        """Kept (tag, key, index, value) tuples in canonical (tag-sorted) order."""
        return sorted((-neg_tag, key, index, value) for neg_tag, key, index, value in self._heap)

    def values(self) -> list[float]:
        """Kept sample values, in canonical tag order."""
        return [value for _, _, _, value in self.entries()]

    def percentile(self, which: float) -> float:
        """Percentile estimate from the kept sample (exact while seen <= capacity)."""
        if not self._heap:
            raise ConfigurationError("no samples to estimate a percentile from")
        return float(np.percentile([entry[3] for entry in self._heap], which))

    def percentiles(self, which: Sequence[float]) -> list[float]:
        """Batched :meth:`percentile`: one vectorized query for all of ``which``.

        ``np.percentile`` with a vector of percentiles selects and
        interpolates element-wise exactly as the scalar calls would, so each
        returned value is bit-identical to ``self.percentile(q)`` — at one
        numpy dispatch instead of ``len(which)``, which is what makes
        summarizing hundreds of thousands of per-function reservoirs viable.
        """
        if not self._heap:
            raise ConfigurationError("no samples to estimate a percentile from")
        values = [entry[3] for entry in self._heap]
        return [float(v) for v in np.percentile(values, list(which))]


class StreamingSummary:
    """Single-pass replacement for :func:`repro.stats.summary.summarize`.

    Tracks Welford moments plus a :class:`MergeableReservoir` that answers
    percentile queries; :meth:`to_summary` emits a
    :class:`~repro.stats.summary.DistributionSummary` with the same shape as
    the exact path (minus confidence intervals, which need the full sample).

    Percentiles are **exact** while the stream fits the reservoir
    (``reservoir_capacity`` samples) and uniform-subsample estimates above
    that — rank error ~``sqrt(p(1-p)/capacity)``, under 1% at the default
    capacity.  Unlike marker-based estimators (P², whose five markers
    initialise from the first five observations and recover slowly when
    those are tail outliers — exactly what a trace replay's leading
    cold-start burst produces), the reservoir has no warm-up pathology, and
    it makes the summary *mergeable*: see :meth:`merge`.

    ``key`` names the stream this summary ingests (e.g. the function name).
    It seeds the reservoir's tag generator, so summaries of *different*
    streams merge without tag-stream collisions.  Two summaries ingesting
    parts of the *same* stream must use distinct keys (``fname@shard3``).
    """

    __slots__ = ("moments", "_percentiles", "_reservoir")

    def __init__(
        self,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
        key: str = "",
        seed: int = 0,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ):
        self.moments = StreamingMoments()
        wanted = dict.fromkeys(float(p) for p in percentiles)
        wanted.setdefault(50.0)  # the median is always reported
        self._percentiles = tuple(wanted)
        self._reservoir = MergeableReservoir(reservoir_capacity, key=key, seed=seed)

    @property
    def count(self) -> int:
        return self.moments.count

    def add(self, x: float) -> None:
        self.moments.add(x)
        self._reservoir.add(x)

    def add_many(self, values: Sequence[float]) -> None:
        """Batch ingest, byte-identical to ``add`` per element.

        Moments and reservoir share no state, so folding the whole batch
        into each component in turn produces exactly the state of
        interleaved scalar ``add`` calls.
        """
        self.moments.add_many(values)
        self._reservoir.add_many(values)

    def percentile(self, which: float) -> float:
        return self._reservoir.percentile(float(which))

    def merge(self, other: "StreamingSummary") -> None:
        """Fold ``other`` into this summary.

        Counts, min and max merge exactly; mean/variance up to float
        associativity; percentiles via the reservoir union, which is
        *permutation-stable* — any merge order over the same shards yields
        bit-identical state.  Merging summaries over disjoint shards of a
        stream is equivalent to having ingested the concatenated stream
        (exactly, for the reservoir; up to float associativity, for the
        moments).
        """
        if other is self:
            raise ConfigurationError("cannot merge a summary with itself")
        self.moments.merge(other.moments)
        self._reservoir.merge(other._reservoir)
        merged = dict.fromkeys(self._percentiles)
        merged.update(dict.fromkeys(other._percentiles))
        self._percentiles = tuple(merged)

    def to_summary(self) -> DistributionSummary:
        if self.moments.count == 0:
            raise ConfigurationError("cannot summarize an empty sample set")
        # One batched reservoir query covers the median too: __init__ and
        # merge() both guarantee 50.0 is among the tracked percentiles.
        wanted = self._percentiles
        estimates = dict(zip(wanted, self._reservoir.percentiles(wanted)))
        return DistributionSummary(
            count=self.moments.count,
            mean=self.moments.mean,
            std=self.moments.std,
            minimum=self.moments.minimum,
            maximum=self.moments.maximum,
            median=estimates[50.0],
            percentiles=estimates,
            confidence_intervals={},
        )
