"""Constant-memory streaming statistics for million-invocation replays.

The workload engine's streaming-aggregation mode cannot afford to keep every
sample (a million-invocation trace would otherwise materialise a million
latency floats per function just to report a median).  This module provides
the O(1)-per-sample building blocks:

* :class:`StreamingMoments` — Welford's online algorithm for count, mean,
  variance, min and max (numerically stable single pass);
* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac (CACM 1985),
  which tracks one quantile with five markers and parabolic interpolation,
  no samples stored;
* :class:`ReservoirSample` — Vitter's algorithm R, a fixed-size uniform
  sample of the stream for diagnostics that genuinely need raw values;
* :class:`StreamingSummary` — the bundle the engine uses: moments plus one
  P² estimator per reported percentile, convertible to the same
  :class:`~repro.stats.summary.DistributionSummary` shape the exact path
  produces (confidence intervals are omitted — they require the full
  sample).

All of it is deterministic: P² and Welford are closed-form, and the
reservoir uses its own seeded generator so it never perturbs the
simulation's random streams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .summary import DEFAULT_PERCENTILES, DistributionSummary


class StreamingMoments:
    """Welford single-pass count / mean / variance / min / max."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 for fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the minimum, the target quantile, the two
    mid-quantiles and the maximum; marker heights move by parabolic (or, at
    the boundary, linear) interpolation as observations arrive.  Memory is
    constant and the estimate converges to the true quantile for stationary
    streams.  Until five observations have arrived the exact small-sample
    quantile is returned.
    """

    __slots__ = ("p", "_initial", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("quantile must lie in [0, 1]")
        self.p = p
        self._initial: list[float] = []
        self._q: list[float] = []
        self._n: list[int] = []
        self._np: list[float] = []
        self._dn: list[float] = []

    @property
    def count(self) -> int:
        return self._n[4] if self._q else len(self._initial)

    def add(self, x: float) -> None:
        if not self._q:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                p = self.p
                self._q = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
                self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
            return
        q, n = self._q, self._n
        # Locate the cell containing x, extending the extremes if needed.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # Adjust the three interior markers if they drifted off position.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                sign = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, sign)
                if not (q[i - 1] < candidate < q[i + 1]):
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self._q:
            return self._q[2]
        if not self._initial:
            raise ConfigurationError("no samples to estimate a quantile from")
        return float(np.percentile(self._initial, self.p * 100.0))


class ReservoirSample:
    """Fixed-size uniform random sample of a stream (Vitter's algorithm R).

    Uses a private seeded generator so that sampling never perturbs the
    simulation's named random streams — replays stay bit-identical whether
    or not a reservoir is attached.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ConfigurationError("reservoir capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, x: float) -> None:
        self.seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(x)
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._samples[slot] = x

    def values(self) -> list[float]:
        return list(self._samples)


class StreamingSummary:
    """Single-pass replacement for :func:`repro.stats.summary.summarize`.

    Tracks Welford moments plus one :class:`P2Quantile` per requested
    percentile; :meth:`to_summary` emits a
    :class:`~repro.stats.summary.DistributionSummary` with the same shape as
    the exact path (minus confidence intervals, which need the full sample).
    """

    __slots__ = ("moments", "_quantiles")

    def __init__(self, percentiles: Sequence[float] = DEFAULT_PERCENTILES):
        self.moments = StreamingMoments()
        wanted = dict.fromkeys(float(p) for p in percentiles)
        wanted.setdefault(50.0)  # the median is always reported
        self._quantiles = {p: P2Quantile(p / 100.0) for p in wanted}

    @property
    def count(self) -> int:
        return self.moments.count

    def add(self, x: float) -> None:
        self.moments.add(x)
        for estimator in self._quantiles.values():
            estimator.add(x)

    def percentile(self, which: float) -> float:
        return self._quantiles[float(which)].value()

    def to_summary(self) -> DistributionSummary:
        if self.moments.count == 0:
            raise ConfigurationError("cannot summarize an empty sample set")
        return DistributionSummary(
            count=self.moments.count,
            mean=self.moments.mean,
            std=self.moments.std,
            minimum=self.moments.minimum,
            maximum=self.moments.maximum,
            median=self._quantiles[50.0].value(),
            percentiles={p: estimator.value() for p, estimator in self._quantiles.items()},
            confidence_intervals={},
        )
