"""Non-parametric confidence intervals for the median.

SeBS reports medians with non-parametric (distribution-free) confidence
intervals, following Le Boudec and Hoefler & Belli.  The interval for the
median of ``n`` i.i.d. samples is obtained from the order statistics: the
interval ``[x_(j), x_(k)]`` covers the median with probability derived from
the binomial distribution with p = 0.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A confidence interval around the sample median."""

    level: float
    low: float
    high: float
    median: float

    @property
    def width(self) -> float:
        """Absolute width of the interval."""
        return self.high - self.low

    @property
    def relative_width(self) -> float:
        """Interval width relative to the median (0 when the median is 0)."""
        if self.median == 0:
            return 0.0
        return self.width / abs(self.median)

    def within(self, fraction: float) -> bool:
        """Whether the interval lies within ``fraction`` of the median.

        The paper requires intervals within 5% of the median, interpreted as
        each endpoint deviating from the median by at most ``fraction`` of
        its absolute value.
        """
        if self.median == 0:
            return self.width == 0
        return (
            abs(self.high - self.median) <= fraction * abs(self.median)
            and abs(self.median - self.low) <= fraction * abs(self.median)
        )

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _median_ci_indices(n: int, level: float) -> tuple[int, int]:
    """Return 0-based order-statistic indices for the median CI.

    Uses the binomial(n, 0.5) distribution: the interval [x_(j+1), x_(k)] in
    1-based statistics notation has coverage ``P(j <= B < k)``.  We search for
    the symmetric pair with at least the requested coverage.
    """
    if n < 1:
        raise ConfigurationError("confidence interval requires at least one sample")
    # Symmetric interval around the median rank.
    j = int(math.floor(scipy_stats.binom.ppf((1 - level) / 2, n, 0.5)))
    k = int(math.ceil(scipy_stats.binom.ppf(1 - (1 - level) / 2, n, 0.5)))
    # Ensure valid coverage: widen until the binomial mass in [j, k-1] >= level
    # or the interval spans all samples.
    def coverage(lo: int, hi: int) -> float:
        return float(scipy_stats.binom.cdf(hi - 1, n, 0.5) - scipy_stats.binom.cdf(lo - 1, n, 0.5))

    j = max(0, min(j, n - 1))
    k = max(1, min(k, n))
    while coverage(j, k) < level and (j > 0 or k < n):
        if j > 0:
            j -= 1
        if k < n:
            k += 1
    return j, max(j, k - 1)


def nonparametric_ci(samples: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Compute the distribution-free CI of the median of ``samples``.

    Parameters
    ----------
    samples:
        Raw measurements (need not be sorted).
    level:
        Confidence level, e.g. 0.95 or 0.99 (the two levels used by SeBS).
    """
    if not 0.0 < level < 1.0:
        raise ConfigurationError("confidence level must lie in (0, 1)")
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        raise ConfigurationError("confidence interval requires at least one sample")
    median = float(np.median(data))
    if data.size == 1:
        return ConfidenceInterval(level=level, low=float(data[0]), high=float(data[0]), median=median)
    low_idx, high_idx = _median_ci_indices(int(data.size), level)
    return ConfidenceInterval(
        level=level,
        low=float(data[low_idx]),
        high=float(data[high_idx]),
        median=median,
    )
