"""Code packaging and deployed-function records.

SeBS builds every benchmark and its dependencies inside Docker containers
resembling the provider's function workers to guarantee binary compatibility
(Section 5.2).  The reproduction models the outcome of that step — a code
package with a size, language and dependency list — since package size is the
performance-relevant property (it drives cold-start deployment time and is
validated against the provider's deployment limits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..config import FunctionConfig, Language
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class CodePackage:
    """A built deployment package for one benchmark in one language."""

    benchmark: str
    language: Language
    size_mb: float
    dependencies: tuple[str, ...] = ()
    build_actions: tuple[str, ...] = ()
    docker_image: str = "sebs.build.python"

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ConfigurationError("code package size must be positive")

    @property
    def size_bytes(self) -> int:
        return int(self.size_mb * 1024 * 1024)

    def with_size(self, size_mb: float) -> "CodePackage":
        """Return a copy with a different package size (used by experiments
        that sweep code-package size, e.g. the eviction study's 250 MB case)."""
        return CodePackage(
            benchmark=self.benchmark,
            language=self.language,
            size_mb=size_mb,
            dependencies=self.dependencies,
            build_actions=self.build_actions,
            docker_image=self.docker_image,
        )


@dataclass
class DeployedFunction:
    """A function created on a platform."""

    name: str
    benchmark: str
    package: CodePackage
    config: FunctionConfig
    platform: str
    version: int = 1
    created_at: float = 0.0
    updated_at: float = 0.0
    environment: Mapping[str, str] = field(default_factory=dict)

    def bump_version(self, timestamp: float) -> None:
        """Record a configuration/code update (publishes a new version).

        The paper enforces cold starts by updating the function configuration
        on AWS and publishing a new function version on Azure and GCP; the
        simulator uses the version counter to invalidate warm sandboxes.
        """
        self.version += 1
        self.updated_at = timestamp
