"""Billing models of the commercial FaaS platforms and the IaaS baseline.

Section 6.3 analyses cost along four axes: how users can optimise cost by
choosing memory sizes (Figure 5a), whether the pricing granularity is fair
(Figure 5b), when a dedicated VM becomes cheaper (Table 6), and the often
overlooked data-transfer charges on function output (Q4).  The models below
reproduce the pricing rules referenced by the paper (2020 list prices):

* **AWS Lambda** — $0.20 per million requests plus $0.0000166667 per GB-s of
  *declared* memory, duration rounded up to 100 ms.  HTTP API calls cost
  $1.00 per million requests metered in 512 kB payload increments; REST API
  calls cost $3.50 per million plus $0.09/GB egress.
* **Google Cloud Functions** — $0.40 per million requests, $0.0000025 per
  GB-s and $0.0000100 per GHz-s, duration rounded up to 100 ms, plus
  $0.12/GB egress.
* **Azure Functions** — $0.20 per million executions plus $0.000016 per GB-s
  of *average measured* memory rounded up to 128 MB, minimum 100 ms billed
  duration, plus $0.04-0.12/GB egress (we use $0.087, the first-tier rate).
* **IaaS** — flat hourly rental of a t2.micro instance ($0.0116/h).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import DYNAMIC_MEMORY, Provider
from ..exceptions import ConfigurationError
from ..utils.units import round_up


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of one function invocation, split by charge type (USD)."""

    request_cost: float
    compute_cost: float
    storage_cost: float = 0.0
    egress_cost: float = 0.0

    @property
    def total(self) -> float:
        return self.request_cost + self.compute_cost + self.storage_cost + self.egress_cost

    def scaled(self, invocations: float) -> "CostBreakdown":
        """Scale every component by a number of invocations."""
        return CostBreakdown(
            request_cost=self.request_cost * invocations,
            compute_cost=self.compute_cost * invocations,
            storage_cost=self.storage_cost * invocations,
            egress_cost=self.egress_cost * invocations,
        )

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            request_cost=self.request_cost + other.request_cost,
            compute_cost=self.compute_cost + other.compute_cost,
            storage_cost=self.storage_cost + other.storage_cost,
            egress_cost=self.egress_cost + other.egress_cost,
        )


@dataclass(frozen=True)
class BillingModel:
    """Pay-as-you-go pricing rules of one provider."""

    provider: Provider
    request_price_per_million: float
    gb_second_price: float
    duration_granularity_s: float
    memory_granularity_mb: int
    bills_average_memory: bool
    egress_price_per_gb: float
    http_api_price_per_million: float = 0.0
    http_api_payload_granularity_kb: float = 512.0
    minimum_billed_duration_s: float = 0.1
    storage_request_price_per_10k: float = 0.004
    vm_hourly_price: float = 0.0
    #: Memory of the host process included in the measured average when the
    #: provider bills measured memory (Azure meters the whole function-app
    #: instance — language worker included — not just the kernel's working
    #: set, which is why its dynamically allocated deployments cost more and
    #: cannot be tuned down, Section 6.3 Q1).
    billed_memory_overhead_mb: float = 0.0
    #: Cache of the duration-independent cost terms, keyed by
    #: (output_bytes, storage_requests, via_http_api).  Excluded from
    #: equality/hashing; purely a memoisation of pure arithmetic.
    _static_costs: dict = field(default_factory=dict, compare=False, hash=False, repr=False)

    def _static_cost_components(
        self, output_bytes: int, storage_requests: int, via_http_api: bool
    ) -> tuple[float, float, float]:
        """(request, storage, egress) costs — invariant per (function, outcome).

        These terms depend only on the work profile and trigger, not on the
        sampled duration/memory of the invocation, so on trace replays they
        are computed once per function instead of once per request.  The
        arithmetic is byte-for-byte the inline computation, so cached and
        uncached paths yield identical floats.
        """
        key = (output_bytes, storage_requests, via_http_api)
        cached = self._static_costs.get(key)
        if cached is not None:
            return cached
        request_cost = self.request_price_per_million / 1e6
        if via_http_api and self.http_api_price_per_million > 0:
            payload_units = max(
                1.0,
                round_up(output_bytes / 1024.0, self.http_api_payload_granularity_kb)
                / self.http_api_payload_granularity_kb,
            )
            request_cost += self.http_api_price_per_million / 1e6 * payload_units
        storage_cost = storage_requests / 10_000.0 * self.storage_request_price_per_10k
        egress_cost = output_bytes / (1024.0**3) * self.egress_price_per_gb
        components = (request_cost, storage_cost, egress_cost)
        if len(self._static_costs) < 4096:  # kernel mode can vary output sizes
            self._static_costs[key] = components
        return components

    def billed_duration(self, duration_s: float) -> float:
        """Round an execution duration up to the billing granularity."""
        if duration_s < 0:
            raise ConfigurationError("duration cannot be negative")
        rounded = round_up(max(duration_s, self.minimum_billed_duration_s), self.duration_granularity_s)
        return rounded

    def billed_memory_mb(self, declared_memory_mb: int, used_memory_mb: float) -> float:
        """Memory the provider charges for.

        AWS and GCP charge the *declared* allocation regardless of use; Azure
        measures average consumption and rounds it up to 128 MB.
        """
        if self.bills_average_memory or declared_memory_mb == DYNAMIC_MEMORY:
            measured = max(used_memory_mb, 1.0) + self.billed_memory_overhead_mb
            return round_up(measured, float(self.memory_granularity_mb))
        return float(declared_memory_mb)

    def invocation_cost(
        self,
        duration_s: float,
        declared_memory_mb: int,
        used_memory_mb: float,
        output_bytes: int = 0,
        storage_requests: int = 0,
        via_http_api: bool = True,
        billed_duration_s: float | None = None,
    ) -> CostBreakdown:
        """Full cost of one invocation (request + compute + storage + egress).

        ``billed_duration_s`` lets a caller that already rounded the duration
        (the simulator records it on every invocation) skip the second
        rounding pass.
        """
        if self.vm_hourly_price > 0:
            # IaaS: cost is purely time-based, handled by hourly_cost().
            return CostBreakdown(request_cost=0.0, compute_cost=duration_s / 3600.0 * self.vm_hourly_price)
        billed_s = self.billed_duration(duration_s) if billed_duration_s is None else billed_duration_s
        billed_mem_gb = self.billed_memory_mb(declared_memory_mb, used_memory_mb) / 1024.0
        request_cost, storage_cost, egress_cost = self._static_cost_components(
            output_bytes, storage_requests, via_http_api
        )
        compute_cost = billed_s * billed_mem_gb * self.gb_second_price
        return CostBreakdown(
            request_cost=request_cost,
            compute_cost=compute_cost,
            storage_cost=storage_cost,
            egress_cost=egress_cost,
        )

    def cost_of_million(self, duration_s: float, declared_memory_mb: int, used_memory_mb: float) -> float:
        """Compute-plus-request cost of one million invocations (Figure 5a)."""
        single = self.invocation_cost(
            duration_s,
            declared_memory_mb,
            used_memory_mb,
            output_bytes=0,
            storage_requests=0,
            via_http_api=False,
        )
        return single.total * 1e6

    def hourly_cost(self) -> float:
        """Hourly price of the deployment (only meaningful for IaaS)."""
        return self.vm_hourly_price


_BILLING_MODELS: dict[Provider, BillingModel] = {
    Provider.AWS: BillingModel(
        provider=Provider.AWS,
        request_price_per_million=0.20,
        gb_second_price=0.0000166667,
        duration_granularity_s=0.1,
        memory_granularity_mb=1,
        bills_average_memory=False,
        # The HTTP API (available since Dec 2019) charges a flat per-request
        # fee metered in 512 kB increments and no separate egress; only the
        # older REST APIs add $0.09/GB, which is why the paper quotes ~$1 per
        # million invocations on AWS versus ~$9 on GCP/Azure (Section 6.3 Q4).
        egress_price_per_gb=0.0,
        http_api_price_per_million=1.00,
    ),
    Provider.GCP: BillingModel(
        provider=Provider.GCP,
        request_price_per_million=0.40,
        gb_second_price=0.0000025 + 0.0000100,  # GB-s plus GHz-s folded together
        duration_granularity_s=0.1,
        memory_granularity_mb=1,
        bills_average_memory=False,
        egress_price_per_gb=0.12,
    ),
    Provider.AZURE: BillingModel(
        provider=Provider.AZURE,
        request_price_per_million=0.20,
        gb_second_price=0.000016,
        duration_granularity_s=0.001,
        memory_granularity_mb=128,
        bills_average_memory=True,
        egress_price_per_gb=0.087,
        billed_memory_overhead_mb=600.0,
    ),
    Provider.IAAS: BillingModel(
        provider=Provider.IAAS,
        request_price_per_million=0.0,
        gb_second_price=0.0,
        duration_granularity_s=0.001,
        memory_granularity_mb=1,
        bills_average_memory=False,
        egress_price_per_gb=0.09,
        vm_hourly_price=0.0116,
    ),
    Provider.LOCAL: BillingModel(
        provider=Provider.LOCAL,
        request_price_per_million=0.0,
        gb_second_price=0.0,
        duration_granularity_s=0.001,
        memory_granularity_mb=1,
        bills_average_memory=False,
        egress_price_per_gb=0.0,
    ),
}


def billing_model_for(provider: Provider) -> BillingModel:
    """Return the billing model of ``provider``.

    Each call returns a *fresh* instance with its own (empty) static-cost
    memo.  The module-level table used to be handed out directly, which
    made its mutable ``_static_costs`` cache shared state across every
    platform in the process — harmless for determinism (the memo is pure
    arithmetic) but a latent per-shard isolation leak, and a data race
    waiting to happen if platforms ever run on threads.  Pricing fields are
    frozen and excluded caches don't participate in equality, so the copies
    compare equal to the originals.
    """
    return replace(_BILLING_MODELS[provider], _static_costs={})
