"""Invocation request/record types.

Cloud metrics are measured at three levels (Section 5.1): benchmark time
(work inside the function, excluding platform overhead), provider time (what
the platform reports, adding language-runtime and sandbox overhead) and
client time (end-to-end latency at the caller, adding scheduling, network
and trigger overheads).  Every invocation returns an
:class:`InvocationRecord` carrying all three, plus memory, billing and
start-type information.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config import InvocationOutcome, Provider, StartType, TriggerType
from .billing import CostBreakdown


def payload_wire_bytes(payload: Mapping[str, Any]) -> int:
    """Wire size of a payload: UTF-8 bytes of its JSON encoding.

    The single definition of "request size" shared by the invocation path
    (when no explicit ``payload_bytes`` is given) and the workflow
    trigger-edge model, so the two can never drift apart.
    """
    return len(json.dumps(payload, default=str).encode("utf-8"))


@dataclass(frozen=True)
class InvocationRequest:
    """A single invocation of a deployed function.

    ``payload_bytes`` overrides the measured request size exactly like the
    same-named parameter of :meth:`~repro.faas.platform.FaaSPlatform.invoke`:
    ``None`` means "derive from the JSON-encoded payload", and an explicit
    value (including 0) is honoured as-is.
    """

    function_name: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_bytes: int | None = None
    trigger: TriggerType = TriggerType.HTTP
    submitted_at: float = 0.0


@dataclass(frozen=True)
class InvocationRecord:
    """The outcome and measurements of one invocation request.

    With the overload model enabled (:mod:`repro.concurrency`) a record
    describes the request's *terminal* outcome: a request throttled and
    retried until it executed yields one record whose ``attempts`` counts
    the admission attempts and whose ``admission_delay_s`` carries the
    backoff (sync) or queueing (async) delay between submission and the
    admitted execution.  ``client_time_s == finished_at - submitted_at``
    holds for every record, throttled and dropped ones included.
    """

    function_name: str
    benchmark: str
    provider: Provider
    start_type: StartType
    success: bool
    #: Work performed inside the function (SeBS wrapper timer), seconds.
    benchmark_time_s: float
    #: Duration reported by the provider (adds sandbox/runtime overhead), seconds.
    provider_time_s: float
    #: End-to-end latency observed by the client, seconds.
    client_time_s: float
    #: Time between client submission and the start of function execution.
    invocation_overhead_s: float
    #: Sandbox initialisation time inside the overhead (0 for warm starts).
    #: Kept separately so workflow critical paths can attribute cold-start
    #: time exactly.
    cold_init_s: float
    memory_declared_mb: int
    memory_used_mb: float
    billed_duration_s: float
    cost: CostBreakdown
    output_bytes: int = 0
    container_id: str = ""
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    error: str | None = None
    output: Mapping[str, Any] = field(default_factory=dict)
    #: Terminal outcome class (see :class:`repro.config.InvocationOutcome`).
    #: ``success`` stays the executed-and-succeeded boolean; throttled and
    #: dropped requests never executed, so they are distinguished here
    #: rather than inflating the failure counts.
    outcome: InvocationOutcome = InvocationOutcome.COMPLETED
    #: Admission attempts made (1 = admitted first try; throttled records
    #: count every 429'd attempt).
    attempts: int = 1
    #: When the admitted execution actually started occupying capacity
    #: (``submitted_at`` plus backoff/queueing delay; equals
    #: ``submitted_at`` without overload).
    admitted_at: float = 0.0
    #: Client-side delay between submission and admission: retry backoff
    #: for synchronous requests, admission-queue wait for asynchronous
    #: ones (0 when admitted immediately).
    admission_delay_s: float = 0.0
    #: Hedge duplicates the client sent for this request
    #: (:mod:`repro.resilience`).  The record describes the *winning*
    #: attempt, but ``cost`` sums every attempt — the provider executed
    #: and billed them all.
    hedges: int = 0
    #: Position of the request in its replay stream (-1 outside replays).
    #: Sharded replay threads the *global* stream index through, so merged
    #: records sort back into exact arrival order.  Excluded from equality:
    #: it is stream metadata, not an invocation outcome — a function's
    #: records must compare equal whether it replays alone or inside a
    #: mixed trace (the state-isolation invariant).
    request_index: int = field(default=-1, compare=False)

    @property
    def is_cold(self) -> bool:
        return self.start_type is StartType.COLD

    @property
    def executed(self) -> bool:
        """Whether the request ever ran (throttled/dropped ones did not)."""
        return self.outcome in (InvocationOutcome.COMPLETED, InvocationOutcome.FAILED)

    @property
    def platform_overhead_s(self) -> float:
        """Client-observed overhead beyond the function's own work."""
        return max(0.0, self.client_time_s - self.benchmark_time_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "function": self.function_name,
            "benchmark": self.benchmark,
            "provider": self.provider.value,
            "start_type": self.start_type.value,
            "success": self.success,
            "benchmark_time_s": self.benchmark_time_s,
            "provider_time_s": self.provider_time_s,
            "client_time_s": self.client_time_s,
            "invocation_overhead_s": self.invocation_overhead_s,
            "cold_init_s": self.cold_init_s,
            "memory_declared_mb": self.memory_declared_mb,
            "memory_used_mb": self.memory_used_mb,
            "billed_duration_s": self.billed_duration_s,
            "cost_usd": self.cost.total,
            "output_bytes": self.output_bytes,
            "container_id": self.container_id,
            "error": self.error,
            "outcome": self.outcome.value,
            "attempts": self.attempts,
            "admission_delay_s": self.admission_delay_s,
            "hedges": self.hedges,
        }
