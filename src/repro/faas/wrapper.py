"""The SeBS function wrapper.

Section 5.2 shows the provider-specific wrapper that every benchmark entry
point is wrapped in::

    def function_wrapper(provider_input, provider_env):
        input = json(provider_input)
        start_timer()
        res = function()
        time = end_timer()
        return json(time, statistics(provider_env), res)

The wrapper is how SeBS obtains the *benchmark time* metric — the time spent
inside the function, excluding network and platform overheads — together with
environment statistics (memory usage, whether the sandbox was reused).  The
reproduction's wrapper really executes the benchmark kernel against the
storage substrate and measures its wall-clock duration and allocation peak.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Mapping

from ..benchmarks.base import Benchmark, BenchmarkContext
from ..exceptions import BenchmarkError


@dataclass(frozen=True)
class WrapperMeasurement:
    """What the function wrapper returns alongside the benchmark result."""

    benchmark: str
    result: Mapping[str, Any]
    execution_time_s: float
    peak_memory_mb: float
    output_bytes: int
    is_cold: bool
    container_uptime_s: float

    def to_json(self) -> str:
        return json.dumps(
            {
                "benchmark": self.benchmark,
                "compute_time_s": self.execution_time_s,
                "peak_memory_mb": self.peak_memory_mb,
                "output_bytes": self.output_bytes,
                "is_cold": self.is_cold,
                "container_uptime_s": self.container_uptime_s,
                "result": dict(self.result),
            },
            default=str,
        )


class FunctionWrapper:
    """Executes a benchmark kernel the way the deployed wrapper would."""

    def __init__(self, benchmark: Benchmark, context: BenchmarkContext):
        self._benchmark = benchmark
        self._context = context
        self._invocations_in_sandbox = 0

    @property
    def benchmark(self) -> Benchmark:
        return self._benchmark

    def invoke(self, event: Mapping[str, Any], is_cold: bool = False, container_uptime_s: float = 0.0) -> WrapperMeasurement:
        """Run the kernel for ``event``, measuring duration and memory."""
        if not isinstance(event, Mapping):
            raise BenchmarkError("invocation payload must be a mapping")
        tracemalloc.start()
        start = time.perf_counter()
        try:
            result = self._benchmark.run(event, self._context)
        finally:
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        elapsed = time.perf_counter() - start
        self._invocations_in_sandbox += 1
        encoded = json.dumps(result, default=str).encode("utf-8")
        return WrapperMeasurement(
            benchmark=self._benchmark.name,
            result=result,
            execution_time_s=elapsed,
            peak_memory_mb=peak_bytes / (1024 * 1024),
            output_bytes=len(encoded),
            is_cold=is_cold,
            container_uptime_s=container_uptime_s,
        )

    @property
    def invocations_in_sandbox(self) -> int:
        """How many invocations this wrapper (sandbox) has already served."""
        return self._invocations_in_sandbox
