"""Abstract FaaS platform model (Section 2 and Section 5.2).

The subpackage defines everything a platform-independent benchmark driver
needs: code packaging, deployment-time function configuration, provider
resource limits (Table 2), billing models, triggers, and the invocation
record returned by every function execution.  The abstract
:class:`~repro.faas.platform.FaaSPlatform` interface mirrors the one shown in
the paper::

    class FaaS:
        def package_code(directory, language)
        def create_function(fname, code, lang, config)
        def update_function(fname, code, config)
        def create_trigger(fname, type)
        def query_logs(fname, type)

Concrete implementations live in :mod:`repro.simulator` (the simulated AWS,
Azure, GCP and IaaS back-ends).
"""

from .billing import BillingModel, CostBreakdown, billing_model_for
from .function import CodePackage, DeployedFunction
from .invocation import InvocationRecord, InvocationRequest
from .limits import PlatformLimits, limits_for
from .platform import FaaSPlatform, LogQueryType
from .triggers import (
    TRIGGER_CLASSES,
    HTTPTrigger,
    QueueTrigger,
    SDKTrigger,
    StorageTrigger,
    TimerTrigger,
    Trigger,
    create_trigger,
)
from .wrapper import FunctionWrapper, WrapperMeasurement

__all__ = [
    "BillingModel",
    "CostBreakdown",
    "billing_model_for",
    "CodePackage",
    "DeployedFunction",
    "InvocationRecord",
    "InvocationRequest",
    "PlatformLimits",
    "limits_for",
    "FaaSPlatform",
    "LogQueryType",
    "Trigger",
    "TRIGGER_CLASSES",
    "create_trigger",
    "HTTPTrigger",
    "SDKTrigger",
    "QueueTrigger",
    "StorageTrigger",
    "TimerTrigger",
    "FunctionWrapper",
    "WrapperMeasurement",
]
