"""Provider resource limits and policies (Table 2).

The table compares AWS Lambda, Azure Functions and Google Cloud Functions on
language support, time limits, memory allocation policy, CPU allocation,
billing granularity, deployment-package limits, concurrency limits and
temporary disk space.  These limits gate what the simulator accepts
(deployment size, memory configuration, execution-time cap, concurrency) and
feed the Table 2 report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DYNAMIC_MEMORY, Language, Provider
from ..exceptions import ConfigurationError, DeploymentError


@dataclass(frozen=True)
class PlatformLimits:
    """Static limits and allocation policies of one provider."""

    provider: Provider
    languages: tuple[Language, ...]
    time_limit_s: float
    memory_static: bool
    memory_min_mb: int
    memory_max_mb: int
    allowed_memory_mb: tuple[int, ...] | None
    #: Memory (MB) at which the function receives one full vCPU.
    full_vcpu_memory_mb: int
    billing_description: str
    deployment_limit_mb: float
    concurrency_limit: int
    temporary_disk_mb: int
    notes: str = ""

    def validate_memory(self, memory_mb: int) -> None:
        """Raise if ``memory_mb`` is not a legal configuration for this provider."""
        if not self.memory_static:
            if memory_mb not in (DYNAMIC_MEMORY,):
                raise ConfigurationError(
                    f"{self.provider.display_name} allocates memory dynamically; "
                    "use DYNAMIC_MEMORY instead of a static size"
                )
            return
        if memory_mb == DYNAMIC_MEMORY:
            raise ConfigurationError(
                f"{self.provider.display_name} requires a static memory configuration"
            )
        if not self.memory_min_mb <= memory_mb <= self.memory_max_mb:
            raise ConfigurationError(
                f"{self.provider.display_name} supports {self.memory_min_mb}-"
                f"{self.memory_max_mb} MB, got {memory_mb} MB"
            )
        if self.allowed_memory_mb is not None and memory_mb not in self.allowed_memory_mb:
            raise ConfigurationError(
                f"{self.provider.display_name} only supports memory sizes "
                f"{self.allowed_memory_mb}, got {memory_mb} MB"
            )

    def validate_package(self, size_mb: float) -> None:
        """Raise :class:`DeploymentError` if the code package is too large."""
        if size_mb > self.deployment_limit_mb:
            raise DeploymentError(
                f"code package of {size_mb:.1f} MB exceeds the "
                f"{self.provider.display_name} limit of {self.deployment_limit_mb:.0f} MB"
            )

    def cpu_share(self, memory_mb: int) -> float:
        """Fraction of a vCPU allocated to a function with ``memory_mb``.

        AWS and GCP allocate CPU proportionally to memory, reaching a full
        vCPU at ``full_vcpu_memory_mb`` (1792 MB on AWS, 2048 MB on GCP);
        Azure's policy is undisclosed, and its dynamic allocation behaves
        roughly like a full core shared within the function app.
        """
        if not self.memory_static or memory_mb == DYNAMIC_MEMORY:
            return 1.0
        share = memory_mb / self.full_vcpu_memory_mb
        return float(min(2.0, max(0.05, share)))


_AWS_LIMITS = PlatformLimits(
    provider=Provider.AWS,
    languages=(Language.PYTHON, Language.NODEJS),
    time_limit_s=15 * 60.0,
    memory_static=True,
    memory_min_mb=128,
    memory_max_mb=3008,
    allowed_memory_mb=None,  # any value in 64 MB steps; we accept the range
    full_vcpu_memory_mb=1792,
    billing_description="Duration (100 ms granularity) and declared memory",
    deployment_limit_mb=250.0,
    concurrency_limit=1000,
    temporary_disk_mb=500,
    notes="Temporary disk must also store the code package.",
)

_AZURE_LIMITS = PlatformLimits(
    provider=Provider.AZURE,
    languages=(Language.PYTHON, Language.NODEJS),
    time_limit_s=10 * 60.0,
    memory_static=False,
    memory_min_mb=128,
    memory_max_mb=1536,
    allowed_memory_mb=(DYNAMIC_MEMORY,),
    full_vcpu_memory_mb=1536,
    billing_description="Average memory use (128 MB granularity) and duration",
    deployment_limit_mb=1024.0,
    concurrency_limit=200,
    temporary_disk_mb=5000,
    notes="Consumption plan; function apps bundle multiple functions per instance.",
)

_GCP_LIMITS = PlatformLimits(
    provider=Provider.GCP,
    languages=(Language.PYTHON, Language.NODEJS),
    time_limit_s=9 * 60.0,
    memory_static=True,
    memory_min_mb=128,
    memory_max_mb=4096,
    allowed_memory_mb=(128, 256, 512, 1024, 2048, 4096),
    full_vcpu_memory_mb=2048,
    billing_description="Duration (100 ms granularity), declared CPU and memory",
    deployment_limit_mb=100.0,
    concurrency_limit=100,
    temporary_disk_mb=0,
    notes="Temporary disk counts against memory usage; 2.4 GHz CPU at 2048 MB.",
)

_IAAS_LIMITS = PlatformLimits(
    provider=Provider.IAAS,
    languages=(Language.PYTHON, Language.NODEJS),
    time_limit_s=float("inf"),
    memory_static=True,
    memory_min_mb=1024,
    memory_max_mb=1024,
    allowed_memory_mb=(1024,),
    full_vcpu_memory_mb=1024,
    billing_description="Hourly VM rental ($0.0116/h for t2.micro)",
    deployment_limit_mb=8192.0,
    concurrency_limit=1,
    temporary_disk_mb=8192,
    notes="AWS EC2 t2.micro: 1 vCPU, 1 GB memory.",
)

_LOCAL_LIMITS = PlatformLimits(
    provider=Provider.LOCAL,
    languages=(Language.PYTHON, Language.NODEJS),
    time_limit_s=float("inf"),
    memory_static=True,
    memory_min_mb=128,
    memory_max_mb=1 << 20,
    allowed_memory_mb=None,
    full_vcpu_memory_mb=1024,
    billing_description="No billing (local Docker execution)",
    deployment_limit_mb=float("inf"),
    concurrency_limit=1 << 16,
    temporary_disk_mb=1 << 20,
)

_ALL_LIMITS: dict[Provider, PlatformLimits] = {
    Provider.AWS: _AWS_LIMITS,
    Provider.AZURE: _AZURE_LIMITS,
    Provider.GCP: _GCP_LIMITS,
    Provider.IAAS: _IAAS_LIMITS,
    Provider.LOCAL: _LOCAL_LIMITS,
}


def limits_for(provider: Provider) -> PlatformLimits:
    """Return the resource limits of ``provider`` (Table 2)."""
    return _ALL_LIMITS[provider]


def all_limits() -> dict[Provider, PlatformLimits]:
    """Limits of every modelled provider, keyed by provider."""
    return dict(_ALL_LIMITS)
