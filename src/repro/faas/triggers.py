"""Function triggers (Section 2, label 1).

SeBS experiments invoke functions through an abstract trigger interface with
two concrete implementations: cloud-SDK triggers and HTTP triggers.  The HTTP
trigger adds gateway latency and is what the Perf-Cost and Invoc-Overhead
experiments use; the SDK trigger bypasses the HTTP front end.  Timer,
storage and queue triggers are part of the platform model and can be added by
implementing the same interface.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Mapping

from ..config import TriggerType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .invocation import InvocationRecord
    from .platform import FaaSPlatform


class Trigger(abc.ABC):
    """Abstract invocation channel for a deployed function."""

    trigger_type: TriggerType = TriggerType.HTTP

    def __init__(self, platform: "FaaSPlatform", function_name: str):
        self._platform = platform
        self._function_name = function_name

    @property
    def function_name(self) -> str:
        return self._function_name

    @abc.abstractmethod
    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        """Synchronously invoke the function and return its record."""

    def invoke_many(self, count: int, payload: Mapping[str, Any] | None = None) -> list["InvocationRecord"]:
        """Invoke the function ``count`` times sequentially."""
        return [self.invoke(payload) for _ in range(count)]


class HTTPTrigger(Trigger):
    """Invocation through the provider's HTTP endpoint / API gateway."""

    trigger_type = TriggerType.HTTP

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.HTTP,
            payload_bytes=payload_bytes,
        )


class SDKTrigger(Trigger):
    """Invocation through the provider SDK (no HTTP gateway in the path)."""

    trigger_type = TriggerType.SDK

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.SDK,
            payload_bytes=payload_bytes,
        )
