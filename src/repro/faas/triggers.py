"""Function triggers (Section 2, label 1).

SeBS experiments invoke functions through an abstract trigger interface.
Five concrete implementations cover the platform model:

* :class:`HTTPTrigger` adds gateway latency and is what the Perf-Cost and
  Invoc-Overhead experiments use;
* :class:`SDKTrigger` bypasses the HTTP front end;
* :class:`QueueTrigger`, :class:`StorageTrigger` and :class:`TimerTrigger`
  are the asynchronous channels — a queue message, an object-store event,
  a cron schedule.  Invoked directly they behave like SDK calls (no HTTP
  gateway in the path, and billing skips the HTTP API surcharge); their
  distinguishing *propagation* latency belongs to the edges between
  workflow stages and is modelled by
  :class:`repro.workflows.edges.TriggerEdgeModel`.

All five are registered in :data:`TRIGGER_CLASSES`, keyed by
:class:`~repro.config.TriggerType`; :func:`create_trigger` is the factory
the platform exposes.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Mapping

from ..config import TriggerType
from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .invocation import InvocationRecord
    from .platform import FaaSPlatform


class Trigger(abc.ABC):
    """Abstract invocation channel for a deployed function."""

    trigger_type: TriggerType = TriggerType.HTTP

    def __init__(self, platform: "FaaSPlatform", function_name: str):
        self._platform = platform
        self._function_name = function_name

    @property
    def function_name(self) -> str:
        return self._function_name

    @abc.abstractmethod
    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        """Synchronously invoke the function and return its record."""

    def invoke_many(self, count: int, payload: Mapping[str, Any] | None = None) -> list["InvocationRecord"]:
        """Invoke the function ``count`` times sequentially."""
        return [self.invoke(payload) for _ in range(count)]


class HTTPTrigger(Trigger):
    """Invocation through the provider's HTTP endpoint / API gateway."""

    trigger_type = TriggerType.HTTP

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.HTTP,
            payload_bytes=payload_bytes,
        )


class SDKTrigger(Trigger):
    """Invocation through the provider SDK (no HTTP gateway in the path)."""

    trigger_type = TriggerType.SDK

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.SDK,
            payload_bytes=payload_bytes,
        )


class QueueTrigger(Trigger):
    """Invocation delivered through a message queue binding.

    The execution itself takes the SDK-like internal path (no HTTP
    gateway); the enqueue/dequeue propagation latency is an *edge* property
    modelled when queues connect workflow stages.
    """

    trigger_type = TriggerType.QUEUE

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.QUEUE,
            payload_bytes=payload_bytes,
        )


class StorageTrigger(Trigger):
    """Invocation fired by an object-store change notification."""

    trigger_type = TriggerType.STORAGE

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.STORAGE,
            payload_bytes=payload_bytes,
        )


class TimerTrigger(Trigger):
    """Invocation fired by a cron-style schedule.

    Scheduled (timer) roots are how recurring workflow executions are
    expressed; the firing jitter of the schedule is modelled by the
    workflow edge model, not by the synchronous ``invoke`` path.
    """

    trigger_type = TriggerType.TIMER

    def invoke(self, payload: Mapping[str, Any] | None = None, payload_bytes: int | None = None) -> "InvocationRecord":
        return self._platform.invoke(
            self._function_name,
            payload=payload or {},
            trigger=TriggerType.TIMER,
            payload_bytes=payload_bytes,
        )


#: Concrete trigger implementation per :class:`~repro.config.TriggerType`.
TRIGGER_CLASSES: Mapping[TriggerType, type[Trigger]] = {
    TriggerType.HTTP: HTTPTrigger,
    TriggerType.SDK: SDKTrigger,
    TriggerType.QUEUE: QueueTrigger,
    TriggerType.STORAGE: StorageTrigger,
    TriggerType.TIMER: TimerTrigger,
}


def create_trigger(
    platform: "FaaSPlatform", function_name: str, trigger_type: TriggerType
) -> Trigger:
    """Instantiate the trigger implementation registered for ``trigger_type``."""
    trigger_class = TRIGGER_CLASSES.get(trigger_type)
    if trigger_class is None:
        raise ConfigurationError(f"no trigger implementation for {trigger_type!r}")
    return trigger_class(platform, function_name)
