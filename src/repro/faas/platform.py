"""The abstract FaaS platform interface.

This is the "simplified interface" of Section 5.2 that SeBS implements once
per provider so benchmarks, triggers and experiments never touch
provider-specific APIs::

    class FaaS:
        def package_code(directory, language)
        def create_function(fname, code, lang, config)
        def update_function(fname, code, config)
        def create_trigger(fname, type)
        def query_logs(fname, type)

Concrete subclasses in :mod:`repro.simulator` implement the simulated AWS,
Azure, GCP and IaaS back-ends; extending SeBS to a new platform means
implementing exactly this interface, as in the original toolkit.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Mapping

from ..config import FunctionConfig, Language, Provider, TriggerType
from ..exceptions import FunctionNotFoundError
from .function import CodePackage, DeployedFunction
from .invocation import InvocationRecord
from .limits import PlatformLimits, limits_for
from .triggers import Trigger, create_trigger


class LogQueryType(str, enum.Enum):
    """Log/metric types that can be queried from the provider (Section 5.2)."""

    TIME = "time"
    MEMORY = "memory"
    COST = "cost"


class FaaSPlatform(abc.ABC):
    """Abstract base of every FaaS back-end."""

    provider: Provider = Provider.LOCAL

    def __init__(self) -> None:
        self._functions: dict[str, DeployedFunction] = {}

    # ------------------------------------------------------------------ info
    @property
    def limits(self) -> PlatformLimits:
        """Resource limits and allocation policy of this platform (Table 2)."""
        return limits_for(self.provider)

    @property
    def name(self) -> str:
        return self.provider.display_name

    def functions(self) -> list[str]:
        """Names of functions deployed on this platform."""
        return sorted(self._functions)

    def get_function(self, fname: str) -> DeployedFunction:
        try:
            return self._functions[fname]
        except KeyError:
            raise FunctionNotFoundError(fname) from None

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def package_code(self, benchmark_name: str, language: Language) -> CodePackage:
        """Build the deployment package of a benchmark for ``language``."""

    @abc.abstractmethod
    def create_function(
        self,
        fname: str,
        code: CodePackage,
        config: FunctionConfig,
    ) -> DeployedFunction:
        """Create a new function from a code package and configuration."""

    @abc.abstractmethod
    def update_function(
        self,
        fname: str,
        code: CodePackage | None = None,
        config: FunctionConfig | None = None,
    ) -> DeployedFunction:
        """Update code and/or configuration of an existing function.

        On all three commercial providers an update invalidates warm
        sandboxes — the mechanism the paper uses to enforce cold starts.
        """

    @abc.abstractmethod
    def invoke(
        self,
        fname: str,
        payload: Mapping[str, Any],
        trigger: TriggerType = TriggerType.HTTP,
        payload_bytes: int | None = None,
    ) -> InvocationRecord:
        """Synchronously invoke ``fname`` and return the invocation record."""

    @abc.abstractmethod
    def query_logs(self, fname: str, query: LogQueryType) -> list[float]:
        """Query provider-side measurements of past invocations."""

    # ----------------------------------------------------------- conveniences
    def create_trigger(self, fname: str, trigger: TriggerType = TriggerType.HTTP) -> Trigger:
        """Create a trigger object bound to a deployed function.

        All five trigger types are available; see
        :data:`repro.faas.triggers.TRIGGER_CLASSES`.
        """
        self.get_function(fname)  # validate existence
        return create_trigger(self, fname, trigger)

    def delete_function(self, fname: str) -> None:
        """Remove a deployed function."""
        self.get_function(fname)
        del self._functions[fname]

    def enforce_cold_start(self, fname: str) -> None:
        """Force the next invocation of ``fname`` to be a cold start.

        Default implementation bumps the function version (publishes a new
        version / updates configuration), which concrete platforms interpret
        as an eviction of all warm sandboxes.
        """
        self.update_function(fname)
