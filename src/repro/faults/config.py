"""Configuration of the fault-injection plane.

Attach a :class:`FaultPlaneConfig` to
:attr:`repro.config.SimulationConfig.faults` to inject operational failure
modes into trace replay: region/zone outage windows, correlated warm-pool
crashes, and latency storms.  With the default ``faults=None`` no fault
machinery runs and the simulator behaves bit-identically to earlier
releases (the golden fixtures pin this).

All schedule times are **trace-relative** seconds (request time 0 is the
replay's first instant), matching the timestamps of
:class:`~repro.workload.trace.WorkloadTrace`.  Every event optionally
restricts itself to a set of function names; ``functions=None`` means the
whole deployment (a region-wide event).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: Accepted outage behaviours: ``fail-fast`` turns every invocation attempt
#: around with an immediate error response (the gateway answers, the backend
#: is down); ``hang`` holds the connection open until the function timeout
#: before failing (the pathological variant that ties up clients).
OUTAGE_MODES = ("fail-fast", "hang")


@dataclass(frozen=True)
class OutageWindow:
    """A window during which invocations of the affected functions fail.

    Requests arriving inside ``[start_s, start_s + duration_s)`` never reach
    a sandbox: in ``fail-fast`` mode the client sees an error after one
    gateway round trip, in ``hang`` mode only after the function timeout.
    Synchronous clients may retry (see
    :attr:`repro.resilience.ResilienceConfig.retry_policy`); asynchronous
    deliveries are lost (terminal ``FAULTED`` records).
    """

    start_s: float
    duration_s: float
    mode: str = "fail-fast"
    functions: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("outage start_s must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("outage duration_s must be positive")
        if self.mode not in OUTAGE_MODES:
            raise ConfigurationError(
                f"unknown outage mode {self.mode!r}; choose from {', '.join(OUTAGE_MODES)}"
            )

    def applies_to(self, fname: str) -> bool:
        return self.functions is None or fname in self.functions


@dataclass(frozen=True)
class ContainerCrash:
    """A correlated crash event that evicts warm sandboxes at ``at_s``.

    Models a host/zone failure taking down the warm pool mid-replay: every
    *idle* warm sandbox created before the crash instant is evicted, so the
    next invocations pay cold starts again.  Sandboxes hosting in-flight
    executions survive (their work was already scheduled; the simulator has
    no mid-flight abort) — the crash manifests as a cold-start storm, the
    operationally dominant symptom.  ``survive_fraction`` spares each victim
    independently with that probability (drawn from the function's fault
    stream), modelling a partial-zone event.
    """

    at_s: float
    functions: tuple[str, ...] | None = None
    survive_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("crash at_s must be non-negative")
        if not 0.0 <= self.survive_fraction < 1.0:
            raise ConfigurationError("survive_fraction must lie in [0, 1)")

    def applies_to(self, fname: str) -> bool:
        return self.functions is None or fname in self.functions


@dataclass(frozen=True)
class LatencyStorm:
    """A window during which service degrades without failing outright.

    Inside ``[start_s, start_s + duration_s)`` the affected functions'
    compute draws (benchmark time, cold init) are scaled by
    ``compute_multiplier`` and their network draws (gateway, payload
    transfer, propagation) by ``network_multiplier``.  Draw *counts* are
    unchanged — the storm scales sampled values after the fact — so a storm
    never shifts the function's RNG streams relative to a calm replay.
    Overlapping storms multiply.
    """

    start_s: float
    duration_s: float
    compute_multiplier: float = 1.0
    network_multiplier: float = 1.0
    functions: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("storm start_s must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("storm duration_s must be positive")
        if self.compute_multiplier <= 0 or self.network_multiplier <= 0:
            raise ConfigurationError("storm multipliers must be positive")

    def applies_to(self, fname: str) -> bool:
        return self.functions is None or fname in self.functions


@dataclass(frozen=True)
class FaultPlaneConfig:
    """The full fault schedule injected into a replay.

    Attributes
    ----------
    outages / crashes / storms:
        The scheduled fault events, in any order (each function derives its
        own per-event view in config order, see
        :func:`repro.faults.plane.build_fault_state`).
    boundary_jitter_s:
        Per-function jitter added to every outage/storm window start.  Real
        outages do not hit every client at the same microsecond; each
        function shifts each window start by an independent uniform draw
        from ``[0, boundary_jitter_s)`` taken from its derived fault stream,
        so the schedule stays a pure function of (seed, function name) and
        sharded replay stays bit-identical.  0 disables jitter (and draws
        nothing).
    """

    outages: tuple[OutageWindow, ...] = ()
    crashes: tuple[ContainerCrash, ...] = ()
    storms: tuple[LatencyStorm, ...] = ()
    boundary_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.boundary_jitter_s < 0:
            raise ConfigurationError("boundary_jitter_s must be non-negative")
        if not (self.outages or self.crashes or self.storms):
            raise ConfigurationError(
                "a FaultPlaneConfig needs at least one outage, crash or storm "
                "(use faults=None to disable the fault plane)"
            )
