"""Deterministic fault-injection plane for trace replay.

The reliability model (:mod:`repro.simulator.reliability`) covers
*per-invocation* spurious failures; this package adds the correlated,
time-windowed failure modes that dominate real FaaS operations:

* **Outage windows** (:class:`OutageWindow`) — all invocations of the
  affected functions fail fast or hang to the function timeout;
* **Container crashes** (:class:`ContainerCrash`) — correlated events that
  evict warm pools mid-replay, triggering cold-start storms;
* **Latency storms** (:class:`LatencyStorm`) — multiplier windows on the
  compute and network draws (degradation without outright failure).

Enable it by attaching a :class:`FaultPlaneConfig` to
:attr:`repro.config.SimulationConfig.faults`.  Every schedule is derived
per function from the stream ``(seed, "fault", function name)``
(:func:`repro.utils.rng.derive_seed`), so fault replays stay bit-identical
between serial and sharded execution — the chaos-equivalence guarantee
pinned by ``tests/test_parallel_equivalence.py``.  Client-side reactions
(circuit breakers, hedging, fault retries) live in
:mod:`repro.resilience`.
"""

from .config import (
    OUTAGE_MODES,
    ContainerCrash,
    FaultPlaneConfig,
    LatencyStorm,
    OutageWindow,
)
from .plane import FunctionFaultState, build_fault_state

__all__ = [
    "OUTAGE_MODES",
    "ContainerCrash",
    "FaultPlaneConfig",
    "LatencyStorm",
    "OutageWindow",
    "FunctionFaultState",
    "build_fault_state",
]
