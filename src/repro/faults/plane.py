"""Per-function runtime view of the fault schedule.

The engine never consults :class:`~repro.faults.config.FaultPlaneConfig`
directly; at runtime-state creation each function builds a
:class:`FunctionFaultState` — its own filtered, boundary-jittered copy of
the schedule — from the derived stream ``(seed, "fault", function name)``.
Window boundaries are drawn **eagerly, in config order**, so the schedule a
function sees depends only on the master seed, the config and its own name:
never on traffic, co-deployed functions, or shard membership.  That is the
invariant that keeps fault-storm replays bit-identical between serial and
sharded execution (:mod:`repro.parallel`).

Crash events apply lazily, at the first dispatch of the function after the
crash instant: idle warm sandboxes created before the crash are evicted
(surviving ones drawn per sandbox from the same fault stream, in pool
creation order).  Lazy application is exact — a pool only changes when its
function dispatches, so no observable state differs from an eager sweep —
and it keeps the event queue free of engine-global fault events.
"""

from __future__ import annotations

from .config import ContainerCrash, FaultPlaneConfig, LatencyStorm, OutageWindow


class FunctionFaultState:
    """One function's materialised fault schedule (see module docstring)."""

    __slots__ = ("_outages", "_crashes", "_storms", "_crash_cursor", "_stream", "crash_evictions")

    def __init__(
        self,
        outages: list[tuple[float, float, OutageWindow]],
        crashes: list[ContainerCrash],
        storms: list[tuple[float, float, LatencyStorm]],
        stream,
    ):
        self._outages = outages
        self._crashes = sorted(crashes, key=lambda crash: crash.at_s)
        self._storms = storms
        self._crash_cursor = 0
        self._stream = stream
        #: Sandboxes evicted by crash events so far (reporting/tests).
        self.crash_evictions = 0

    def windows(self) -> list[tuple[str, float, float, str]]:
        """Every scheduled window as ``(kind, start, end, detail)`` tuples.

        Read-only view of the already-materialised (jittered) schedule, in
        config order — the observability layer announces these at replay
        start without touching any stream.
        """
        out: list[tuple[str, float, float, str]] = []
        for start, end, window in self._outages:
            out.append(("outage", start, end, window.mode))
        for start, end, storm in self._storms:
            out.append(
                (
                    "latency-storm",
                    start,
                    end,
                    f"compute x{storm.compute_multiplier:g}, "
                    f"network x{storm.network_multiplier:g}",
                )
            )
        return out

    def outage_at(self, now_rel: float) -> OutageWindow | None:
        """The outage window covering trace-relative ``now_rel``, if any."""
        for start, end, window in self._outages:
            if start <= now_rel < end:
                return window
        return None

    def multipliers_at(self, now_rel: float) -> tuple[float, float] | None:
        """Combined (compute, network) storm multipliers at ``now_rel``.

        ``None`` when no storm is active, so the engine can skip the scaling
        path entirely (a calm instant of a faulty replay produces the exact
        bytes a fault-free replay would).
        """
        compute = network = 1.0
        active = False
        for start, end, storm in self._storms:
            if start <= now_rel < end:
                compute *= storm.compute_multiplier
                network *= storm.network_multiplier
                active = True
        return (compute, network) if active else None

    def apply_crashes(self, pool, now_rel: float) -> int:
        """Apply every crash event due by ``now_rel`` to ``pool``.

        Evicts idle warm sandboxes (``in_use_count == 0``) present at the
        crash; each victim independently survives with the event's
        ``survive_fraction`` (one draw per victim, in pool creation order).
        Returns the number of sandboxes evicted by this call.
        """
        evicted = 0
        while self._crash_cursor < len(self._crashes):
            crash = self._crashes[self._crash_cursor]
            if crash.at_s > now_rel:
                break
            self._crash_cursor += 1
            victims = [
                container
                for container in pool
                if container.is_warm and pool.in_use_count(container.container_id) == 0
            ]
            if crash.survive_fraction > 0.0:
                victims = [
                    container
                    for container in victims
                    if float(self._stream.random()) >= crash.survive_fraction
                ]
            pool.evict(victims)
            evicted += len(victims)
        self.crash_evictions += evicted
        return evicted


def build_fault_state(
    fname: str, config: FaultPlaneConfig, stream
) -> FunctionFaultState | None:
    """Materialise ``fname``'s view of the fault schedule.

    Filters events to those applying to ``fname`` and jitters window starts
    with ``boundary_jitter_s`` draws from ``stream`` (the function's derived
    fault stream).  Draws happen here, eagerly, one per applicable
    outage/storm window **in config order** — the draw sequence is a pure
    function of (config, function name), independent of traffic.  Returns
    ``None`` when no event applies to ``fname`` at all (the engine then pays
    zero per-request fault overhead for it).
    """
    jitter = config.boundary_jitter_s

    def jittered(start_s: float) -> float:
        if jitter <= 0.0:
            return start_s
        return start_s + float(stream.uniform(0.0, jitter))

    outages = []
    for window in config.outages:
        if window.applies_to(fname):
            start = jittered(window.start_s)
            outages.append((start, start + window.duration_s, window))
    crashes = [crash for crash in config.crashes if crash.applies_to(fname)]
    storms = []
    for storm in config.storms:
        if storm.applies_to(fname):
            start = jittered(storm.start_s)
            storms.append((start, start + storm.duration_s, storm))
    if not (outages or crashes or storms):
        return None
    return FunctionFaultState(outages, crashes, storms, stream)
