"""Configuration of the client-side resilience layer.

Attach a :class:`ResilienceConfig` to
:attr:`repro.config.SimulationConfig.resilience` to give the simulated
*clients* of synchronous (HTTP/SDK) invocations operational defences:
circuit breakers, hedged requests, retries on fault responses, and a
staleness deadline.  With the default ``resilience=None`` no client
machinery runs and replay is bit-identical to earlier releases.

Like the retry policies of :mod:`repro.concurrency.retry`, everything here
is policy-free middleware in the Dearle et al. sense: the engine asks
narrow questions ("may this dispatch proceed?", "hedge after how long?")
and the layer answers without ever touching simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..concurrency.retry import RETRY_POLICY_NAMES
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Knobs of the per-function circuit breaker.

    Attributes
    ----------
    window:
        Sliding-window length (attempt outcomes) over which the failure
        rate is measured while CLOSED.
    min_calls:
        Minimum outcomes in the window before the breaker may trip (a
        single early failure must not open a cold breaker).
    failure_threshold:
        Failure fraction of the window at which the breaker trips.
    cooldown_s:
        Seconds an OPEN breaker rejects everything before its first
        recovery probe is allowed (OPEN -> HALF_OPEN happens on the first
        ``allow`` after the cooldown).
    half_open_probes:
        Probe budget of the HALF_OPEN state: that many requests are let
        through, and that many consecutive successes close the breaker
        (any failure re-trips it).
    """

    window: int = 20
    min_calls: int = 10
    failure_threshold: float = 0.5
    cooldown_s: float = 30.0
    half_open_probes: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("breaker window must be at least 1")
        if not 1 <= self.min_calls <= self.window:
            raise ConfigurationError("breaker min_calls must lie in [1, window]")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError("breaker failure_threshold must lie in (0, 1]")
        if self.cooldown_s <= 0:
            raise ConfigurationError("breaker cooldown_s must be positive")
        if self.half_open_probes < 1:
            raise ConfigurationError("breaker half_open_probes must be at least 1")


@dataclass(frozen=True)
class HedgeConfig:
    """Knobs of hedged requests (tail-latency duplicates).

    ``delay_s`` is the client's hedging trigger — canonically an offline
    measured latency percentile (e.g. p95).  It is a fixed number, not a
    live quantile: a client that re-estimated it from in-replay traffic
    would couple every function's behaviour to global traffic and break
    sharded bit-identity, so the simulator takes the deployed constant the
    way real hedging middleware takes a rolled-out config value.

    A synchronous request whose primary attempt will still be running
    ``delay_s`` after dispatch sends one duplicate; the first completion
    wins and **both invocations are billed** — the provider executed both,
    hedging trades money for tail latency.
    """

    delay_s: float

    def __post_init__(self) -> None:
        if self.delay_s <= 0:
            raise ConfigurationError("hedge delay_s must be positive")


@dataclass(frozen=True)
class ResilienceConfig:
    """The client-side resilience stack for synchronous invocations.

    Attributes
    ----------
    breaker:
        Per-function circuit breaker (:class:`CircuitBreakerConfig`);
        ``None`` disables breaking.  Breaker state is kept per function and
        fed every attempt outcome the client observes (execution results,
        fault responses, 429s), so sharded replay stays bit-identical.
    hedge:
        Hedged-request policy (:class:`HedgeConfig`); ``None`` disables
        hedging.
    retry_policy / max_retries / retry_base_delay_s / retry_max_delay_s:
        Client reaction to **fault responses** (outage windows — see
        :mod:`repro.faults`), using the same pluggable policy registry as
        the 429 path (:mod:`repro.concurrency.retry`) but drawing jitter
        from the separate stream ``(seed, "client-retry", fname)``.  The
        default ``"none"`` fails fast.
    stale_after_s:
        Client deadline on *admission* delay: an execution admitted more
        than this many seconds after the request's original submission is
        wasted work — the client stopped waiting — and its record flips to
        ``FAILED`` (``error="stale"``) while still occupying its sandbox
        and being billed.  When ``retry_policy`` is set, the client also
        *resubmits* each timed-out attempt (per-attempt timeout, no
        end-to-end deadline propagation): the doomed execution still runs
        while its replacement grinds through admission, and — since the
        saga is already past the original deadline — every further
        execution is doomed too.  This work amplification is the feedback
        loop behind metastable failure: one user request burns many
        executions, so a recovered platform stays saturated with work
        nobody wants until retry budgets run out.  The terminal record
        carries the summed cost of every execution its saga burned.
        ``None`` disables the deadline.
    """

    breaker: CircuitBreakerConfig | None = None
    hedge: HedgeConfig | None = None
    retry_policy: str = "none"
    max_retries: int = 3
    retry_base_delay_s: float = 0.05
    retry_max_delay_s: float = 2.0
    stale_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.retry_policy not in RETRY_POLICY_NAMES:
            raise ConfigurationError(
                f"unknown retry policy {self.retry_policy!r}; "
                f"choose from {', '.join(RETRY_POLICY_NAMES)}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.retry_base_delay_s <= 0 or self.retry_max_delay_s <= 0:
            raise ConfigurationError("retry delays must be positive")
        if self.stale_after_s is not None and self.stale_after_s <= 0:
            raise ConfigurationError("stale_after_s must be positive (or None)")
