"""Client-side resilience layer: circuit breakers, hedging, fault retries.

Where :mod:`repro.faults` models what the *platform* does to traffic, this
package models what well-built *clients* do back:

* **Circuit breakers** (:class:`CircuitBreaker`) — per-function
  closed/open/half-open state machines over sliding failure-rate windows,
  with cooldown and recovery probes;
* **Hedged requests** (:class:`HedgeConfig`) — duplicate a slow
  synchronous request after a p-latency delay, first completion wins,
  both invocations billed;
* **Fault retries** — the pluggable backoff registry of
  :mod:`repro.concurrency.retry` applied to outage fault responses, with
  jitter from the derived stream ``(seed, "client-retry", fname)``;
* **Staleness deadline** — admissions older than ``stale_after_s`` are
  wasted work, the mechanism behind metastable goodput collapse.

Enable it by attaching a :class:`ResilienceConfig` to
:attr:`repro.config.SimulationConfig.resilience`.  All state is per
function and deterministic, so resilience-enabled replays stay
bit-identical between serial and sharded execution.  The emergent
retry-storm/metastable-failure result is demonstrated by
:class:`repro.experiments.resilience.ResilienceExperiment` and gated in
``benchmarks/bench_fault_storm.py``.
"""

from .breaker import VALID_TRANSITIONS, BreakerState, CircuitBreaker
from .config import CircuitBreakerConfig, HedgeConfig, ResilienceConfig

__all__ = [
    "VALID_TRANSITIONS",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "HedgeConfig",
    "ResilienceConfig",
]
