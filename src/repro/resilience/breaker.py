"""The client circuit-breaker state machine.

A breaker guards one function's synchronous call path.  It consumes two
kinds of events, both timestamped on the virtual clock:

* :meth:`CircuitBreaker.allow` — asked before each dispatch attempt;
* :meth:`CircuitBreaker.on_outcome` — one verdict per attempt the client
  observed: a success/failure from an execution result or fault response,
  or a *throttle* (HTTP 429).  Throttles are deliberately asymmetric:
  while CLOSED they are ignored (a busy-but-healthy platform must not
  trip the breaker — ordinary congestion is the retry policy's job), but
  a throttled HALF_OPEN probe counts as a failed probe and re-trips (a
  platform that cannot even admit the probe is not recovered, and
  consuming the probe budget without a verdict would otherwise wedge the
  breaker in HALF_OPEN forever).

States and transitions (the only legal ones, property-tested in
``tests/test_resilience.py``)::

            trip (failure rate >= threshold over >= min_calls)
    CLOSED ----------------------------------------------------> OPEN
      ^                                                           |
      |  half_open_probes successes                cooldown_s     |
      |                                            elapsed, on    |
      +------------------- HALF_OPEN <--------------- allow() ----+
                            |    ^
                            +----+  any failure -> OPEN (re-trip)

* **CLOSED** admits everything and keeps a sliding window of the last
  ``window`` outcomes; once at least ``min_calls`` outcomes are in the
  window and the failure fraction reaches ``failure_threshold``, it trips.
* **OPEN** rejects everything (the engine records ``SHORT_CIRCUITED``)
  until ``cooldown_s`` has elapsed since the trip; the first ``allow``
  after that moves to HALF_OPEN.  Outcomes arriving while OPEN (late
  completions of pre-trip dispatches) are ignored.
* **HALF_OPEN** admits up to ``half_open_probes`` probe requests and
  rejects the rest.  *Any* observed failure re-trips immediately;
  ``half_open_probes`` successes close the breaker and clear the window.

Determinism: the breaker holds no RNG and is driven exclusively by its own
function's event stream (every timestamp it sees derives from that
function's request history), so breaker decisions are a pure function of
the per-function outcome stream — the property that keeps sharded replay
bit-identical to serial (:mod:`repro.parallel`).
"""

from __future__ import annotations

import enum
from collections import deque

from .config import CircuitBreakerConfig


class BreakerState(str, enum.Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Legal (from, to) state transitions; anything else is a bug.
VALID_TRANSITIONS = frozenset(
    {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    }
)


class CircuitBreaker:
    """Per-function breaker (see module docstring for the state machine)."""

    __slots__ = (
        "config",
        "state",
        "_window",
        "_window_failures",
        "_opened_at",
        "_probes_sent",
        "_probe_successes",
        "opens",
    )

    def __init__(self, config: CircuitBreakerConfig):
        self.config = config
        self.state = BreakerState.CLOSED
        self._window: deque[bool] = deque(maxlen=config.window)
        self._window_failures = 0
        self._opened_at = 0.0
        self._probes_sent = 0
        self._probe_successes = 0
        #: Number of CLOSED/HALF_OPEN -> OPEN transitions so far.
        self.opens = 0

    # ------------------------------------------------------------- queries
    @property
    def opened_at(self) -> float:
        """Virtual time of the most recent trip (meaningful while not CLOSED)."""
        return self._opened_at

    def allow(self, now: float) -> bool:
        """Whether a dispatch attempt at ``now`` may proceed.

        May advance OPEN to HALF_OPEN (the recovery probe path); in
        HALF_OPEN each ``True`` consumes one probe slot.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at < self.config.cooldown_s:
                return False
            self._enter_half_open()
        # HALF_OPEN: admit while probe budget remains.
        if self._probes_sent < self.config.half_open_probes:
            self._probes_sent += 1
            return True
        return False

    # -------------------------------------------------------------- events
    def on_outcome(self, now: float, success: bool, throttle: bool = False) -> None:
        """Feed one observed attempt outcome (timestamped ``now``).

        ``throttle`` marks a 429 response: ignored while CLOSED, treated
        as a failed probe while HALF_OPEN (see the module docstring for
        why the asymmetry).  ``success`` is ignored when ``throttle``.
        """
        if self.state is BreakerState.OPEN:
            # Late verdict of a pre-trip dispatch: the breaker already acted.
            return
        if self.state is BreakerState.HALF_OPEN:
            if throttle or not success:
                self._trip(now)
            else:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_probes:
                    self._close()
            return
        if throttle:
            # Ordinary congestion: not the breaker's business while CLOSED.
            return
        # CLOSED: slide the outcome window and check the trip condition.
        if len(self._window) == self._window.maxlen and not self._window[0]:
            self._window_failures -= 1
        self._window.append(success)
        if not success:
            self._window_failures += 1
        if (
            len(self._window) >= self.config.min_calls
            and self._window_failures >= self.config.failure_threshold * len(self._window)
        ):
            self._trip(now)

    # --------------------------------------------------------- transitions
    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self._window.clear()
        self._window_failures = 0
        self._probes_sent = 0
        self._probe_successes = 0
        self.opens += 1

    def _enter_half_open(self) -> None:
        self.state = BreakerState.HALF_OPEN
        self._probes_sent = 0
        self._probe_successes = 0

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._window.clear()
        self._window_failures = 0
