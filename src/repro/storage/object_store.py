"""An in-process, bucket-based object store.

The store mimics the subset of the S3 / Azure Blob / Google Cloud Storage
APIs that SeBS benchmarks use through the abstract storage interface:
creating buckets, uploading and downloading objects, listing keys and
deleting objects.  In the original toolkit a minio server plays this role for
local evaluation; here the store is in-process so tests and the simulator can
run without any external service.

All traffic is metered (see :mod:`repro.storage.metering`) so the cost model
can bill requests and transferred bytes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..exceptions import BucketNotFoundError, ObjectNotFoundError, StorageError
from .metering import StorageMetering


@dataclass(frozen=True)
class StoredObject:
    """A single immutable object stored in a bucket."""

    key: str
    data: bytes
    content_type: str = "application/octet-stream"
    metadata: Mapping[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)


class Bucket:
    """A named container of objects."""

    def __init__(self, name: str, metering: StorageMetering):
        if not name:
            raise StorageError("bucket name must be non-empty")
        self.name = name
        self._objects: dict[str, StoredObject] = {}
        self._metering = metering

    def put(
        self,
        key: str,
        data: bytes,
        content_type: str = "application/octet-stream",
        metadata: Mapping[str, str] | None = None,
    ) -> StoredObject:
        """Store ``data`` under ``key``, overwriting any existing object."""
        if not key:
            raise StorageError("object key must be non-empty")
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError("object data must be bytes")
        obj = StoredObject(key=key, data=bytes(data), content_type=content_type, metadata=dict(metadata or {}))
        self._objects[key] = obj
        self._metering.record_write(obj.size)
        return obj

    def get(self, key: str) -> StoredObject:
        """Retrieve the object stored under ``key``."""
        try:
            obj = self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(self.name, key) from None
        self._metering.record_read(obj.size)
        return obj

    def head(self, key: str) -> StoredObject:
        """Like :meth:`get` but does not count transferred bytes."""
        try:
            obj = self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(self.name, key) from None
        self._metering.record_read(0)
        return obj

    def delete(self, key: str) -> None:
        """Remove the object stored under ``key``."""
        if key not in self._objects:
            raise ObjectNotFoundError(self.name, key)
        del self._objects[key]
        self._metering.record_write(0)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        """Return all keys starting with ``prefix`` in lexicographic order."""
        self._metering.record_list()
        return sorted(key for key in self._objects if key.startswith(prefix))

    def __len__(self) -> int:
        return len(self._objects)

    def total_size(self) -> int:
        """Total number of bytes stored in the bucket."""
        return sum(obj.size for obj in self._objects.values())


class ObjectStore:
    """Persistent storage service: a collection of named buckets."""

    def __init__(self, name: str = "object-store"):
        self.name = name
        self.metering = StorageMetering()
        self._buckets: dict[str, Bucket] = {}

    def create_bucket(self, name: str, exist_ok: bool = True) -> Bucket:
        """Create (or fetch, when ``exist_ok``) the bucket called ``name``."""
        if name in self._buckets:
            if exist_ok:
                return self._buckets[name]
            raise StorageError(f"bucket {name!r} already exists")
        bucket = Bucket(name, self.metering)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        """Return an existing bucket, raising if it does not exist."""
        try:
            return self._buckets[name]
        except KeyError:
            raise BucketNotFoundError(name) from None

    def delete_bucket(self, name: str) -> None:
        if name not in self._buckets:
            raise BucketNotFoundError(name)
        del self._buckets[name]

    def has_bucket(self, name: str) -> bool:
        return name in self._buckets

    def list_buckets(self) -> list[str]:
        return sorted(self._buckets)

    # Convenience helpers mirroring the SeBS abstract storage interface used
    # inside benchmark kernels: a single call to upload or download an object
    # given a (bucket, key) pair.
    def upload(self, bucket: str, key: str, data: bytes, **kwargs) -> StoredObject:
        return self.create_bucket(bucket).put(key, data, **kwargs)

    def download(self, bucket: str, key: str) -> bytes:
        return self.bucket(bucket).get(key).data

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        return self.bucket(bucket).list_keys(prefix)

    def total_size(self) -> int:
        return sum(bucket.total_size() for bucket in self._buckets.values())

    def clear(self) -> None:
        """Remove every bucket and reset metering (used between experiments)."""
        self._buckets.clear()
        self.metering.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._buckets

    def __iter__(self) -> Iterable[Bucket]:
        return iter(self._buckets.values())
