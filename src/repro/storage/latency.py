"""Latency and throughput model of cloud storage access.

The paper shows (Section 6.2 Q1/Q3) that I/O-bound benchmarks such as
``uploader`` and ``compression`` have the widest latency distributions: I/O
bandwidth scales with the function's memory allocation, and co-located
invocations contend for the server's network bandwidth, producing long tails
and outliers.  This module turns a storage operation (bytes transferred,
direction, memory allocation) into a simulated duration with those
characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class StorageProfile:
    """Throughput/latency parameters for one provider's persistent storage.

    Attributes
    ----------
    base_latency_s:
        Fixed per-request latency (connection setup + first byte).
    peak_bandwidth_mbps:
        Download/upload bandwidth (MB/s) available to a function at the
        reference memory size.
    reference_memory_mb:
        Memory size at which ``peak_bandwidth_mbps`` applies; bandwidth scales
        linearly below it (CPU and network share are proportional to memory)
        and saturates above it.
    jitter_cv:
        Coefficient of variation of the log-normal latency noise.
    contention_tail_probability:
        Probability that a request experiences a contention event (another
        co-located function saturating the NIC), multiplying its duration by
        ``contention_slowdown``.
    """

    base_latency_s: float = 0.02
    peak_bandwidth_mbps: float = 80.0
    reference_memory_mb: int = 1024
    jitter_cv: float = 0.15
    contention_tail_probability: float = 0.05
    contention_slowdown: float = 3.0

    def __post_init__(self) -> None:
        if self.base_latency_s < 0 or self.peak_bandwidth_mbps <= 0:
            raise ConfigurationError("storage profile latencies/bandwidths must be positive")
        if not 0 <= self.contention_tail_probability < 1:
            raise ConfigurationError("contention_tail_probability must lie in [0, 1)")


class StorageLatencyModel:
    """Computes simulated durations of storage transfers."""

    def __init__(self, profile: StorageProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    @property
    def profile(self) -> StorageProfile:
        return self._profile

    def bandwidth_mbps(self, memory_mb: int) -> float:
        """Effective bandwidth for a function with ``memory_mb`` of memory.

        Bandwidth grows linearly with the memory allocation up to the
        reference size and saturates afterwards, mirroring the
        CPU-proportional-to-memory allocation policy of AWS and GCP.
        """
        if memory_mb <= 0:
            # Dynamic allocation (Azure): behave like the reference size.
            return self._profile.peak_bandwidth_mbps
        share = min(1.0, memory_mb / self._profile.reference_memory_mb)
        # Even the smallest functions retain a fraction of the NIC.
        share = max(share, 0.1)
        return self._profile.peak_bandwidth_mbps * share

    def transfer_time(self, num_bytes: int, memory_mb: int, contention: bool | None = None) -> float:
        """Simulated duration (seconds) of transferring ``num_bytes``.

        ``contention`` forces or suppresses a co-location contention event;
        when ``None`` (stand-alone use) the event is drawn per transfer.
        Invocation-level callers draw it once per invocation instead, because
        a co-located noisy neighbour slows down *all* transfers of that
        invocation, producing the stragglers observed for ``compression``.
        """
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer a negative number of bytes")
        profile = self._profile
        bandwidth = self.bandwidth_mbps(memory_mb) * 1024 * 1024  # bytes/s
        base = profile.base_latency_s + num_bytes / bandwidth
        # Log-normal multiplicative jitter keeps durations positive and
        # produces the right-skewed distributions observed in the paper.
        if profile.jitter_cv > 0:
            sigma = np.sqrt(np.log(1.0 + profile.jitter_cv**2))
            jitter = float(self._rng.lognormal(mean=-sigma**2 / 2.0, sigma=sigma))
        else:
            jitter = 1.0
        duration = base * jitter
        if contention is None:
            contention = self._rng.random() < profile.contention_tail_probability
        if contention:
            duration *= profile.contention_slowdown
        return float(duration)

    def draw_contention(self) -> bool:
        """Draw whether an invocation experiences a co-location contention event."""
        return bool(self._rng.random() < self._profile.contention_tail_probability)

    def request_time(self, memory_mb: int) -> float:
        """Duration of a metadata-only request (list, delete, head)."""
        return self.transfer_time(0, memory_mb)
