"""Ephemeral (in-memory, low-latency) key-value storage.

The platform model's label 4: a Redis/Memcached-like store used to pass
payloads between consecutive invocations and for communication in serverless
distributed computing.  The paper notes that relying on a non-scaling VM for
this is arguably a serverless anti-pattern, but it remains the standard way
to obtain low-latency data exchange; SeBS models it so workflows and future
benchmarks can exercise that code path.
"""

from __future__ import annotations

from typing import Iterator

from ..exceptions import StorageError
from .metering import StorageMetering


class EphemeralStore:
    """A flat key-value store with optional capacity limit and TTL support."""

    def __init__(self, capacity_bytes: int | None = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise StorageError("capacity_bytes must be positive when given")
        self._capacity = capacity_bytes
        self._data: dict[str, bytes] = {}
        self._expiry: dict[str, float] = {}
        self.metering = StorageMetering()

    def set(self, key: str, value: bytes, expire_at: float | None = None) -> None:
        """Store ``value`` under ``key``; optionally expiring at a timestamp."""
        if not key:
            raise StorageError("key must be non-empty")
        if not isinstance(value, (bytes, bytearray)):
            raise StorageError("value must be bytes")
        value = bytes(value)
        projected = self.used_bytes() - len(self._data.get(key, b"")) + len(value)
        if self._capacity is not None and projected > self._capacity:
            raise StorageError(
                f"ephemeral store capacity exceeded ({projected} > {self._capacity} bytes)"
            )
        self._data[key] = value
        if expire_at is not None:
            self._expiry[key] = float(expire_at)
        else:
            self._expiry.pop(key, None)
        self.metering.record_write(len(value))

    def get(self, key: str, now: float = 0.0) -> bytes | None:
        """Return the value for ``key`` or ``None`` if absent/expired."""
        self._evict_expired(now)
        value = self._data.get(key)
        self.metering.record_read(len(value) if value is not None else 0)
        return value

    def delete(self, key: str) -> bool:
        """Remove ``key``; return whether it existed."""
        existed = key in self._data
        self._data.pop(key, None)
        self._expiry.pop(key, None)
        if existed:
            self.metering.record_write(0)
        return existed

    def keys(self, now: float = 0.0) -> list[str]:
        self._evict_expired(now)
        self.metering.record_list()
        return sorted(self._data)

    def used_bytes(self) -> int:
        return sum(len(value) for value in self._data.values())

    def _evict_expired(self, now: float) -> None:
        expired = [key for key, when in self._expiry.items() if when <= now]
        for key in expired:
            self._data.pop(key, None)
            self._expiry.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))
