"""Storage substrate: persistent object storage and ephemeral key-value store.

The paper's platform model (Section 2) includes two storage tiers:

* **Persistent storage** (label 3) — bucket-based object stores such as AWS
  S3, Azure Blob Storage and Google Cloud Storage, offering high throughput
  and high latency at low cost.  Benchmarks access it through the SeBS
  abstract storage interface; the toolkit implements one-to-one mappings to
  each provider API.
* **Ephemeral storage** (label 4) — low-latency in-memory key-value stores
  used to pass payloads between invocations.

This package provides in-process implementations of both, plus request and
byte metering (needed by the cost model) and a latency/throughput model that
captures the memory-dependent I/O bandwidth and the contention-induced
variance reported in Section 6.2.
"""

from .metering import StorageMetering
from .object_store import Bucket, ObjectStore, StoredObject
from .ephemeral import EphemeralStore
from .latency import StorageLatencyModel, StorageProfile

__all__ = [
    "Bucket",
    "ObjectStore",
    "StoredObject",
    "EphemeralStore",
    "StorageMetering",
    "StorageLatencyModel",
    "StorageProfile",
]
