"""Request and byte metering for storage operations.

Persistent storage fees are charged per 10,000 read/write operations and per
GB stored or transferred (Section 2, label 3).  The cost analysis in
Section 6.3 therefore needs an exact count of the requests and bytes each
benchmark run performs; the metering object is attached to every store and
can be snapshotted and diffed around an invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StorageMetering:
    """Mutable counters of storage traffic."""

    read_requests: int = 0
    write_requests: int = 0
    list_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record_read(self, num_bytes: int) -> None:
        self.read_requests += 1
        self.bytes_read += int(num_bytes)

    def record_write(self, num_bytes: int) -> None:
        self.write_requests += 1
        self.bytes_written += int(num_bytes)

    def record_list(self) -> None:
        self.list_requests += 1

    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests + self.list_requests

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def snapshot(self) -> "StorageMetering":
        """Return an immutable copy of the current counters."""
        return StorageMetering(
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            list_requests=self.list_requests,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def delta(self, earlier: "StorageMetering") -> "StorageMetering":
        """Return the traffic accumulated since ``earlier`` was snapshotted."""
        return StorageMetering(
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            list_requests=self.list_requests - earlier.list_requests,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
        )

    def reset(self) -> None:
        self.read_requests = 0
        self.write_requests = 0
        self.list_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0


@dataclass
class MeteredWindow:
    """Helper recording a before/after pair of metering snapshots."""

    metering: StorageMetering
    start: StorageMetering = field(init=False)

    def __post_init__(self) -> None:
        self.start = self.metering.snapshot()

    def close(self) -> StorageMetering:
        """Return the traffic recorded since the window was opened."""
        return self.metering.delta(self.start)
