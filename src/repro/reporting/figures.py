"""Figure data series.

Each helper turns experiment result objects into the data series the paper's
figures plot, as lists of plain dictionaries (easily dumped to CSV/JSON or
formatted with :func:`repro.reporting.tables.format_table`).  The benchmark
harness under ``benchmarks/`` calls these to regenerate every figure.
"""

from __future__ import annotations

from ..config import Provider, StartType
from ..exceptions import ExperimentError
from ..experiments.eviction_model import EvictionModelResult
from ..experiments.invocation_overhead import InvocationOverheadResult
from ..experiments.perf_cost import PerfCostResult
from ..models.eviction import ContainerEvictionModel


def figure3_performance_series(result: PerfCostResult) -> list[dict]:
    """Figure 3: warm execution-time distributions versus memory size."""
    rows = []
    for config in result.configs:
        if not config.viable:
            continue
        metrics = config.warm_metrics()
        rows.append(
            {
                "benchmark": config.benchmark,
                "provider": config.provider.value,
                "memory_mb": config.memory_mb if config.memory_mb else "dynamic",
                "benchmark_time_median_s": round(metrics.benchmark_time.median, 4),
                "provider_time_median_s": round(metrics.provider_time.median, 4),
                "client_time_median_s": round(metrics.client_time.median, 4),
                "client_time_p2_s": round(metrics.client_time.whisker_low, 4),
                "client_time_p98_s": round(metrics.client_time.whisker_high, 4),
                "samples": metrics.samples,
            }
        )
    return rows


def figure4_cold_overhead_series(result: PerfCostResult) -> list[dict]:
    """Figure 4: distributions of cold/warm client-time ratios."""
    rows = []
    for config in result.configs:
        if not config.viable or not config.cold_records:
            continue
        try:
            overhead = config.cold_start_overhead()
        except ExperimentError:
            continue
        rows.append(overhead.to_row())
    return rows


def figure5a_cost_series(result: PerfCostResult) -> list[dict]:
    """Figure 5a: compute cost of one million invocations versus memory."""
    from ..experiments.cost_analysis import CostAnalysis

    return [entry.to_row() for entry in CostAnalysis(result).cost_of_million()]


def figure5b_resource_usage_series(result: PerfCostResult) -> list[dict]:
    """Figure 5b: median ratio of used to billed resources."""
    from ..experiments.cost_analysis import CostAnalysis

    return [entry.to_row() for entry in CostAnalysis(result).resource_usage()]


def figure6_invocation_overhead_series(result: InvocationOverheadResult) -> list[dict]:
    """Figure 6: invocation overhead versus payload size, cold and warm."""
    rows = [obs.to_row() for obs in result.observations]
    for (provider, start_type), model in sorted(
        result.models.items(), key=lambda item: (item[0][0].value, item[0][1].value)
    ):
        row = model.to_row()
        row["provider"] = provider.value
        row["start_type"] = start_type.value
        row["payload_mb"] = "model"
        row["median_invocation_time_s"] = ""
        row["samples"] = ""
        rows.append(row)
    return rows


def figure7_eviction_series(result: EvictionModelResult) -> list[dict]:
    """Figure 7: warm containers versus elapsed periods, with model predictions."""
    model = result.model or ContainerEvictionModel(period_s=380.0, r_squared=1.0, n_observations=0)
    rows = []
    for obs in result.observations:
        periods = int(obs.parameters.delta_t_s // model.period_s)
        rows.append(
            {
                "d_init": obs.parameters.d_init,
                "delta_t_s": obs.parameters.delta_t_s,
                "periods": periods,
                "memory_mb": obs.parameters.memory_mb,
                "language": obs.parameters.language.value,
                "code_package_mb": obs.parameters.code_package_mb,
                "warm_observed": obs.warm_containers,
                "warm_predicted": round(model.predict(obs.parameters.d_init, obs.parameters.delta_t_s), 2),
            }
        )
    return rows
