"""Static tables of the paper and a generic table formatter.

Table 2 (provider policies) and Table 3 (the application suite) are derived
from the library's own metadata — the platform limits and the benchmark
registry — so they stay consistent with what the simulator actually enforces.
Table 9 summarises the insights the evaluation reproduces.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..benchmarks.registry import BenchmarkRegistry, default_registry
from ..config import Language, Provider
from ..faas.limits import limits_for


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows of dictionaries as an aligned plain-text table.

    The default column set is the *union* of all rows' keys, ordered by
    first appearance — rows may legitimately be ragged (e.g. the overload
    counters only appear on functions the limiter actually shed), and
    deriving columns from the first row alone would silently hide the
    other rows' extra fields.
    """
    if not rows:
        return "(no data)"
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row.keys():
                seen.setdefault(key)
        columns = list(seen)
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def table2_platform_limits() -> list[dict]:
    """Table 2: comparison of the commercial FaaS providers."""
    rows = []
    for provider in (Provider.AWS, Provider.AZURE, Provider.GCP):
        limits = limits_for(provider)
        memory = (
            "Dynamic, up to %d MB" % limits.memory_max_mb
            if not limits.memory_static
            else f"Static, {limits.memory_min_mb} - {limits.memory_max_mb} MB"
        )
        rows.append(
            {
                "policy": provider.display_name,
                "languages": ", ".join(lang.display_name for lang in limits.languages),
                "time_limit_min": round(limits.time_limit_s / 60, 1),
                "memory_allocation": memory,
                "full_vcpu_at_mb": limits.full_vcpu_memory_mb,
                "billing": limits.billing_description,
                "deployment_limit_mb": limits.deployment_limit_mb,
                "concurrency_limit": limits.concurrency_limit,
                "temporary_disk_mb": limits.temporary_disk_mb,
            }
        )
    return rows


def table3_applications(registry: BenchmarkRegistry | None = None) -> list[dict]:
    """Table 3: the SeBS application suite with languages and dependencies."""
    registry = registry or default_registry()
    rows = []
    for benchmark in registry:
        rows.append(
            {
                "type": benchmark.category.value,
                "name": benchmark.name,
                "languages": ", ".join(lang.display_name for lang in benchmark.languages),
                "dependencies": ", ".join(benchmark.dependencies) or "-",
                "native_dependencies": "yes" if benchmark.requires_native_dependencies else "no",
            }
        )
    return rows


#: The insight summary of Table 9: each entry names the result, whether the
#: paper marks it as a novel insight, and which experiment of this library
#: reproduces it.
TABLE9_INSIGHTS: tuple[dict, ...] = (
    {
        "insight": "AWS Lambda achieves the best performance on all workloads",
        "novel": False,
        "experiment": "perf-cost (Figure 3)",
    },
    {
        "insight": "Irregular performance of concurrent Azure Function executions",
        "novel": False,
        "experiment": "perf-cost (Figure 3, Q3)",
    },
    {
        "insight": "I/O-bound functions experience very high latency variations",
        "novel": False,
        "experiment": "perf-cost (Figure 3, Q1/Q3)",
    },
    {
        "insight": "High-memory allocations increase cold startup overheads on GCP",
        "novel": True,
        "experiment": "perf-cost (Figure 4, Q2)",
    },
    {
        "insight": "GCP functions experience reliability and availability issues",
        "novel": True,
        "experiment": "perf-cost (Q3)",
    },
    {
        "insight": "AWS Lambda performance is not competitive against VMs with comparable resources",
        "novel": True,
        "experiment": "faas-vs-iaas (Table 5)",
    },
    {
        "insight": "High costs of Azure Functions due to unconfigurable deployment",
        "novel": True,
        "experiment": "cost analysis (Figure 5a)",
    },
    {
        "insight": "Resource underutilization due to high granularity of pricing models",
        "novel": True,
        "experiment": "cost analysis (Figure 5b)",
    },
    {
        "insight": "Break-even analysis for IaaS and FaaS deployment",
        "novel": False,
        "experiment": "cost analysis (Table 6)",
    },
    {
        "insight": "The function output size can be a dominating factor in pricing",
        "novel": True,
        "experiment": "cost analysis (Q4)",
    },
    {
        "insight": "Accurate methodology for estimation of invocation latency",
        "novel": True,
        "experiment": "invocation-overhead (Figure 6)",
    },
    {
        "insight": "Warm latencies are consistent and depend linearly on payload size",
        "novel": True,
        "experiment": "invocation-overhead (Figure 6, Q2)",
    },
    {
        "insight": "Highly variable and unpredictable cold latencies on Azure and GCP",
        "novel": False,
        "experiment": "invocation-overhead (Figure 6, Q1)",
    },
    {
        "insight": "AWS Lambda container eviction is agnostic to function properties",
        "novel": False,
        "experiment": "eviction-model (Figure 7, Q1)",
    },
    {
        "insight": "Analytical model of the AWS Lambda container eviction policy",
        "novel": False,
        "experiment": "eviction-model (Figure 7, Q2)",
    },
)


def table9_insights() -> list[dict]:
    """Table 9: the insights delivered by the evaluation."""
    return [dict(entry) for entry in TABLE9_INSIGHTS]
