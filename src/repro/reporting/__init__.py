"""Reporting layer: formats experiment results into the paper's tables/figures."""

from .summaries import replay_summary
from .tables import (
    format_table,
    table2_platform_limits,
    table3_applications,
    table9_insights,
)

__all__ = [
    "format_table",
    "replay_summary",
    "table2_platform_limits",
    "table3_applications",
    "table9_insights",
]
