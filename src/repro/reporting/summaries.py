"""Uniform machine-readable replay summaries for the CLI ``--output`` files.

Every replaying subcommand (``workload``, ``workflow``, ``fault-storm``)
embeds the same ``"replay"`` block per replayed unit, built here, so
scripted consumers read one schema regardless of the subcommand:
``wall_clock_s`` and ``throughput_per_s`` always, ``supervision`` when the
replay ran supervised, ``profile`` when host profiling was requested.
"""

from __future__ import annotations


def replay_summary(result) -> dict:
    """The uniform ``"replay"`` block for one replay result.

    Duck-typed over :class:`~repro.workload.engine.WorkloadResult`,
    :class:`~repro.workflows.engine.WorkflowReplayResult` and
    :class:`~repro.experiments.resilience.ResilienceVariantResult` — all
    carry ``wall_clock_s`` / ``throughput_per_s`` and optionally a
    ``supervision`` dict and a ``profile`` object.
    """
    summary: dict = {
        "wall_clock_s": result.wall_clock_s,
        "throughput_per_s": result.throughput_per_s,
    }
    supervision = getattr(result, "supervision", None)
    if supervision is not None:
        summary["supervision"] = supervision
    profile = getattr(result, "profile", None)
    if profile is not None:
        summary["profile"] = profile.to_dict()
    return summary
