"""Network substrate: latency distributions, payload transfer, clock sync.

The invocation-overhead experiment (Section 6.4) measures the time between a
client-side invocation and the start of function execution.  Doing so
requires comparing timestamps taken on two different machines, which the
paper solves with a clock-drift estimation protocol based on exchanging
messages until no lower round-trip time is observed for N consecutive
iterations.  This package models client-to-cloud links with asymmetric,
right-skewed round-trip time distributions and implements that protocol.
"""

from .latency import NetworkLink, NetworkProfile
from .clock_sync import ClockDriftEstimator, DriftEstimate
from .transfer import payload_transfer_time

__all__ = [
    "NetworkLink",
    "NetworkProfile",
    "ClockDriftEstimator",
    "DriftEstimate",
    "payload_transfer_time",
]
