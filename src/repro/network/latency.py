"""Client-to-cloud network link model.

Round-trip times to cloud regions follow an asymmetric distribution: a hard
lower bound given by the propagation delay plus right-skewed queueing noise
(the paper references the same observation when motivating its clock
synchronisation protocol).  ``NetworkLink`` produces per-message one-way and
round-trip delays from such a distribution, with an optional constant clock
offset between the two endpoints so the drift-estimation protocol has
something to discover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkProfile:
    """Parameters of a client-to-region network path.

    Attributes
    ----------
    min_rtt_s:
        Propagation-delay floor of the round trip.
    jitter_scale_s:
        Scale of the exponentially distributed queueing delay added on top of
        the floor (per direction).
    asymmetry:
        Fraction of the base RTT attributed to the request direction; 0.5
        means symmetric.  The paper stresses that the request path includes
        FaaS controller overheads while the response is plain network
        transfer, so values above 0.5 are typical.
    bandwidth_mbps:
        Bandwidth used to convert payload sizes into serialization delay.
    """

    min_rtt_s: float = 0.03
    jitter_scale_s: float = 0.004
    asymmetry: float = 0.6
    bandwidth_mbps: float = 50.0

    def __post_init__(self) -> None:
        if self.min_rtt_s <= 0:
            raise ConfigurationError("min_rtt_s must be positive")
        if self.jitter_scale_s < 0:
            raise ConfigurationError("jitter_scale_s must be non-negative")
        if not 0.0 < self.asymmetry < 1.0:
            raise ConfigurationError("asymmetry must lie in (0, 1)")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError("bandwidth_mbps must be positive")


class NetworkLink:
    """A simulated bidirectional network path between client and region."""

    def __init__(
        self,
        profile: NetworkProfile,
        rng: np.random.Generator,
        clock_offset_s: float = 0.0,
    ):
        self._profile = profile
        self._rng = rng
        #: Constant offset of the remote clock relative to the client clock.
        self.clock_offset_s = float(clock_offset_s)
        # Direction bases precomputed once (same floats as the inline
        # ``min_rtt_s * share`` expression).
        self._request_base = profile.min_rtt_s * profile.asymmetry
        self._response_base = profile.min_rtt_s * (1.0 - profile.asymmetry)

    @property
    def profile(self) -> NetworkProfile:
        return self._profile

    def one_way_delay(self, direction: str = "request", payload_bytes: int = 0) -> float:
        """Sample a one-way delay in seconds.

        ``direction`` is ``"request"`` (client to cloud) or ``"response"``.
        """
        if direction == "request":
            base = self._request_base
        elif direction == "response":
            base = self._response_base
        else:
            raise ConfigurationError("direction must be 'request' or 'response'")
        profile = self._profile
        jitter = float(self._rng.exponential(profile.jitter_scale_s)) if profile.jitter_scale_s > 0 else 0.0
        if payload_bytes:
            return base + jitter + payload_bytes / (profile.bandwidth_mbps * 1024 * 1024)
        return base + jitter

    def round_trip(self, request_bytes: int = 0, response_bytes: int = 0) -> float:
        """Sample a full round-trip time for a request/response exchange."""
        return self.one_way_delay("request", request_bytes) + self.one_way_delay("response", response_bytes)

    def min_round_trip(self) -> float:
        """The theoretical RTT floor (no jitter, empty payloads)."""
        return self._profile.min_rtt_s
