"""Clock-drift estimation between the benchmark client and the cloud.

Section 6.4 of the paper: to measure the time between sending an invocation
and the start of execution, client and function timestamps must be put on a
common time base.  Because round-trip times follow an asymmetric
distribution, the paper adopts the protocol of Hoefler et al.: keep
exchanging ping-pong messages until no lower round-trip time has been seen
for N consecutive iterations (N = 10, chosen because the relative difference
between the lowest observable RTT and the minimum after ten non-decreasing
exchanges is about 5%), then estimate the remote clock offset from the best
exchange under the assumption that its delay was split according to the
link's asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .latency import NetworkLink


@dataclass(frozen=True)
class DriftEstimate:
    """Result of the clock-drift estimation protocol."""

    offset_s: float
    min_rtt_s: float
    exchanges: int

    def to_remote(self, local_timestamp: float) -> float:
        """Convert a local timestamp into the remote clock's time base."""
        return local_timestamp + self.offset_s

    def to_local(self, remote_timestamp: float) -> float:
        """Convert a remote timestamp into the local clock's time base."""
        return remote_timestamp - self.offset_s


class ClockDriftEstimator:
    """Implements the minimum-RTT clock synchronisation protocol."""

    def __init__(self, link: NetworkLink, stop_after_non_decreasing: int = 10, max_exchanges: int = 1000):
        if stop_after_non_decreasing <= 0:
            raise ConfigurationError("stop_after_non_decreasing must be positive")
        if max_exchanges < stop_after_non_decreasing:
            raise ConfigurationError("max_exchanges must be at least stop_after_non_decreasing")
        self._link = link
        self._n = stop_after_non_decreasing
        self._max_exchanges = max_exchanges

    def estimate(self, local_time_start: float = 0.0) -> DriftEstimate:
        """Run ping-pong exchanges and estimate the remote clock offset.

        The local clock advances by each exchange's RTT.  For the exchange
        with the lowest RTT we assume the request took ``asymmetry`` of the
        round trip, which gives the remote receive time in local terms; the
        difference to the remote timestamp is the offset estimate.
        """
        link = self._link
        now = float(local_time_start)
        best_rtt = float("inf")
        best_offset = 0.0
        non_decreasing = 0
        exchanges = 0

        while exchanges < self._max_exchanges and non_decreasing < self._n:
            send_time = now
            forward = link.one_way_delay("request")
            backward = link.one_way_delay("response")
            rtt = forward + backward
            # The remote endpoint stamps the message on arrival with its own
            # clock, which is offset from ours by ``clock_offset_s``.
            remote_stamp = send_time + forward + link.clock_offset_s
            now = send_time + rtt
            exchanges += 1
            if rtt < best_rtt:
                best_rtt = rtt
                # Assume the best exchange split according to the link profile.
                assumed_forward = rtt * link.profile.asymmetry
                best_offset = remote_stamp - (send_time + assumed_forward)
                non_decreasing = 0
            else:
                non_decreasing += 1

        return DriftEstimate(offset_s=best_offset, min_rtt_s=best_rtt, exchanges=exchanges)
