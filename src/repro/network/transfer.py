"""Payload transfer-time helper.

Section 6.4 Q2 finds that warm invocation latency grows linearly with the
payload size (adjusted R² between 0.89 and 0.99) — i.e. network transmission
is the only significant overhead of large inputs.  The helper below is the
deterministic core of that relationship and is used both by the simulator
(to add payload-dependent delay to invocations) and by the analytical model
when predicting latencies.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError


def payload_transfer_time(payload_bytes: int, bandwidth_mbps: float, per_request_overhead_s: float = 0.0) -> float:
    """Time (seconds) to push ``payload_bytes`` over a ``bandwidth_mbps`` link."""
    if payload_bytes < 0:
        raise ConfigurationError("payload size must be non-negative")
    if bandwidth_mbps <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return per_request_overhead_s + payload_bytes / (bandwidth_mbps * 1024 * 1024)
