"""Workflow specifications: DAGs of function stages joined by async triggers.

The paper's application suite is dominated by multi-stage pipelines — a
thumbnailer feeding an uploader, video processing chains, ML inference
behind a pre-processing step — yet flat traces can only replay each function
in isolation.  A :class:`WorkflowSpec` describes how deployed functions
compose: a DAG of :class:`WorkflowStage` nodes whose edges are the
asynchronous trigger channels (queue messages, storage events) through which
one function's completion starts the next.

The model covers the four composition shapes middleware orchestrators
expose:

* **sequential chain** — ``Stage B after A``;
* **fan-out / fan-in** — several stages sharing an upstream, and a stage
  with several upstreams (it starts once *all* of them have completed and
  their trigger messages have propagated);
* **dynamic map** — a stage with ``map_items`` spawns one invocation per
  item (a static count or the length of a list in the execution payload),
  and completes when the slowest task finishes;
* **conditional branch** — a stage with ``run_if=(key, value)`` only runs
  when its payload matches; skipped stages propagate readiness
  downstream as zero-duration no-ops, so alternative branches converge on a
  common fan-in stage.

Specs are *declaration-order invariant*: two specs whose stage tuples are
permutations of each other describe the same DAG and replay identically
(the engine orders simultaneous events by stage name, never by declaration
position).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..workload.arrivals import ArrivalProcess

#: Trigger types usable on edges *into* a non-root stage.  TIMER only makes
#: sense for workflow roots (a schedule fires the entry function); HTTP/SDK
#: model synchronous chaining where the upstream function re-invokes the
#: downstream one directly (no queue in between, zero extra edge latency).
_EDGE_TRIGGERS = (TriggerType.QUEUE, TriggerType.STORAGE, TriggerType.HTTP, TriggerType.SDK)


@dataclass(frozen=True)
class WorkflowStage:
    """One node of a workflow DAG.

    Attributes
    ----------
    name:
        Stage name, unique within the spec.  Used for canonical event
        ordering, so replay does not depend on declaration order.
    function_name:
        The deployed function this stage invokes.
    after:
        Names of the upstream stages.  Empty = root stage, triggered by the
        workflow arrival itself.
    trigger:
        Trigger channel of the stage's inbound edges (``QUEUE`` or
        ``STORAGE`` for async propagation with modelled latency, ``HTTP`` /
        ``SDK`` for synchronous chaining, ``TIMER`` for scheduled roots).
        ``None`` resolves to ``HTTP`` for roots and ``QUEUE`` otherwise.
    payload:
        Stage payload override; ``None`` uses the workflow execution's
        payload.
    payload_bytes:
        Explicit request size (as in :class:`~repro.faas.invocation.InvocationRequest`).
    map_items:
        Dynamic-map cardinality: an ``int`` spawns that many parallel tasks;
        a ``str`` names a payload key whose list length (or integer value)
        decides per execution; ``None`` = a single invocation.  The key is
        looked up in the payload the stage receives — its own ``payload``
        override if given, else the execution payload.
    run_if:
        Conditional guard ``(payload_key, expected_value)``; the stage is
        skipped unless the payload it receives matches.
    """

    name: str
    function_name: str
    after: tuple[str, ...] = ()
    trigger: TriggerType | None = None
    payload: Mapping[str, Any] | None = None
    payload_bytes: int | None = None
    map_items: int | str | None = None
    run_if: tuple[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workflow stages need a non-empty name")
        if not self.function_name:
            raise ConfigurationError(f"stage {self.name!r} needs a function name")
        if isinstance(self.map_items, int) and self.map_items < 0:
            raise ConfigurationError(f"stage {self.name!r}: map_items must be non-negative")

    @property
    def is_root(self) -> bool:
        return not self.after

    def resolved_trigger(self) -> TriggerType:
        """The trigger channel, with the root/non-root default applied."""
        if self.trigger is not None:
            return self.trigger
        return TriggerType.HTTP if self.is_root else TriggerType.QUEUE

    def cardinality(self, payload: Mapping[str, Any]) -> int:
        """Number of parallel tasks this stage spawns for ``payload``.

        ``payload`` is the payload the stage receives (its own override if
        given, else the execution payload).  0 means the stage is skipped
        for this execution (an empty map).
        """
        if self.map_items is None:
            return 1
        if isinstance(self.map_items, int):
            return self.map_items
        value = payload.get(self.map_items)
        if value is None:
            return 1
        if isinstance(value, (list, tuple)):
            return len(value)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"stage {self.name!r}: map_items key {self.map_items!r} must hold "
                f"a list or a number, got {value!r}"
            )
        return max(0, int(value))

    def should_run(self, payload: Mapping[str, Any]) -> bool:
        """Evaluate the conditional guard against the stage's payload."""
        if self.run_if is None:
            return True
        key, expected = self.run_if
        return payload.get(key) == expected


@dataclass(frozen=True)
class WorkflowSpec:
    """An immutable, validated DAG of workflow stages."""

    name: str
    stages: tuple[WorkflowStage, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workflows need a non-empty name")
        if not self.stages:
            raise ConfigurationError(f"workflow {self.name!r} needs at least one stage")
        names = [stage.name for stage in self.stages]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ConfigurationError(
                f"workflow {self.name!r} has duplicate stage names: {sorted(duplicates)}"
            )
        by_name = {stage.name: stage for stage in self.stages}
        for stage in self.stages:
            for upstream in stage.after:
                if upstream == stage.name:
                    raise ConfigurationError(f"stage {stage.name!r} depends on itself")
                if upstream not in by_name:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage {upstream!r}"
                    )
            if stage.resolved_trigger() is TriggerType.TIMER and not stage.is_root:
                raise ConfigurationError(
                    f"stage {stage.name!r}: TIMER triggers are only valid on root stages"
                )
            if not stage.is_root and stage.resolved_trigger() not in _EDGE_TRIGGERS:
                raise ConfigurationError(
                    f"stage {stage.name!r}: unsupported edge trigger {stage.resolved_trigger()!r}"
                )
        if not any(stage.is_root for stage in self.stages):
            raise ConfigurationError(f"workflow {self.name!r} has no root stage")
        # Cycle check (Kahn); also caches the topological order.
        order = self._topological_order(by_name)
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(self, "_topo_order", order)
        downstream: dict[str, list[str]] = {name: [] for name in by_name}
        for stage in self.stages:
            for upstream in stage.after:
                downstream[upstream].append(stage.name)
        # Sorted by name: canonical, declaration-order-invariant fan-out order.
        object.__setattr__(
            self, "_downstream", {name: tuple(sorted(names)) for name, names in downstream.items()}
        )

    def _topological_order(self, by_name: dict[str, WorkflowStage]) -> tuple[str, ...]:
        remaining = {name: set(stage.after) for name, stage in by_name.items()}
        order: list[str] = []
        while remaining:
            # Canonical tie-break by name keeps the order independent of the
            # declaration order of the stage tuple.
            ready = sorted(name for name, deps in remaining.items() if not deps)
            if not ready:
                raise ConfigurationError(f"workflow {self.name!r} contains a dependency cycle")
            for name in ready:
                del remaining[name]
                order.append(name)
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    # -------------------------------------------------------------- accessors
    def stage(self, name: str) -> WorkflowStage:
        return self._by_name[name]

    def stage_names(self) -> tuple[str, ...]:
        """Stage names in canonical (topological, name-tie-broken) order."""
        return self._topo_order

    def downstream(self, name: str) -> tuple[str, ...]:
        """Names of the stages triggered by ``name``, sorted canonically."""
        return self._downstream[name]

    def roots(self) -> tuple[str, ...]:
        return tuple(name for name in self._topo_order if self._by_name[name].is_root)

    def terminals(self) -> tuple[str, ...]:
        return tuple(name for name in self._topo_order if not self._downstream[name])

    def functions(self) -> list[str]:
        """Sorted names of the deployed functions the workflow invokes."""
        return sorted({stage.function_name for stage in self.stages})

    def __len__(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class WorkflowArrival:
    """One workflow execution request: a spec starting at a point in time."""

    workflow: WorkflowSpec
    submitted_at: float = 0.0
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.submitted_at < 0:
            raise ConfigurationError("workflow arrival timestamps must be non-negative")


def synthesize_workflow_arrivals(
    workflow: WorkflowSpec,
    process: ArrivalProcess,
    duration_s: float,
    rng: np.random.Generator | int = 0,
    payload: Mapping[str, Any] | None = None,
    payload_bytes: int | None = None,
) -> list[WorkflowArrival]:
    """Generate time-sorted workflow arrivals from an arrival process.

    The workflow-level analogue of :meth:`~repro.workload.trace.WorkloadTrace.synthesize`:
    each arrival starts one end-to-end execution of ``workflow``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(int(rng))
    offsets = process.generate(duration_s, rng)
    resolved_payload = dict(payload or {})
    return [
        WorkflowArrival(
            workflow=workflow,
            submitted_at=float(offset),
            payload=resolved_payload,
            payload_bytes=payload_bytes,
        )
        for offset in offsets
    ]


def merge_workflow_arrivals(*groups: Iterable[WorkflowArrival]) -> list[WorkflowArrival]:
    """Merge several time-sorted arrival lists into one sorted stream."""
    merged: list[WorkflowArrival] = []
    for group in groups:
        merged.extend(group)
    merged.sort(key=lambda arrival: arrival.submitted_at)
    return merged
