"""Canned workflow specs mirroring the paper's multi-stage applications.

The application suite's natural compositions, expressed as
:class:`~repro.workflows.spec.WorkflowSpec` DAGs over the deployed
benchmark functions:

* **pipeline** — the thumbnailer chain: an ingest endpoint validates the
  request, a storage event starts the thumbnailer, whose output object
  triggers the uploader, which finally notifies through a queue;
* **fanout** — fan-out / fan-in: a splitter enqueues N thumbnail tasks
  (a dynamic map), and a collector aggregates once the slowest finishes;
* **branch** — conditional routing: a classifier directs small requests to
  the thumbnailer and large ones to video processing, both converging on a
  storage-triggered archival stage.

``standard_workflow`` returns the spec together with the function
deployments it needs, so experiments, the CLI and the benchmarks share one
definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TriggerType
from ..exceptions import ConfigurationError
from .spec import WorkflowSpec, WorkflowStage


@dataclass(frozen=True)
class WorkflowFunction:
    """One function a canned workflow needs deployed."""

    function_name: str
    benchmark: str
    memory_mb: int = 256


#: Names accepted by :func:`standard_workflow` (and the CLI's ``--workflow``).
STANDARD_WORKFLOWS = ("pipeline", "fanout", "branch")


def standard_workflow(
    name: str, fan_out: int = 8
) -> tuple[WorkflowSpec, tuple[WorkflowFunction, ...]]:
    """Build one of the canned workflow specs plus its deployments."""
    if name == "pipeline":
        spec = WorkflowSpec(
            name="pipeline",
            stages=(
                WorkflowStage("ingest", "wf-ingest"),
                WorkflowStage(
                    "thumbnail", "wf-thumbnail", after=("ingest",), trigger=TriggerType.STORAGE
                ),
                WorkflowStage(
                    "upload", "wf-upload", after=("thumbnail",), trigger=TriggerType.STORAGE
                ),
                WorkflowStage("notify", "wf-notify", after=("upload",), trigger=TriggerType.QUEUE),
            ),
        )
        functions = (
            WorkflowFunction("wf-ingest", "dynamic-html", 256),
            WorkflowFunction("wf-thumbnail", "thumbnailer", 1024),
            WorkflowFunction("wf-upload", "uploader", 512),
            WorkflowFunction("wf-notify", "dynamic-html", 256),
        )
        return spec, functions
    if name == "fanout":
        if fan_out <= 0:
            raise ConfigurationError("fan_out must be positive")
        spec = WorkflowSpec(
            name="fanout",
            stages=(
                WorkflowStage("split", "wf-split"),
                WorkflowStage(
                    "work",
                    "wf-work",
                    after=("split",),
                    trigger=TriggerType.QUEUE,
                    map_items=fan_out,
                ),
                WorkflowStage("collect", "wf-collect", after=("work",), trigger=TriggerType.QUEUE),
            ),
        )
        functions = (
            WorkflowFunction("wf-split", "dynamic-html", 256),
            WorkflowFunction("wf-work", "thumbnailer", 1024),
            WorkflowFunction("wf-collect", "compression", 1024),
        )
        return spec, functions
    if name == "branch":
        spec = WorkflowSpec(
            name="branch",
            stages=(
                WorkflowStage("classify", "wf-classify"),
                WorkflowStage(
                    "small",
                    "wf-small",
                    after=("classify",),
                    trigger=TriggerType.QUEUE,
                    run_if=("size", "small"),
                ),
                WorkflowStage(
                    "large",
                    "wf-large",
                    after=("classify",),
                    trigger=TriggerType.QUEUE,
                    run_if=("size", "large"),
                ),
                WorkflowStage(
                    "store",
                    "wf-store",
                    after=("small", "large"),
                    trigger=TriggerType.STORAGE,
                ),
            ),
        )
        functions = (
            WorkflowFunction("wf-classify", "dynamic-html", 256),
            WorkflowFunction("wf-small", "thumbnailer", 1024),
            WorkflowFunction("wf-large", "video-processing", 2048),
            WorkflowFunction("wf-store", "uploader", 512),
        )
        return spec, functions
    raise ConfigurationError(
        f"unknown workflow {name!r}; choose from {', '.join(STANDARD_WORKFLOWS)}"
    )
