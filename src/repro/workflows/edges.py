"""Trigger-edge propagation latency between workflow stages.

When a stage completes, its downstream stages do not start instantly: the
completion has to propagate through the trigger channel connecting them.
The model distinguishes the channels the providers offer:

* **queue edges** — the upstream function enqueues a message (one network
  one-way including payload serialisation, from
  :class:`~repro.network.latency.NetworkProfile`), the platform's dispatcher
  picks it up (the provider's SDK dispatch overhead) and a poll delay
  elapses before the downstream sandbox sees it;
* **storage edges** — the upstream function writes an object (a storage
  transfer from :class:`~repro.storage.latency.StorageLatencyModel`, whose
  bandwidth scales with the *writer's* memory allocation) and the
  object-store change notification propagates to the trigger subsystem,
  which is markedly slower than a queue hop on every provider;
* **timer roots** — a cron schedule fires with a small scheduler jitter;
* **HTTP / SDK edges** — synchronous chaining: the upstream function invokes
  the downstream one directly, so the request-path latency is already part
  of the downstream invocation's own overhead model and the edge adds
  nothing.

Delays are sampled from per-edge generators seeded by
:func:`~repro.utils.rng.derive_seed` over ``(simulation seed, provider,
execution, downstream stage, upstream stage)``.  That makes every edge draw
a pure function of *what* the edge is, never of *when* the scheduler reached
it — the property behind two guarantees the tests pin down: replays are
bit-identical across runs, and topologically equivalent specs (stage tuples
permuted) replay identically.  It also keeps the platform's shared random
streams untouched, so a workflow whose DAG is a single HTTP-triggered stage
consumes exactly the draws of a plain trace replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..storage.latency import StorageLatencyModel
from ..utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform

#: Mean extra delay between a queue message becoming visible and the
#: dispatcher handing it to a sandbox (long-poll scheduling slack).
QUEUE_POLL_SCALE_S = 0.015
#: Fixed latency of the object-store change-notification pipeline (storage
#: events are delivered through a separate eventing service, not a queue
#: long-poll, and providers only promise "typically under a second").
STORAGE_EVENT_BASE_S = 0.080
#: Mean of the exponential tail on top of the notification base.
STORAGE_EVENT_SCALE_S = 0.060
#: Mean firing jitter of a cron/timer schedule.
TIMER_JITTER_SCALE_S = 0.010


class TriggerEdgeModel:
    """Samples deterministic propagation delays for workflow DAG edges."""

    def __init__(self, platform: "SimulatedPlatform"):
        performance = platform.performance
        self._network = performance.network
        self._storage_profile = performance.storage
        self._sdk_overhead_s = performance.invocation.sdk_overhead_s
        self._master_seed = derive_seed(
            platform.simulation.seed, "workflow-edges", platform.provider.value
        )

    def _rng(self, execution_key: str, downstream: str, upstream: str) -> np.random.Generator:
        return np.random.default_rng(
            derive_seed(self._master_seed, execution_key, downstream, upstream)
        )

    def delay(
        self,
        trigger: TriggerType,
        execution_key: str,
        downstream: str,
        upstream: str,
        payload_bytes: int,
        writer_memory_mb: int,
    ) -> float:
        """Propagation delay (seconds) of one edge in one execution.

        ``payload_bytes`` is the size of the message/object carrying the
        stage input; ``writer_memory_mb`` the memory allocation of the
        upstream function (storage bandwidth scales with it).
        """
        if trigger is TriggerType.HTTP or trigger is TriggerType.SDK:
            return 0.0
        rng = self._rng(execution_key, downstream, upstream)
        if trigger is TriggerType.QUEUE:
            return self._queue_delay(rng, payload_bytes)
        if trigger is TriggerType.STORAGE:
            return self._storage_delay(rng, payload_bytes, writer_memory_mb)
        if trigger is TriggerType.TIMER:
            return float(rng.exponential(TIMER_JITTER_SCALE_S))
        raise ConfigurationError(f"unsupported trigger edge type {trigger!r}")

    def _queue_delay(self, rng: np.random.Generator, payload_bytes: int) -> float:
        profile = self._network
        enqueue = profile.min_rtt_s * profile.asymmetry
        if profile.jitter_scale_s > 0:
            enqueue += float(rng.exponential(profile.jitter_scale_s))
        if payload_bytes:
            enqueue += payload_bytes / (profile.bandwidth_mbps * 1024 * 1024)
        dispatch = self._sdk_overhead_s + float(rng.exponential(QUEUE_POLL_SCALE_S))
        return enqueue + dispatch

    def _storage_delay(
        self, rng: np.random.Generator, payload_bytes: int, writer_memory_mb: int
    ) -> float:
        # The upstream function uploads the object through the provider's
        # storage latency model (reusing its bandwidth/jitter/contention
        # behaviour exactly, but on the edge's private generator).
        write = StorageLatencyModel(self._storage_profile, rng).transfer_time(
            payload_bytes, writer_memory_mb
        )
        notify = STORAGE_EVENT_BASE_S + float(rng.exponential(STORAGE_EVENT_SCALE_S))
        return write + notify
