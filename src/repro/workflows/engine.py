"""The workflow replay engine: DAG executions on the event-queue scheduler.

A workflow execution is *compiled into event-queue entries*: every stage
task becomes an arrival event on the same min-heap schedule that
:class:`~repro.workload.engine.WorkloadEngine` replays flat traces with.
The engine feeds the inner event queue through a **feedback request
source** — when a stage's invocation record is produced, the completion
time plus the trigger-edge propagation delay
(:class:`~repro.workflows.edges.TriggerEdgeModel`) is pushed as the arrival
time of its downstream stages.  Because the inner engine yields each record
before pulling the next request, every downstream arrival is in the heap
before the scheduler could possibly need it, and all pushed times are at or
after the current virtual instant — the stream stays time-sorted without
any barrier or re-sort, preserving the O(1) invocation fast path and the
streaming ``keep_records=False`` replay mode.

Event ordering is canonical: simultaneous events are ordered by
``(execution index, stage name, map index)``, and edge delays are pure
functions of the edge identity (see :mod:`repro.workflows.edges`), so two
topologically equivalent specs — stage tuples permuted — replay
bit-identically.

Every execution produces a :class:`WorkflowResult` carrying end-to-end
latency, the critical path through the DAG, and that path's exact
decomposition into **compute** (time inside and around the invocations),
**cold starts** (sandbox initialisation) and **trigger propagation** (edge
delays).  Invocation *failures* do not halt an execution — the async
trigger edges fire on completion regardless of outcome, mirroring
fire-and-forget queue/storage chaining rather than an orchestrator with
abort-on-error semantics — but every result counts them, so callers can
filter executions a stricter orchestrator would have aborted.  The three components sum to the end-to-end latency by
construction: the critical path is recovered by following, from the
last-finishing stage, the upstream whose completion actually determined
each stage's start time.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from ..config import Provider, StartType, TriggerType
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRecord, InvocationRequest, payload_wire_bytes
from ..stats.streaming import StreamingSummary
from ..stats.summary import DistributionSummary
from ..workload.engine import REPLENISH, WorkloadEngine
from .edges import TriggerEdgeModel
from .spec import WorkflowArrival, WorkflowSpec, WorkflowStage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform

#: Pending-event tuples: (time, execution index, stage name, map index).
#: The trailing fields are the canonical tie-break for simultaneous events.
_Event = tuple[float, int, str, int]


class _ExecutionState:
    """Mutable bookkeeping of one in-flight workflow execution."""

    __slots__ = (
        "spec", "index", "key", "payload", "payload_bytes", "submitted_at",
        "remaining", "ready", "critical_upstream", "edge_delay_in",
        "finish", "crit", "skipped", "map_outstanding", "map_finish", "map_crit",
        "unresolved", "invocations", "cold_starts", "failures", "cost_usd",
        "stage_bytes",
    )

    def __init__(self, spec: WorkflowSpec, index: int, arrival: WorkflowArrival):
        self.spec = spec
        self.index = index
        self.key = f"{spec.name}#{index}"
        self.payload: Mapping[str, Any] = arrival.payload
        self.payload_bytes = arrival.payload_bytes
        self.submitted_at = arrival.submitted_at
        self.remaining = {stage.name: len(stage.after) for stage in spec.stages}
        #: Running max over resolved upstream contributions (start time).
        self.ready: dict[str, float] = {}
        #: Upstream whose completion determined ``ready`` (None for roots).
        self.critical_upstream: dict[str, str | None] = {}
        #: Edge delay on the critical inbound edge (timer jitter for roots).
        self.edge_delay_in: dict[str, float] = {}
        self.finish: dict[str, float] = {}
        #: (cold_init_s, client_time_s) of the stage's last-finishing task.
        self.crit: dict[str, tuple[float, float]] = {}
        self.skipped: set[str] = set()
        self.map_outstanding: dict[str, int] = {}
        self.map_finish: dict[str, float] = {}
        self.map_crit: dict[str, tuple[float, float]] = {}
        self.unresolved = len(spec.stages)
        self.invocations = 0
        self.cold_starts = 0
        self.failures = 0
        self.cost_usd = 0.0
        #: Per-stage message size cache (edge delays reuse it).
        self.stage_bytes: dict[str, int] = {}


@dataclass(frozen=True)
class WorkflowResult:
    """Outcome of one end-to-end workflow execution.

    ``compute_s + cold_start_s + trigger_propagation_s == end_to_end_s``
    exactly (up to float associativity): the components are read off the
    critical path, whose segments tile the interval between submission and
    the final completion.
    """

    workflow: str
    execution_index: int
    submitted_at: float
    finished_at: float
    invocations: int
    cold_starts: int
    #: Failed constituent invocations.  A failure does not halt the DAG —
    #: async triggers fire on completion regardless of outcome — so a
    #: non-zero count marks an execution whose end-to-end figures a real
    #: orchestrator with abort-on-error semantics would not have produced;
    #: filter on it when that distinction matters.
    failures: int
    skipped_stages: int
    cost_usd: float
    critical_path: tuple[str, ...]
    #: Client time spent in critical-path invocations, minus cold starts.
    compute_s: float
    #: Sandbox initialisation time on the critical path.
    cold_start_s: float
    #: Trigger-edge propagation (queue/storage/timer) on the critical path.
    trigger_propagation_s: float

    @property
    def end_to_end_s(self) -> float:
        return self.finished_at - self.submitted_at

    def to_row(self) -> dict:
        return {
            "workflow": self.workflow,
            "execution": self.execution_index,
            "end_to_end_ms": round(self.end_to_end_s * 1000.0, 2),
            "compute_ms": round(self.compute_s * 1000.0, 2),
            "cold_start_ms": round(self.cold_start_s * 1000.0, 2),
            "trigger_ms": round(self.trigger_propagation_s * 1000.0, 2),
            "critical_path": " > ".join(self.critical_path),
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "failures": self.failures,
            "cost_usd": round(self.cost_usd, 8),
        }


@dataclass(frozen=True)
class WorkflowSummary:
    """Aggregate outcome of all executions of one workflow spec."""

    workflow: str
    executions: int
    invocations: int
    cold_starts: int
    failures: int
    skipped_stages: int
    cost_usd: float
    compute_s_total: float
    cold_start_s_total: float
    trigger_propagation_s_total: float
    end_to_end: DistributionSummary | None = None

    def to_row(self) -> dict:
        row = {
            "workflow": self.workflow,
            "executions": self.executions,
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "failures": self.failures,
            "cost_usd": round(self.cost_usd, 8),
        }
        if self.end_to_end is not None:
            row["e2e_p50_ms"] = round(self.end_to_end.median * 1000.0, 2)
            row["e2e_p95_ms"] = round(
                self.end_to_end.percentiles.get(95.0, float("nan")) * 1000.0, 2
            )
        total = self.compute_s_total + self.cold_start_s_total + self.trigger_propagation_s_total
        if total > 0:
            row["compute_pct"] = round(100.0 * self.compute_s_total / total, 1)
            row["cold_pct"] = round(100.0 * self.cold_start_s_total / total, 1)
            row["trigger_pct"] = round(100.0 * self.trigger_propagation_s_total / total, 1)
        return row


class _WorkflowAccumulator:
    """Streaming per-workflow aggregates (O(1) state per workflow spec)."""

    __slots__ = (
        "workflow", "executions", "invocations", "cold_starts", "failures",
        "skipped_stages", "cost_usd", "compute_s", "cold_start_s", "trigger_s",
        "end_to_end", "end_to_end_s_sum",
    )

    def __init__(self, workflow: str):
        self.workflow = workflow
        self.executions = 0
        self.invocations = 0
        self.cold_starts = 0
        self.failures = 0
        self.skipped_stages = 0
        self.cost_usd = 0.0
        self.compute_s = 0.0
        self.cold_start_s = 0.0
        self.trigger_s = 0.0
        self.end_to_end = StreamingSummary(key=f"workflow:{workflow}")
        self.end_to_end_s_sum = 0.0

    def merge(self, other: "_WorkflowAccumulator") -> None:
        """Fold a shard's accumulator into this one (sharded replay merge)."""
        self.executions += other.executions
        self.invocations += other.invocations
        self.cold_starts += other.cold_starts
        self.failures += other.failures
        self.skipped_stages += other.skipped_stages
        self.cost_usd += other.cost_usd
        self.compute_s += other.compute_s
        self.cold_start_s += other.cold_start_s
        self.trigger_s += other.trigger_s
        self.end_to_end.merge(other.end_to_end)
        self.end_to_end_s_sum += other.end_to_end_s_sum

    def add(self, result: WorkflowResult) -> None:
        self.executions += 1
        self.invocations += result.invocations
        self.cold_starts += result.cold_starts
        self.failures += result.failures
        self.skipped_stages += result.skipped_stages
        self.cost_usd += result.cost_usd
        self.compute_s += result.compute_s
        self.cold_start_s += result.cold_start_s
        self.trigger_s += result.trigger_propagation_s
        self.end_to_end.add(result.end_to_end_s)
        self.end_to_end_s_sum += result.end_to_end_s

    def summary(self) -> WorkflowSummary:
        return WorkflowSummary(
            workflow=self.workflow,
            executions=self.executions,
            invocations=self.invocations,
            cold_starts=self.cold_starts,
            failures=self.failures,
            skipped_stages=self.skipped_stages,
            cost_usd=self.cost_usd,
            compute_s_total=self.compute_s,
            cold_start_s_total=self.cold_start_s,
            trigger_propagation_s_total=self.trigger_s,
            end_to_end=self.end_to_end.to_summary() if self.executions else None,
        )


@dataclass
class WorkflowReplayResult:
    """Everything a workflow replay produced.

    ``executions`` holds the per-execution results when ``keep_records=True``;
    in streaming mode it is empty and the aggregate counters/summaries (fed
    online, O(workflows) memory) are the only state that survives the
    replay.
    """

    provider: Provider
    executions: list[WorkflowResult] = field(default_factory=list)
    simulated_span_s: float = 0.0
    wall_clock_s: float = 0.0
    peak_in_flight: int = 0
    execution_count: int = 0
    invocation_total: int = 0
    cold_start_total: int = 0
    failure_total: int = 0
    cost_usd_total: float = 0.0
    compute_s_total: float = 0.0
    cold_start_s_total: float = 0.0
    trigger_propagation_s_total: float = 0.0
    end_to_end_s_total: float = 0.0
    summaries: dict[str, WorkflowSummary] = field(default_factory=dict)
    #: Supervision diagnostics from a supervised sharded replay (see
    #: ``WorkloadResult.supervision``); ``None`` otherwise and excluded
    #: from ``to_dict()``.
    supervision: dict | None = None
    #: :class:`~repro.observe.timeseries.TimeSeriesBuilder` when a
    #: simulated-time series was requested; ``None`` otherwise and (like
    #: ``supervision``) excluded from byte-compared payloads.
    timeseries: object | None = None
    #: :class:`~repro.observe.profile.ReplayProfile` when host-side
    #: profiling was requested; ``None`` otherwise.
    profile: object | None = None

    @property
    def throughput_per_s(self) -> float:
        """Constituent invocations simulated per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.invocation_total / self.wall_clock_s

    @property
    def cold_start_rate(self) -> float:
        if not self.invocation_total:
            return 0.0
        return self.cold_start_total / self.invocation_total

    @property
    def mean_end_to_end_s(self) -> float:
        if not self.execution_count:
            return 0.0
        return self.end_to_end_s_total / self.execution_count

    def per_workflow(self) -> dict[str, WorkflowSummary]:
        return dict(self.summaries)

    def to_rows(self) -> list[dict]:
        """Per-workflow table rows."""
        return [self.summaries[name].to_row() for name in sorted(self.summaries)]

    def summary_row(self) -> dict:
        """One aggregate row describing the whole replay."""
        total_components = (
            self.compute_s_total + self.cold_start_s_total + self.trigger_propagation_s_total
        )
        row = {
            "provider": self.provider.value,
            "executions": self.execution_count,
            "invocations": self.invocation_total,
            "cold_starts": self.cold_start_total,
            "failures": self.failure_total,
            "peak_in_flight": self.peak_in_flight,
            "cost_usd": round(self.cost_usd_total, 8),
            "mean_e2e_ms": round(self.mean_end_to_end_s * 1000.0, 2),
            "simulated_span_s": round(self.simulated_span_s, 3),
            "throughput_inv_per_s": round(self.throughput_per_s, 1),
        }
        if total_components > 0:
            row["compute_pct"] = round(100.0 * self.compute_s_total / total_components, 1)
            row["cold_pct"] = round(100.0 * self.cold_start_s_total / total_components, 1)
            row["trigger_pct"] = round(100.0 * self.trigger_propagation_s_total / total_components, 1)
        return row


def fold_workflow_results(
    results: Iterable[WorkflowResult], keep_records: bool
) -> tuple[dict[str, _WorkflowAccumulator], list[WorkflowResult], float | None, float | None]:
    """Fold per-execution results into per-workflow accumulators.

    Returns ``(accumulators, kept_executions, first_submitted,
    last_finished)``.  Shared by the serial engine and the shard workers
    (:mod:`repro.parallel`), so both paths accumulate — and therefore
    float-sum — identically; any change here changes them in lockstep.
    """
    accumulators: dict[str, _WorkflowAccumulator] = {}
    executions: list[WorkflowResult] = []
    first_submitted: float | None = None
    last_finished: float | None = None
    for result in results:
        accumulator = accumulators.get(result.workflow)
        if accumulator is None:
            accumulator = accumulators[result.workflow] = _WorkflowAccumulator(result.workflow)
        accumulator.add(result)
        if first_submitted is None or result.submitted_at < first_submitted:
            first_submitted = result.submitted_at
        if last_finished is None or result.finished_at > last_finished:
            last_finished = result.finished_at
        if keep_records:
            executions.append(result)
    return accumulators, executions, first_submitted, last_finished


def build_replay_result(
    provider: Provider,
    accumulators: Mapping[str, _WorkflowAccumulator],
    executions: list[WorkflowResult],
    simulated_span_s: float,
    wall_clock_s: float,
    peak_in_flight: int,
) -> WorkflowReplayResult:
    """Reduce per-workflow accumulators into a :class:`WorkflowReplayResult`.

    Shared by the serial engine and the sharded-replay merge
    (:mod:`repro.parallel`): float totals reduce in sorted workflow-name
    order, so serial and merged replays produce byte-identical totals.
    """
    ordered = [accumulators[name] for name in sorted(accumulators)]
    return WorkflowReplayResult(
        provider=provider,
        executions=executions,
        simulated_span_s=simulated_span_s,
        wall_clock_s=wall_clock_s,
        peak_in_flight=peak_in_flight,
        execution_count=sum(a.executions for a in ordered),
        invocation_total=sum(a.invocations for a in ordered),
        cold_start_total=sum(a.cold_starts for a in ordered),
        failure_total=sum(a.failures for a in ordered),
        cost_usd_total=sum(a.cost_usd for a in ordered),
        compute_s_total=sum(a.compute_s for a in ordered),
        cold_start_s_total=sum(a.cold_start_s for a in ordered),
        trigger_propagation_s_total=sum(a.trigger_s for a in ordered),
        end_to_end_s_total=sum(a.end_to_end_s_sum for a in ordered),
        summaries={name: accumulators[name].summary() for name in sorted(accumulators)},
    )


class WorkflowEngine:
    """Replays workflow arrival streams against one simulated platform."""

    def __init__(self, platform: "SimulatedPlatform"):
        self.platform = platform
        self.edges = TriggerEdgeModel(platform)
        self.last_peak_in_flight = 0
        # Keyed by id() with the spec held as value: the strong reference
        # pins the object so a recycled id can never skip validation.
        self._validated_specs: dict[int, WorkflowSpec] = {}

    # ---------------------------------------------------------------- public
    def stream(
        self,
        arrivals: Iterable[WorkflowArrival],
        record_sink: Callable[[InvocationRecord], None] | None = None,
        execution_indices: Iterable[int] | None = None,
        observer=None,
    ) -> Iterator[WorkflowResult]:
        """Replay ``arrivals`` lazily, yielding one result per execution.

        Arrivals must be sorted by ``submitted_at``.  ``record_sink``
        optionally receives every constituent
        :class:`~repro.faas.invocation.InvocationRecord` as it is produced
        (drill-down without the engine retaining them).  ``observer`` is a
        :class:`~repro.observe.events.ReplayObserver`: it receives every
        stage record with its workflow/stage attribution
        (``on_workflow_stage``) and is forwarded to the inner workload
        engine for container/breaker/fault events.  Observation is pure —
        no draws, no reordering — so the yielded results are bit-identical
        with or without it.

        ``execution_indices`` overrides the default ``0, 1, 2, ...``
        numbering of executions (one index per arrival, in order).  Sharded
        replay passes each arrival's index from the *unsharded* stream so
        the execution keys — which seed the per-edge trigger-delay
        generators — are identical to a serial replay.
        """
        platform = self.platform
        base = platform.clock.now()
        pending: list[_Event] = []
        active: dict[int, _ExecutionState] = {}
        finished: deque[WorkflowResult] = deque()
        # Stage-task metadata keyed by the inner engine's request position
        # (the record's ``request_index``).  With the overload model enabled
        # records can resolve out of submission order (retries, admission
        # queueing), so a FIFO correspondence would mis-attribute records;
        # the position key is order-independent.
        meta: dict[int, _Event] = {}
        task_positions = itertools.count()
        exec_counter = iter(execution_indices) if execution_indices is not None else itertools.count()

        # Under the overload model the inner engine buffers work (admission
        # queues, retry backoff) whose eventual records schedule *new*
        # source events — possibly earlier than this source's current next
        # event.  Before committing to an event, the source therefore
        # compares the engine's feedback horizon (earliest instant buffered
        # work could emit a record) against it and yields the REPLENISH
        # sentinel instead whenever the buffered work comes first: the
        # engine resolves it, the records land here, and the heap re-sorts.
        # Never needed in fast mode, where every consumed request resolves
        # before the next pull and the horizon is always None.
        overload_active = getattr(platform, "_controlled_replay", False)

        def source() -> Iterator[InvocationRequest]:
            arrival_iter = iter(arrivals)
            nxt = next(arrival_iter, None)
            last_submitted = 0.0
            while True:
                # Admit every workflow arrival at or before the next event,
                # so its root events take part in canonical heap ordering.
                while nxt is not None and (not pending or nxt.submitted_at <= pending[0][0]):
                    if nxt.submitted_at < last_submitted:
                        raise ConfigurationError(
                            "workflow arrivals must be sorted by submission time "
                            f"({nxt.submitted_at:.6f} after {last_submitted:.6f})"
                        )
                    last_submitted = nxt.submitted_at
                    self._admit(nxt, next(exec_counter), active, pending, finished)
                    nxt = next(arrival_iter, None)
                if overload_active:
                    horizon = inner.feedback_horizon()
                    if horizon is not None and (not pending or horizon <= pending[0][0]):
                        yield REPLENISH  # type: ignore[misc]
                        continue
                if not pending:
                    if overload_active and active and nxt is None:
                        # No event ready but executions are still in flight:
                        # their tasks live in the engine's buffers.
                        yield REPLENISH  # type: ignore[misc]
                        continue
                    break
                event = heapq.heappop(pending)
                event_time, exec_index, stage_name, map_index = event
                state = active[exec_index]
                stage = state.spec.stage(stage_name)
                meta[next(task_positions)] = event
                yield InvocationRequest(
                    function_name=stage.function_name,
                    payload=self._task_payload(state, stage, map_index),
                    payload_bytes=self._task_payload_bytes(state, stage),
                    trigger=stage.resolved_trigger(),
                    submitted_at=event_time,
                )

        inner = WorkloadEngine(platform)
        if observer is not None:
            inner.observer = observer
        try:
            for record in inner.stream(source()):
                if record_sink is not None:
                    record_sink(record)
                _, exec_index, stage_name, map_index = meta.pop(record.request_index)
                state = active[exec_index]
                if observer is not None:
                    observer.on_workflow_stage(
                        state.spec.name, exec_index, stage_name, map_index, record
                    )
                self._on_record(state, stage_name, record, base, active, pending, finished)
                while finished:
                    yield finished.popleft()
        finally:
            self.last_peak_in_flight = inner.last_peak_in_flight
        # Executions resolved without any invocation after the last record
        # (e.g. trailing arrivals whose every stage was skipped).
        while finished:
            yield finished.popleft()

    def run(
        self,
        arrivals: Iterable[WorkflowArrival],
        keep_records: bool = True,
        record_sink: Callable[[InvocationRecord], None] | None = None,
        execution_indices: Iterable[int] | None = None,
        observer=None,
    ) -> WorkflowReplayResult:
        """Replay a whole arrival stream and aggregate the outcome.

        With ``keep_records=False`` the per-execution
        :class:`WorkflowResult` objects are folded into per-workflow
        accumulators as they complete, so memory stays
        O(workflows + in-flight executions) regardless of how many
        executions the stream contains.
        """
        wall_start = time.perf_counter()
        accumulators, executions, first_submitted, last_finished = fold_workflow_results(
            self.stream(
                arrivals,
                record_sink=record_sink,
                execution_indices=execution_indices,
                observer=observer,
            ),
            keep_records=keep_records,
        )
        wall_clock_s = time.perf_counter() - wall_start
        span = 0.0
        if first_submitted is not None and last_finished is not None:
            span = last_finished - first_submitted
        return build_replay_result(
            self.platform.provider,
            accumulators,
            executions=executions,
            simulated_span_s=span,
            wall_clock_s=wall_clock_s,
            peak_in_flight=self.last_peak_in_flight,
        )

    # -------------------------------------------------------------- plumbing
    def _validate_spec(self, spec: WorkflowSpec) -> None:
        if self._validated_specs.get(id(spec)) is spec:
            return
        for fname in spec.functions():
            self.platform.get_function(fname)
        self._validated_specs[id(spec)] = spec

    def _stage_payload(self, state: _ExecutionState, stage: WorkflowStage) -> Mapping[str, Any]:
        return stage.payload if stage.payload is not None else state.payload

    def _task_payload(
        self, state: _ExecutionState, stage: WorkflowStage, map_index: int
    ) -> Mapping[str, Any]:
        payload = self._stage_payload(state, stage)
        if stage.map_items is None:
            return payload
        # Map tasks carry their item index, like a real fan-out message.
        return {**payload, "map_index": map_index}

    def _task_payload_bytes(self, state: _ExecutionState, stage: WorkflowStage) -> int | None:
        if stage.payload_bytes is not None:
            return stage.payload_bytes
        if stage.payload is None and stage.map_items is None:
            return state.payload_bytes
        return None

    def _edge_bytes(self, state: _ExecutionState, stage: WorkflowStage) -> int:
        """Size of the trigger message/object carrying the stage input."""
        cached = state.stage_bytes.get(stage.name)
        if cached is None:
            explicit = self._task_payload_bytes(state, stage)
            if explicit is not None:
                cached = explicit
            else:
                cached = payload_wire_bytes(self._stage_payload(state, stage))
            state.stage_bytes[stage.name] = cached
        return cached

    def _admit(
        self,
        arrival: WorkflowArrival,
        index: int,
        active: dict[int, _ExecutionState],
        pending: list[_Event],
        finished: deque[WorkflowResult],
    ) -> None:
        spec = arrival.workflow
        self._validate_spec(spec)
        state = _ExecutionState(spec, index, arrival)
        active[index] = state
        for root in spec.roots():
            stage = spec.stage(root)
            delay = 0.0
            if stage.resolved_trigger() is TriggerType.TIMER:
                # The schedule fires with jitter; charged as trigger time.
                delay = self.edges.delay(
                    TriggerType.TIMER, state.key, root, "@schedule", 0, 0
                )
            state.ready[root] = arrival.submitted_at + delay
            state.critical_upstream[root] = None
            state.edge_delay_in[root] = delay
            self._schedule_stage(state, root, active, pending, finished)

    def _schedule_stage(
        self,
        state: _ExecutionState,
        name: str,
        active: dict[int, _ExecutionState],
        pending: list[_Event],
        finished: deque[WorkflowResult],
    ) -> None:
        """All upstreams of ``name`` are resolved: spawn its tasks (or skip)."""
        stage = state.spec.stage(name)
        payload = self._stage_payload(state, stage)
        cardinality = stage.cardinality(payload)
        if not stage.should_run(payload) or cardinality == 0:
            state.skipped.add(name)
            # Zero-duration no-op: readiness propagates, nothing executes.
            self._complete_stage(state, name, state.ready[name], 0.0, 0.0, active, pending, finished)
            return
        state.map_outstanding[name] = cardinality
        state.map_finish[name] = float("-inf")
        for map_index in range(cardinality):
            heapq.heappush(pending, (state.ready[name], state.index, name, map_index))

    def _on_record(
        self,
        state: _ExecutionState,
        stage_name: str,
        record: InvocationRecord,
        base: float,
        active: dict[int, _ExecutionState],
        pending: list[_Event],
        finished: deque[WorkflowResult],
    ) -> None:
        state.invocations += 1
        if record.start_type is StartType.COLD:
            state.cold_starts += 1
        if not record.success:
            state.failures += 1
        state.cost_usd += record.cost.total
        # The inner engine runs on the platform clock; workflow bookkeeping
        # stays in trace-relative time.
        finished_at = record.finished_at - base
        if finished_at > state.map_finish[stage_name]:
            state.map_finish[stage_name] = finished_at
            state.map_crit[stage_name] = (record.cold_init_s, record.client_time_s)
        state.map_outstanding[stage_name] -= 1
        if state.map_outstanding[stage_name] == 0:
            cold_init_s, client_time_s = state.map_crit[stage_name]
            self._complete_stage(
                state, stage_name, state.map_finish[stage_name],
                cold_init_s, client_time_s, active, pending, finished,
            )

    def _complete_stage(
        self,
        state: _ExecutionState,
        name: str,
        finish_time: float,
        cold_init_s: float,
        client_time_s: float,
        active: dict[int, _ExecutionState],
        pending: list[_Event],
        finished: deque[WorkflowResult],
    ) -> None:
        state.finish[name] = finish_time
        state.crit[name] = (cold_init_s, client_time_s)
        state.unresolved -= 1
        skipped_upstream = name in state.skipped
        upstream_memory = 0
        if not skipped_upstream:
            upstream_memory = self.platform.get_function(
                state.spec.stage(name).function_name
            ).config.memory_mb
        for downstream_name in state.spec.downstream(name):
            downstream = state.spec.stage(downstream_name)
            if skipped_upstream:
                # A skipped stage emits no message; readiness propagation is
                # control-plane only.
                delay = 0.0
            else:
                delay = self.edges.delay(
                    downstream.resolved_trigger(),
                    state.key,
                    downstream_name,
                    name,
                    self._edge_bytes(state, downstream),
                    upstream_memory,
                )
            contribution = finish_time + delay
            previous = state.ready.get(downstream_name)
            if previous is None or contribution > previous:
                state.ready[downstream_name] = contribution
                state.critical_upstream[downstream_name] = name
                state.edge_delay_in[downstream_name] = delay
            state.remaining[downstream_name] -= 1
            if state.remaining[downstream_name] == 0:
                self._schedule_stage(state, downstream_name, active, pending, finished)
        if state.unresolved == 0:
            finished.append(self._finalize(state))
            del active[state.index]

    def _finalize(self, state: _ExecutionState) -> WorkflowResult:
        # The execution ends at the latest stage completion (a terminal
        # stage by construction); ties break on the stage name.
        end_stage = max(state.finish.items(), key=lambda item: (item[1], item[0]))[0]
        path: list[str] = []
        node: str | None = end_stage
        while node is not None:
            path.append(node)
            node = state.critical_upstream[node]
        path.reverse()
        trigger_s = sum(state.edge_delay_in[stage] for stage in path)
        cold_s = sum(state.crit[stage][0] for stage in path)
        compute_s = sum(state.crit[stage][1] - state.crit[stage][0] for stage in path)
        return WorkflowResult(
            workflow=state.spec.name,
            execution_index=state.index,
            submitted_at=state.submitted_at,
            finished_at=state.finish[end_stage],
            invocations=state.invocations,
            cold_starts=state.cold_starts,
            failures=state.failures,
            skipped_stages=len(state.skipped),
            cost_usd=state.cost_usd,
            critical_path=tuple(path),
            compute_s=compute_s,
            cold_start_s=cold_s,
            trigger_propagation_s=trigger_s,
        )
