"""Workflow orchestration: DAG function compositions with async triggers.

The workflow layer composes deployed functions into multi-stage pipelines —
chains, fan-out/fan-in, dynamic maps and conditional branches — connected
by asynchronous trigger edges (queue messages, storage events, timers) with
modelled propagation latency.  Executions are compiled onto the event-queue
scheduler of :mod:`repro.workload`, so workflow replay shares the flat
trace replay's O(1) invocation fast path and streaming aggregation mode.

Typical use::

    from repro import Provider, SimulationConfig, create_platform, deploy_benchmark
    from repro.workload import PoissonArrivals
    from repro.workflows import (
        WorkflowSpec, WorkflowStage, synthesize_workflow_arrivals,
    )

    platform = create_platform(Provider.AWS, SimulationConfig(seed=1))
    deploy_benchmark(platform, "thumbnailer", memory_mb=1024, function_name="thumb")
    deploy_benchmark(platform, "uploader", memory_mb=512, function_name="up")
    spec = WorkflowSpec("thumb-chain", (
        WorkflowStage("make", "thumb"),
        WorkflowStage("store", "up", after=("make",)),
    ))
    arrivals = synthesize_workflow_arrivals(spec, PoissonArrivals(2.0), 300.0, rng=1)
    result = platform.run_workflows(arrivals)
    print(result.mean_end_to_end_s, result.summary_row())
"""

from .catalog import STANDARD_WORKFLOWS, WorkflowFunction, standard_workflow
from .edges import TriggerEdgeModel
from .engine import (
    WorkflowEngine,
    WorkflowReplayResult,
    WorkflowResult,
    WorkflowSummary,
)
from .spec import (
    WorkflowArrival,
    WorkflowSpec,
    WorkflowStage,
    merge_workflow_arrivals,
    synthesize_workflow_arrivals,
)

__all__ = [
    "STANDARD_WORKFLOWS",
    "WorkflowFunction",
    "standard_workflow",
    "TriggerEdgeModel",
    "WorkflowEngine",
    "WorkflowReplayResult",
    "WorkflowResult",
    "WorkflowSummary",
    "WorkflowArrival",
    "WorkflowSpec",
    "WorkflowStage",
    "merge_workflow_arrivals",
    "synthesize_workflow_arrivals",
]
