"""Configuration of the overload / admission-control model.

Attach an :class:`OverloadConfig` to
:attr:`repro.config.SimulationConfig.overload` to enable the concurrency
limiter.  With the default ``overload=None`` every request is admitted
unconditionally and the simulator behaves bit-identically to earlier
releases (the golden fixtures pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..exceptions import ConfigurationError
from .retry import RETRY_POLICY_NAMES


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the concurrency-limit and throttling subsystem.

    Attributes
    ----------
    reserved_concurrency:
        Default per-function concurrency cap (AWS "reserved concurrency").
        ``None`` leaves functions bounded only by the account cap.
    per_function_reserved:
        Per-function overrides of ``reserved_concurrency``.
    account_concurrency:
        Account-level concurrent-execution cap.  ``None`` uses the
        provider's Table 2 ``concurrency_limit``.  Enforced *per function*
        (each function may use up to the account cap, never more): true
        cross-function contention for the unreserved pool would couple
        shards and break the bit-identical sharded replay guarantee, so it
        is deliberately not modelled (see ``docs/architecture.md``).
    model_burst:
        Model the provider's burst ramp-up
        (:func:`repro.concurrency.limits.burst_profile_for`): AWS's
        token-bucket burst allowance, Azure/GCP's instance-based scale-out
        rate.  Off, the only limits are the (reserved, account) caps.
    retry_policy / max_retries / retry_base_delay_s / retry_max_delay_s:
        Client behaviour on a throttled synchronous invocation
        (:mod:`repro.concurrency.retry`).
    admission_queue_depth:
        Bound of the per-function admission queue asynchronous (queue /
        storage / timer trigger) invocations spill into when over the
        limit.  Arrivals beyond the bound are dropped immediately
        (``queue-full``).  0 disables queueing — every over-limit async
        request drops.
    admission_max_age_s:
        Maximum time a spilled request may wait before it is dropped
        (``expired``) instead of admitted.  ``None`` waits forever.
    """

    reserved_concurrency: int | None = None
    per_function_reserved: Mapping[str, int] = field(default_factory=dict)
    account_concurrency: int | None = None
    model_burst: bool = True
    retry_policy: str = "exponential"
    max_retries: int = 3
    retry_base_delay_s: float = 0.05
    retry_max_delay_s: float = 2.0
    admission_queue_depth: int = 1000
    admission_max_age_s: float | None = 60.0

    def __post_init__(self) -> None:
        for name, value in (
            ("reserved_concurrency", self.reserved_concurrency),
            ("account_concurrency", self.account_concurrency),
        ):
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be at least 1 (or None)")
        for fname, value in self.per_function_reserved.items():
            if value < 1:
                raise ConfigurationError(
                    f"per_function_reserved[{fname!r}] must be at least 1"
                )
        if self.retry_policy not in RETRY_POLICY_NAMES:
            raise ConfigurationError(
                f"unknown retry policy {self.retry_policy!r}; "
                f"choose from {', '.join(RETRY_POLICY_NAMES)}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.retry_base_delay_s <= 0 or self.retry_max_delay_s <= 0:
            raise ConfigurationError("retry delays must be positive")
        if self.admission_queue_depth < 0:
            raise ConfigurationError("admission_queue_depth must be non-negative")
        if self.admission_max_age_s is not None and self.admission_max_age_s <= 0:
            raise ConfigurationError("admission_max_age_s must be positive (or None)")
