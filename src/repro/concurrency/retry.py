"""Pluggable client retry/backoff policies for throttled invocations.

When the admission layer rejects a synchronous invocation with a 429
(:class:`~repro.config.InvocationOutcome.THROTTLED` on the final record),
the simulated *client* decides whether and when to try again.  Policies are
deliberately policy-free middleware in the Dearle et al. sense: the engine
only asks "given that attempt ``n`` was throttled, how long until the next
attempt?" and the policy answers with a delay (or ``None`` to give up) —
no policy ever touches simulator state.

Determinism: jittered policies draw from the **per-function** retry stream
the platform derives as ``(seed, "retry", function name)``
(:func:`repro.utils.rng.derive_seed`), so a function's backoff sequence is
a pure function of its own throttle history.  Co-deployed functions never
perturb each other's draws, which keeps sharded parallel replay
(:mod:`repro.parallel`) bit-identical to serial replay with throttling
enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Base class: how a client reacts to throttled attempts.

    ``max_retries`` is the number of *additional* attempts after the first:
    a request throttled on every attempt produces ``max_retries + 1``
    throttle events before the client gives up.
    """

    max_retries: int = 0

    def next_delay(self, attempt: int, rng) -> float | None:
        """Seconds until the next attempt after throttled attempt ``attempt``.

        ``attempt`` counts from 1 (the first attempt).  ``None`` means the
        client gives up and the request resolves as THROTTLED.  ``rng`` is
        the function's derived retry stream; deterministic policies must
        not draw from it.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class NoRetryPolicy(RetryPolicy):
    """Fail fast: the first 429 is final."""

    def next_delay(self, attempt: int, rng) -> float | None:
        return None


@dataclass(frozen=True)
class ImmediateRetryPolicy(RetryPolicy):
    """Retry with no client-side delay (the throttle round trip still costs).

    Deterministic — never draws from the retry stream.
    """

    max_retries: int = 3

    def next_delay(self, attempt: int, rng) -> float | None:
        if attempt > self.max_retries:
            return None
        return 0.0


@dataclass(frozen=True)
class ExponentialBackoffPolicy(RetryPolicy):
    """Capped exponential backoff with full jitter (AWS SDK style).

    The delay before attempt ``n + 1`` is drawn uniformly from
    ``[0, min(max_delay, base * 2**(n-1))]`` — the "full jitter" variant,
    which decorrelates the retry storms a synchronized backoff would
    re-create.  Draws come from the per-function retry stream, so the
    sequence is reproducible per seed and shard-stable.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0

    def next_delay(self, attempt: int, rng) -> float | None:
        if attempt > self.max_retries:
            return None
        ceiling = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        return float(rng.uniform(0.0, ceiling))


@dataclass(frozen=True)
class NoJitterBackoffPolicy(RetryPolicy):
    """Capped exponential backoff **without** jitter — the naive client.

    The delay before attempt ``n + 1`` is exactly
    ``min(max_delay, base * 2**(n-1))``.  Every client that failed at the
    same moment retries at the same moment: under an outage this is the
    policy that synchronizes retries into load-amplifying bunches and keeps
    goodput collapsed after recovery (the metastable-failure baseline of
    ``benchmarks/bench_fault_storm.py``).  Deterministic — never draws from
    the retry stream.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0

    def next_delay(self, attempt: int, rng) -> float | None:
        if attempt > self.max_retries:
            return None
        return min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))


#: Policy names accepted by :func:`create_retry_policy` and the CLI.
RETRY_POLICY_NAMES = ("none", "immediate", "exponential", "no-jitter")


def create_retry_policy(
    name: str,
    max_retries: int = 3,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
) -> RetryPolicy:
    """Instantiate a named retry policy with the given budget."""
    if name == "none":
        return NoRetryPolicy(max_retries=0)
    if name == "immediate":
        return ImmediateRetryPolicy(max_retries=max_retries)
    if name == "exponential":
        return ExponentialBackoffPolicy(
            max_retries=max_retries, base_delay_s=base_delay_s, max_delay_s=max_delay_s
        )
    if name == "no-jitter":
        return NoJitterBackoffPolicy(
            max_retries=max_retries, base_delay_s=base_delay_s, max_delay_s=max_delay_s
        )
    raise ConfigurationError(
        f"unknown retry policy {name!r}; choose from {', '.join(RETRY_POLICY_NAMES)}"
    )
