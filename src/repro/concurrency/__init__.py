"""Concurrency limits, throttling and admission control under overload.

The simulator historically admitted every request unconditionally; this
package models what heavy traffic actually hits first on a commercial
platform:

* **Limits & burst ramp-up** (:mod:`repro.concurrency.limits`) —
  per-function reserved concurrency, the account-level cap (Table 2), and
  provider burst behaviour: AWS's token-bucket burst allowance, Azure's
  and GCP's instance-based scale-out rate;
* **Client retries** (:mod:`repro.concurrency.retry`) — pluggable
  retry/backoff policies for throttled synchronous invocations
  (fail-fast, immediate, capped exponential backoff with full jitter from
  per-function derived RNG streams);
* **Async spill** (:mod:`repro.concurrency.admission`) — bounded
  per-function admission queues for queue/storage/timer-triggered
  invocations, with queueing-delay and age-based drop accounting.

Enable it by attaching an :class:`OverloadConfig` to
:attr:`repro.config.SimulationConfig.overload`.  Every piece of throttle
state is per function and draw-free (retry jitter uses name-derived
streams), so replays with throttling enabled stay bit-identical between
serial and sharded execution (:mod:`repro.parallel`).
"""

from .admission import AdmissionQueue, QueuedInvocation
from .config import OverloadConfig
from .limits import (
    BurstKind,
    BurstProfile,
    FunctionThrottle,
    build_function_throttle,
    burst_profile_for,
)
from .retry import (
    RETRY_POLICY_NAMES,
    ExponentialBackoffPolicy,
    ImmediateRetryPolicy,
    NoJitterBackoffPolicy,
    NoRetryPolicy,
    RetryPolicy,
    create_retry_policy,
)

__all__ = [
    "AdmissionQueue",
    "QueuedInvocation",
    "OverloadConfig",
    "BurstKind",
    "BurstProfile",
    "FunctionThrottle",
    "build_function_throttle",
    "burst_profile_for",
    "RETRY_POLICY_NAMES",
    "ExponentialBackoffPolicy",
    "ImmediateRetryPolicy",
    "NoJitterBackoffPolicy",
    "NoRetryPolicy",
    "RetryPolicy",
    "create_retry_policy",
]
