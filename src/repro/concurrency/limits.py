"""Per-function concurrency limiting with provider burst ramp-up.

What million-user traffic hits first on a real platform is not compute —
it is the admission layer: per-function reserved concurrency, the
account-level concurrent-execution cap (Table 2), and the provider's burst
behaviour.  The paper's Table 2 benchmark characterizes the *static* caps;
this module adds the dynamic part:

* **AWS Lambda** scales instantly up to a regional *burst* allowance, then
  grows by ~500 concurrent executions per minute — a token bucket over
  concurrency growth (tokens refill with time, raising the high-water
  concurrency mark consumes them);
* **Azure Functions / Google Cloud Functions** scale by *instances*: new
  sandboxes (function-app instances on Azure, each hosting several
  concurrent executions) are granted at a bounded rate after traffic
  starts.

Everything here is **per function** and a pure function of that function's
own request history plus the virtual clock — no cross-function state, no
random draws — which is exactly what lets sharded parallel replay
(:mod:`repro.parallel`) stay bit-identical to serial replay with
throttling enabled.  The one deliberate approximation this forces: the
account-level cap is enforced per function (each function can use up to
the account cap, never more); cross-function contention for the unreserved
pool is not modelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import Provider
from ..exceptions import ConfigurationError
from ..faas.limits import PlatformLimits
from .config import OverloadConfig


class BurstKind(str, enum.Enum):
    """How a provider grants concurrency beyond the steady state."""

    #: AWS: immediate burst allowance, then token-bucket-limited growth.
    TOKEN_BUCKET = "token-bucket"
    #: Azure / GCP: instances are added at a bounded rate over time.
    INSTANCE_RATE = "instance-rate"


@dataclass(frozen=True)
class BurstProfile:
    """Burst ramp-up behaviour of one provider.

    ``initial`` is the concurrency (token bucket) or instance count
    (instance rate) available the moment traffic starts; ``ramp_per_s`` is
    the sustained growth rate past it.
    """

    kind: BurstKind
    initial: int
    ramp_per_s: float

    def __post_init__(self) -> None:
        if self.initial < 1:
            raise ConfigurationError("burst initial allowance must be at least 1")
        if self.ramp_per_s < 0:
            raise ConfigurationError("burst ramp rate must be non-negative")


#: Provider burst behaviour (2020-era public scaling documentation): AWS
#: regions grant a 500-3000 burst then +500 concurrent executions per
#: minute; GCP adds instances at a bounded per-minute rate; Azure's
#: consumption plan adds roughly one function-app instance per second for
#: HTTP traffic (each hosting ``sandbox_concurrency`` executions).
_BURST_PROFILES: dict[Provider, BurstProfile | None] = {
    Provider.AWS: BurstProfile(BurstKind.TOKEN_BUCKET, initial=1000, ramp_per_s=500.0 / 60.0),
    Provider.GCP: BurstProfile(BurstKind.INSTANCE_RATE, initial=100, ramp_per_s=100.0 / 60.0),
    Provider.AZURE: BurstProfile(BurstKind.INSTANCE_RATE, initial=4, ramp_per_s=1.0),
    Provider.IAAS: None,
    Provider.LOCAL: None,
}


def burst_profile_for(provider: Provider) -> BurstProfile | None:
    """Burst ramp-up profile of ``provider`` (``None`` = no burst model)."""
    return _BURST_PROFILES[provider]


class FunctionThrottle:
    """Admission gate of one deployed function.

    Holds the effective concurrency ceiling (min of reserved and account
    caps) and the burst ramp state.  The engine asks :meth:`try_admit`
    before dispatching; state advances only on this function's own
    admission attempts, so the decision sequence is identical whether the
    function replays alone (one shard) or inside a mixed trace.
    """

    __slots__ = ("limit", "profile", "slot_capacity", "_t0", "_tokens", "_last_refill", "_granted")

    def __init__(self, limit: int, profile: BurstProfile | None = None, slot_capacity: int = 1):
        if limit < 1:
            raise ConfigurationError("concurrency limit must be at least 1")
        if slot_capacity < 1:
            raise ConfigurationError("slot_capacity must be at least 1")
        self.limit = limit
        self.profile = profile
        self.slot_capacity = slot_capacity
        #: Time of the first admission attempt (starts the ramp clock).
        self._t0: float | None = None
        self._tokens = float(profile.initial) if profile is not None else 0.0
        self._last_refill = 0.0
        #: Token bucket only: concurrency high-water mark granted so far.
        self._granted = 0

    def allowance(self, now: float) -> int:
        """Concurrency ceiling at ``now`` (read-only; no token consumption)."""
        profile = self.profile
        if profile is None:
            return self.limit
        if self._t0 is None:
            initial = profile.initial
            if profile.kind is BurstKind.INSTANCE_RATE:
                initial *= self.slot_capacity
            return min(self.limit, initial)
        if profile.kind is BurstKind.TOKEN_BUCKET:
            tokens = min(
                float(profile.initial),
                self._tokens + (now - self._last_refill) * profile.ramp_per_s,
            )
            return min(self.limit, self._granted + int(tokens))
        instances = profile.initial + int((now - self._t0) * profile.ramp_per_s)
        return min(self.limit, instances * self.slot_capacity)

    def try_admit(self, now: float, in_flight: int) -> bool:
        """Whether one more execution may start at ``now``.

        ``in_flight`` is the function's current concurrent executions (the
        engine tracks it).  A successful token-bucket admission that raises
        the concurrency high-water mark consumes tokens.
        """
        needed = in_flight + 1
        if needed > self.limit:
            return False
        profile = self.profile
        if profile is None:
            return True
        if self._t0 is None:
            self._t0 = now
            self._last_refill = now
        if profile.kind is BurstKind.INSTANCE_RATE:
            instances = profile.initial + int((now - self._t0) * profile.ramp_per_s)
            return needed <= instances * self.slot_capacity
        # Token bucket: growing the concurrency high-water mark costs tokens.
        if needed <= self._granted:
            return True
        self._tokens = min(
            float(profile.initial),
            self._tokens + (now - self._last_refill) * profile.ramp_per_s,
        )
        self._last_refill = now
        required = needed - self._granted
        if self._tokens >= required:
            self._tokens -= required
            self._granted = needed
            return True
        return False


def build_function_throttle(
    fname: str,
    overload: OverloadConfig,
    limits: PlatformLimits,
    provider: Provider,
    slot_capacity: int = 1,
) -> FunctionThrottle:
    """Build the admission gate of ``fname`` under ``overload``.

    The effective ceiling is the tightest of the function's reserved
    concurrency (per-function override, then the default) and the account
    cap (configured, else the provider's Table 2 ``concurrency_limit``).
    """
    reserved = overload.per_function_reserved.get(fname, overload.reserved_concurrency)
    account = (
        overload.account_concurrency
        if overload.account_concurrency is not None
        else limits.concurrency_limit
    )
    limit = account if reserved is None else min(reserved, account)
    profile = burst_profile_for(provider) if overload.model_burst else None
    return FunctionThrottle(limit=limit, profile=profile, slot_capacity=slot_capacity)
