"""Bounded admission queue for asynchronous over-limit invocations.

Queue-, storage- and timer-triggered invocations are fire-and-forget: when
the function is at its concurrency ceiling the platform does not 429 the
caller — the event waits in the trigger's delivery queue.  The model here
is one bounded FIFO per function: arrivals beyond the ceiling spill in,
capacity freed by a completion (or grown by the burst ramp) drains the
head, and entries either run late (their queueing delay is accounted on
the record) or drop — immediately when the queue is full, or at drain time
once they exceed the maximum age.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from ..faas.invocation import InvocationRequest


class QueuedInvocation(NamedTuple):
    """One spilled asynchronous request waiting for admission."""

    #: Absolute (platform-clock) time the request entered the queue.
    enqueued_at: float
    #: Stream position of the request (its ``request_index``).
    position: int
    request: InvocationRequest


class AdmissionQueue:
    """Bounded per-function FIFO of spilled asynchronous invocations."""

    __slots__ = ("depth", "max_age_s", "_items")

    def __init__(self, depth: int, max_age_s: float | None = None):
        self.depth = depth
        self.max_age_s = max_age_s
        self._items: deque[QueuedInvocation] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def push(self, entry: QueuedInvocation) -> bool:
        """Enqueue ``entry``; ``False`` if the queue is full (caller drops)."""
        if len(self._items) >= self.depth:
            return False
        self._items.append(entry)
        return True

    def head(self) -> QueuedInvocation:
        return self._items[0]

    def pop(self) -> QueuedInvocation:
        return self._items.popleft()

    def head_expired(self, now: float) -> bool:
        """Whether the head entry has waited longer than the maximum age."""
        if self.max_age_s is None or not self._items:
            return False
        return now - self._items[0].enqueued_at > self.max_age_s
