"""Local (non-cloud) benchmark characterization.

The paper measures each application on a bare-metal machine to verify that
the suite covers different performance profiles (Table 4): cold and warm
execution time, retired instructions (collected with PAPI, since ``perf`` is
unreliable for very short runs), CPU utilisation and memory consumption.

The reproduction measures what can be measured honestly in-process — wall
time of real kernel executions (first execution of a fresh process stands in
for "cold", subsequent ones for "warm"), CPU utilisation from
``os.times``/``resource``, allocation peaks from ``tracemalloc``, storage
traffic from the object-store metering — and reports the calibrated
instruction counts from the benchmark profiles where hardware counters are
unavailable.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

from ..benchmarks.base import Benchmark, BenchmarkContext, InputSize
from ..config import Language
from ..exceptions import BenchmarkError
from ..storage.object_store import ObjectStore


@dataclass(frozen=True)
class LocalMetrics:
    """Local measurements of one benchmark (one row of Table 4)."""

    benchmark: str
    language: Language
    cold_time_s: float
    warm_time_s: float
    warm_time_std_s: float
    instructions: float
    cpu_utilization: float
    peak_memory_mb: float
    storage_read_bytes: int
    storage_write_bytes: int
    output_bytes: int
    code_package_mb: float
    samples: int

    def to_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "language": self.language.display_name,
            "cold_time_ms": round(self.cold_time_s * 1000, 2),
            "warm_time_ms": round(self.warm_time_s * 1000, 2),
            "warm_std_ms": round(self.warm_time_std_s * 1000, 2),
            "instructions": self.instructions,
            "cpu_utilization_pct": round(self.cpu_utilization * 100, 1),
            "peak_memory_mb": round(self.peak_memory_mb, 1),
            "storage_read_bytes": self.storage_read_bytes,
            "storage_write_bytes": self.storage_write_bytes,
            "output_bytes": self.output_bytes,
            "code_package_mb": self.code_package_mb,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class LocalCharacterization:
    """Local metrics of a whole benchmark suite."""

    metrics: tuple[LocalMetrics, ...]

    def row_for(self, benchmark: str) -> LocalMetrics:
        for entry in self.metrics:
            if entry.benchmark == benchmark:
                return entry
        raise BenchmarkError(f"no local metrics recorded for benchmark {benchmark!r}")

    def to_rows(self) -> list[dict]:
        return [entry.to_row() for entry in self.metrics]


def measure_local(
    benchmark: Benchmark,
    size: InputSize = InputSize.TEST,
    repetitions: int = 5,
    seed: int = 42,
    language: Language = Language.PYTHON,
) -> LocalMetrics:
    """Measure a benchmark locally by executing its kernel for real.

    The first execution plays the role of the "cold" run (imports, caches and
    storage state are empty), later executions are "warm".  Storage traffic is
    taken from the object-store metering, memory from ``tracemalloc``, CPU
    utilisation from process CPU time over wall time.
    """
    if repetitions < 2:
        raise BenchmarkError("local characterization requires at least two repetitions")
    store = ObjectStore()
    context = BenchmarkContext(storage=store, rng=np.random.default_rng(seed))
    event = benchmark.generate_input(size, context)

    durations: list[float] = []
    cpu_fractions: list[float] = []
    peak_memory = 0.0
    storage_before = store.metering.snapshot()
    output_bytes = 0

    for _ in range(repetitions):
        tracemalloc.start()
        cpu_before = time.process_time()
        start = time.perf_counter()
        result = benchmark.run(event, context)
        elapsed = time.perf_counter() - start
        cpu_elapsed = time.process_time() - cpu_before
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        durations.append(elapsed)
        peak_memory = max(peak_memory, peak / (1024 * 1024))
        cpu_fractions.append(min(1.0, cpu_elapsed / elapsed) if elapsed > 0 else 1.0)
        import json

        output_bytes = len(json.dumps(result, default=str).encode("utf-8"))

    storage_delta = store.metering.delta(storage_before)
    profile = benchmark.profile(size=size, language=language)
    warm_durations = durations[1:]
    return LocalMetrics(
        benchmark=benchmark.name,
        language=language,
        cold_time_s=durations[0],
        warm_time_s=float(np.median(warm_durations)),
        warm_time_std_s=float(np.std(warm_durations)) if len(warm_durations) > 1 else 0.0,
        instructions=profile.instructions,
        cpu_utilization=float(np.mean(cpu_fractions)),
        peak_memory_mb=max(peak_memory, 1e-3),
        storage_read_bytes=storage_delta.bytes_read // repetitions,
        storage_write_bytes=storage_delta.bytes_written // repetitions,
        output_bytes=output_bytes,
        code_package_mb=profile.code_package_mb,
        samples=repetitions,
    )
