"""Application metrics (Section 5.1).

Two families of metrics characterise benchmarks:

* **local metrics**, measured by really executing the kernel on the local
  machine: execution time, an instruction estimate, CPU utilisation, peak
  memory, storage I/O traffic and code-package size — the data behind
  Table 4;
* **cloud metrics**, gathered per invocation from the (simulated) provider:
  benchmark, provider and client time, memory consumption and cost — the
  data behind Figures 3-6 and Tables 5-6.
"""

from .local import LocalMetrics, LocalCharacterization, measure_local
from .cloud import CloudMetrics, aggregate_records

__all__ = [
    "LocalMetrics",
    "LocalCharacterization",
    "measure_local",
    "CloudMetrics",
    "aggregate_records",
]
