"""Aggregation of cloud-side invocation records.

Experiments gather many :class:`~repro.faas.invocation.InvocationRecord`
objects; the helpers here turn them into the per-configuration summaries that
figures and tables report: distributions of benchmark / provider / client
time, memory statistics, total and per-invocation cost, and error rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import Provider, StartType
from ..exceptions import ExperimentError
from ..faas.invocation import InvocationRecord
from ..stats.summary import DistributionSummary, summarize


@dataclass(frozen=True)
class CloudMetrics:
    """Summary of a set of invocations under one configuration."""

    provider: Provider
    benchmark: str
    memory_mb: int
    start_type: StartType | None
    samples: int
    failures: int
    benchmark_time: DistributionSummary
    provider_time: DistributionSummary
    client_time: DistributionSummary
    memory_used_mb: DistributionSummary
    total_cost_usd: float
    mean_cost_usd: float

    @property
    def error_rate(self) -> float:
        total = self.samples + self.failures
        return self.failures / total if total else 0.0

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "benchmark": self.benchmark,
            "memory_mb": self.memory_mb,
            "start_type": self.start_type.value if self.start_type else "all",
            "samples": self.samples,
            "failures": self.failures,
            "error_rate": round(self.error_rate, 4),
            "benchmark_time_median_s": self.benchmark_time.median,
            "provider_time_median_s": self.provider_time.median,
            "client_time_median_s": self.client_time.median,
            "client_time_p2_s": self.client_time.whisker_low,
            "client_time_p98_s": self.client_time.whisker_high,
            "memory_used_median_mb": self.memory_used_mb.median,
            "total_cost_usd": self.total_cost_usd,
            "mean_cost_usd": self.mean_cost_usd,
        }


def aggregate_records(
    records: Sequence[InvocationRecord] | Iterable[InvocationRecord],
    start_type: StartType | None = None,
) -> CloudMetrics:
    """Summarise invocation records, optionally filtered by start type."""
    all_records = list(records)
    if not all_records:
        raise ExperimentError("cannot aggregate an empty set of invocation records")
    if start_type is not None:
        selected = [r for r in all_records if r.start_type is start_type]
    else:
        selected = all_records
    successes = [r for r in selected if r.success]
    failures = [r for r in selected if not r.success]
    if not successes:
        raise ExperimentError("no successful invocations to aggregate")
    reference = successes[0]
    costs = [r.cost.total for r in successes]
    return CloudMetrics(
        provider=reference.provider,
        benchmark=reference.benchmark,
        memory_mb=reference.memory_declared_mb,
        start_type=start_type,
        samples=len(successes),
        failures=len(failures),
        benchmark_time=summarize([r.benchmark_time_s for r in successes]),
        provider_time=summarize([r.provider_time_s for r in successes]),
        client_time=summarize([r.client_time_s for r in successes]),
        memory_used_mb=summarize([r.memory_used_mb for r in successes]),
        total_cost_usd=float(np.sum(costs)),
        mean_cost_usd=float(np.mean(costs)),
    )
