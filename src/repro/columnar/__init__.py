"""Vectorized columnar replay hot path.

Opt-in via :attr:`repro.config.SimulationConfig.columnar` (CLI:
``--columnar``).  Three cooperating pieces:

* :mod:`repro.columnar.draws` — pre-drawn random blocks wrapping the
  blockable per-function streams (gateway, network, reliability,
  spurious), installed at runtime-state creation;
* :mod:`repro.columnar.records` — struct-of-arrays invocation storage
  with lazy record materialisation;
* :mod:`repro.columnar.engine` — the flat replay loop (imported lazily by
  :meth:`repro.workload.engine.WorkloadEngine.run` so scalar replays
  never pay for it).

Every result is bit-identical to the scalar path; the differential tier
(``tests/test_columnar_equivalence.py``) and the golden fixtures prove it.
"""

from .draws import BLOCK, ExponentialBlock, LognormalBlock, UniformBlock, install_draw_blocks
from .records import ColumnarRecordBlock, LaneMeta

__all__ = [
    "BLOCK",
    "ColumnarRecordBlock",
    "ExponentialBlock",
    "LaneMeta",
    "LognormalBlock",
    "UniformBlock",
    "install_draw_blocks",
]
