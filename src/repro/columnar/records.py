"""Columnar invocation-record storage: parallel arrays, lazy objects.

The scalar engine materialises one frozen
:class:`~repro.faas.invocation.InvocationRecord` (plus a
:class:`~repro.faas.billing.CostBreakdown`) per request — the dominant
object churn of a 100k-invocation replay.  The columnar engine instead
appends the per-invocation *variables* to parallel Python lists and keeps
everything a record shares with its function (name, benchmark, provider,
declared memory, output size, the duration-independent cost components) in
one :class:`LaneMeta` per function.

Objects are materialised lazily and only when the caller actually asked
for records (``keep_records=True``): :meth:`ColumnarRecordBlock.materialize`
rebuilds the exact ``InvocationRecord`` list the scalar path would have
produced — field for field, including derived floats (``started_at`` is
recomputed as ``submitted_at + invocation_overhead_s``, the same addition
the scalar path performs).  Streaming replays never materialise at all.

The block is a plain picklable container of lists, so sharded replay ships
it across the process boundary whole and the parent materialises after the
merge (:mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config import InvocationOutcome, Provider, StartType
from ..faas.billing import CostBreakdown
from ..faas.invocation import InvocationRecord
from ..observe.events import InvocationSpan

#: Outcome / start-type constants hoisted for the materialisation loop.
_COMPLETED = InvocationOutcome.COMPLETED
_FAILED = InvocationOutcome.FAILED
_COLD = StartType.COLD
_WARM = StartType.WARM


@dataclass(frozen=True)
class LaneMeta:
    """Per-function constants shared by every record of one lane.

    ``statics`` maps ``(via_http, success)`` to the duration-independent
    ``(request_cost, storage_cost, egress_cost)`` components, precomputed
    through the billing model's own ``_static_cost_components`` so the
    floats are byte-for-byte the scalar path's.
    """

    function_name: str
    benchmark: str
    provider: Provider
    memory_declared_mb: int
    output_bytes: int
    statics: dict


class ColumnarRecordBlock:
    """Struct-of-arrays storage for executed fast-path invocation records."""

    __slots__ = (
        "lanes",
        "lane",
        "request_index",
        "submitted_at",
        "cold",
        "success",
        "error",
        "benchmark_time_s",
        "provider_time_s",
        "client_time_s",
        "invocation_overhead_s",
        "cold_init_s",
        "memory_used_mb",
        "billed_duration_s",
        "compute_cost",
        "via_http",
        "container_id",
        "finished_at",
    )

    def __init__(self) -> None:
        self.lanes: list[LaneMeta] = []
        self.lane: list[int] = []
        self.request_index: list[int] = []
        self.submitted_at: list[float] = []
        self.cold: list[bool] = []
        self.success: list[bool] = []
        self.error: list[str | None] = []
        self.benchmark_time_s: list[float] = []
        self.provider_time_s: list[float] = []
        self.client_time_s: list[float] = []
        self.invocation_overhead_s: list[float] = []
        self.cold_init_s: list[float] = []
        self.memory_used_mb: list[float] = []
        self.billed_duration_s: list[float] = []
        self.compute_cost: list[float] = []
        self.via_http: list[bool] = []
        self.container_id: list[str] = []
        self.finished_at: list[float] = []

    def __len__(self) -> int:
        return len(self.lane)

    def add_lane(self, meta: LaneMeta) -> int:
        """Register a function lane; returns its index for the lane column."""
        self.lanes.append(meta)
        return len(self.lanes) - 1

    def materialize(self) -> list[InvocationRecord]:
        """Build the scalar-path record objects, in append (arrival) order."""
        lanes = self.lanes
        records: list[InvocationRecord] = []
        append = records.append
        for (
            lane_idx,
            request_index,
            submitted_at,
            cold,
            success,
            error,
            benchmark_time_s,
            provider_time_s,
            client_time_s,
            invocation_overhead_s,
            cold_init_s,
            memory_used_mb,
            billed_duration_s,
            compute_cost,
            via_http,
            container_id,
            finished_at,
        ) in zip(
            self.lane,
            self.request_index,
            self.submitted_at,
            self.cold,
            self.success,
            self.error,
            self.benchmark_time_s,
            self.provider_time_s,
            self.client_time_s,
            self.invocation_overhead_s,
            self.cold_init_s,
            self.memory_used_mb,
            self.billed_duration_s,
            self.compute_cost,
            self.via_http,
            self.container_id,
            self.finished_at,
        ):
            meta = lanes[lane_idx]
            request_cost, storage_cost, egress_cost = meta.statics[(via_http, success)]
            append(
                InvocationRecord(
                    function_name=meta.function_name,
                    benchmark=meta.benchmark,
                    provider=meta.provider,
                    start_type=_COLD if cold else _WARM,
                    success=success,
                    benchmark_time_s=benchmark_time_s,
                    provider_time_s=provider_time_s,
                    client_time_s=client_time_s,
                    invocation_overhead_s=invocation_overhead_s,
                    cold_init_s=cold_init_s,
                    memory_declared_mb=meta.memory_declared_mb,
                    memory_used_mb=memory_used_mb,
                    billed_duration_s=billed_duration_s,
                    cost=CostBreakdown(
                        request_cost=request_cost,
                        compute_cost=compute_cost,
                        storage_cost=storage_cost,
                        egress_cost=egress_cost,
                    ),
                    output_bytes=meta.output_bytes,
                    container_id=container_id,
                    submitted_at=submitted_at,
                    started_at=submitted_at + invocation_overhead_s,
                    finished_at=finished_at,
                    error=error,
                    outcome=_COMPLETED if success else _FAILED,
                    admitted_at=submitted_at,
                    request_index=request_index,
                )
            )
        return records

    def indexed_records(self) -> list[tuple[int, InvocationRecord]]:
        """(request_index, record) pairs — the sharded-merge exchange shape."""
        return list(zip(self.request_index, self.materialize()))

    def spans(self) -> Iterator[InvocationSpan]:
        """Invocation spans straight from the arrays (no record objects).

        Segment arithmetic mirrors :func:`repro.observe.events.invocation_span`
        for fast-path records (always executed, zero queue wait).
        """
        lanes = self.lanes
        for i in range(len(self.lane)):
            meta = lanes[self.lane[i]]
            provider_time_s = self.provider_time_s[i]
            cold_init_s = self.cold_init_s[i]
            network_s = self.client_time_s[i] - provider_time_s - cold_init_s - 0.0
            if network_s < 0.0:
                network_s = 0.0
            submitted_at = self.submitted_at[i]
            yield InvocationSpan(
                meta.function_name,
                self.request_index[i],
                (_COMPLETED if self.success[i] else _FAILED).value,
                self.success[i],
                (_COLD if self.cold[i] else _WARM).value,
                self.container_id[i],
                submitted_at,
                submitted_at + self.invocation_overhead_s[i],
                self.finished_at[i],
                0.0,
                cold_init_s,
                provider_time_s,
                network_s,
                1,
            )

    def span_bounds(self) -> tuple[float, float] | None:
        """(min submitted_at, max finished_at) or ``None`` when empty.

        ``submitted_at`` is monotone by the engine's sort contract, so the
        minimum is the first element; ``finished_at`` is not, so it scans.
        """
        if not self.submitted_at:
            return None
        return self.submitted_at[0], max(self.finished_at)
