"""Pre-drawn random blocks for the columnar replay hot path.

The scalar simulator draws from its per-function named streams one value at
a time (``Generator.random()``, ``.lognormal()``, ``.exponential()``).  For
four of the five streams — *gateway*, *network*, *reliability* and
*spurious* — every draw comes from a **single distribution with constant
parameters**, so the whole stream can be pre-drawn in vectorized blocks:
one ``Generator.random(n)`` call consumes the underlying bit stream exactly
like ``n`` scalar ``random()`` calls and yields the identical float
sequence (the same property :class:`repro.stats.streaming.MergeableReservoir`
already exploits for its tag blocks, and which
``tests/test_columnar_draws.py`` proves property-based).

The fifth stream — *compute* — interleaves lognormal, uniform, exponential
and normal draws data-dependently (jitter, storage contention, cold-start
erratic delays, memory noise), so batching it would permute bit-stream
consumption.  It stays scalar; the columnar engine merely inlines the
arithmetic around it.

Each block object *wraps* the live generator of a function's runtime state
and replaces it in place (``state.gateway_stream``, ``state.network._rng``,
…).  Scalar code paths that still draw from the stream (the controlled
overload/fault replay loop, direct ``platform.invoke`` calls) hit the
parameter-checked shim methods (`random`/`lognormal`/`exponential`) and
receive exactly the values the raw generator would have produced — which is
how the columnar flag composes with the overload/fault/resilience stack
without a second code path.

Batch-boundary rule: a block pre-draws up to ``BLOCK`` values, so after a
replay the *underlying* generator sits at the next block boundary rather
than at the last consumed value.  Consumers never observe this (they only
ever see the block), but it is why blocks are installed once per runtime
state and kept for the platform's lifetime: discarding a partially consumed
block would lose draws.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

#: Values pre-drawn per vectorized generator call.  Large enough to
#: amortize numpy call overhead across the hot loop, small enough that the
#: buffered tail after a replay stays negligible.
BLOCK = 256


class UniformBlock:
    """Pre-drawn ``Generator.random()`` stream (reliability / spurious)."""

    __slots__ = ("_rng", "_values", "_i")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._values: list[float] = []
        self._i = 0

    def take(self) -> float:
        """Next value; refills the block from the wrapped generator."""
        i = self._i
        values = self._values
        if i == len(values):
            values = self._values = self._rng.random(BLOCK).tolist()
            i = 0
        self._i = i + 1
        return values[i]

    def random(self) -> float:
        """Scalar-compatible shim for code that still calls ``.random()``."""
        return self.take()


class LognormalBlock:
    """Pre-drawn ``Generator.lognormal(mean, sigma)`` stream (gateway).

    The gateway stream only ever draws with the platform's warm-jitter
    parameters, so they are fixed at construction; the shim rejects any
    other parameters loudly rather than silently desynchronizing the
    scalar and columnar paths.
    """

    __slots__ = ("_rng", "_mean", "_sigma", "_values", "_i")

    def __init__(self, rng: np.random.Generator, mean: float, sigma: float):
        self._rng = rng
        self._mean = mean
        self._sigma = sigma
        self._values: list[float] = []
        self._i = 0

    def take(self) -> float:
        i = self._i
        values = self._values
        if i == len(values):
            values = self._values = self._rng.lognormal(self._mean, self._sigma, BLOCK).tolist()
            i = 0
        self._i = i + 1
        return values[i]

    def lognormal(self, mean: float, sigma: float) -> float:
        """Scalar-compatible shim; parameters must match the block's."""
        if mean != self._mean or sigma != self._sigma:
            raise ConfigurationError(
                "columnar lognormal block drawn with parameters "
                f"({mean}, {sigma}) != pinned ({self._mean}, {self._sigma})"
            )
        return self.take()


class ExponentialBlock:
    """Pre-drawn ``Generator.exponential(scale)`` stream (network jitter).

    One block serves both the request and the response delay of every
    invocation — the scalar path draws them alternately from the same
    generator, and a single buffer preserves that interleaving exactly.
    """

    __slots__ = ("_rng", "_scale", "_values", "_i")

    def __init__(self, rng: np.random.Generator, scale: float):
        self._rng = rng
        self._scale = scale
        self._values: list[float] = []
        self._i = 0

    def take(self) -> float:
        i = self._i
        values = self._values
        if i == len(values):
            values = self._values = self._rng.exponential(self._scale, BLOCK).tolist()
            i = 0
        self._i = i + 1
        return values[i]

    def exponential(self, scale: float) -> float:
        """Scalar-compatible shim; the scale must match the block's."""
        if scale != self._scale:
            raise ConfigurationError(
                f"columnar exponential block drawn with scale {scale} != pinned {self._scale}"
            )
        return self.take()


def install_draw_blocks(state, platform) -> None:
    """Replace a runtime state's blockable streams with pre-drawn blocks.

    Called once from ``_new_runtime_state`` when the platform runs in
    columnar mode.  Wraps exactly the streams whose draw pattern is a
    single constant-parameter distribution:

    * ``gateway_stream`` — one warm-jitter lognormal per executed invocation;
    * ``network._rng`` — two exponentials (request, response) per invocation;
    * ``reliability._rng`` — conditional uniforms (sporadic OOM, availability);
    * ``spurious_stream`` — one uniform per admission (GCP only; streams
      with zero spurious probability never draw and are left untouched).

    The compute stream is deliberately *not* wrapped (see module docstring).
    """
    state.gateway_stream = LognormalBlock(
        state.gateway_stream, platform._gateway_mean, platform._gateway_sigma
    )
    jitter_scale = state.network.profile.jitter_scale_s
    if jitter_scale > 0:
        state.network._rng = ExponentialBlock(state.network._rng, jitter_scale)
    if platform.simulation.enable_failures:
        state.reliability._rng = UniformBlock(state.reliability._rng)
    if platform._spurious_probability > 0.0:
        state.spurious_stream = UniformBlock(state.spurious_stream)
