"""The vectorized (columnar) trace-replay hot loop.

One flat loop replaces the scalar call stack
(``WorkloadEngine._stream_fast`` → ``_simulate_invocation`` →
``_simulate_reserved_invocation`` → compute / reliability / billing /
network models) for fast-path replays: no overload admission, no fault
plane, no client resilience, no kernel execution.  Everything a record
shares with its function — CPU share, jitter parameters, storage transfer
bases, billing constants, reliability thresholds — is precomputed once per
function into a :class:`_Lane`; per invocation only the data-dependent
draws and float arithmetic remain.

**Draw-order contract.**  The loop consumes the per-function random
streams in exactly the scalar order:

1. eviction-policy apply (own per-pool stream, delegated to the policy);
2. spurious cold-start uniform (only when the provider's probability > 0);
3. compute stream — jitter lognormal, contention uniform, per-transfer
   storage lognormals, cold-init draws (delegated to
   :meth:`~repro.simulator.compute.ComputeModel.cold_init_time` — the cold
   path is rare and data-dependent), memory normal;
4. reliability stream — sporadic-OOM uniform (GCP, borderline lanes only),
   availability uniform (GCP/Azure at concurrency ≥ 10);
5. gateway lognormal;
6. network exponentials (request, then response).

Streams 2, 4, 5 and 6 are served from the pre-drawn blocks installed by
:func:`repro.columnar.draws.install_draw_blocks`; stream 3 is heterogeneous
and stays scalar (see :mod:`repro.columnar.draws`).  Every float operation
is replicated in the scalar path's evaluation order, so records, streaming
summaries, provider logs, pool state and the clock are bit-identical — the
differential tier in ``tests/test_columnar_equivalence.py`` asserts it.

Three sink modes share the loop:

* **record** — per-invocation variables append to a
  :class:`~repro.columnar.records.ColumnarRecordBlock`; record objects are
  materialised lazily after the loop (``keep_records=True``);
* **fold** — per-lane counters and batched
  :meth:`~repro.stats.streaming.StreamingSummary.add_many` folds build a
  :class:`~repro.workload.engine._ReplayAccumulator` without ever creating
  a record (``keep_records=False``);
* **emit** — an attached observer needs the record object and its hooks in
  stream order, so records are built inline and handed to a callback (the
  loop still wins the blocked draws and the inlined arithmetic).

Provider-log entries are buffered as arrays and materialised into
``state.history`` once, after the loop (bounded by ``log_retention``).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Callable, Iterable

import numpy as np

from ..config import DYNAMIC_MEMORY, InvocationOutcome, Provider, StartType, TriggerType
from ..exceptions import ConfigurationError
from ..faas.billing import CostBreakdown
from ..faas.invocation import InvocationRecord, payload_wire_bytes
from ..simulator.containers import Container, ContainerState
from ..simulator.reliability import ReliabilityModel
from ..utils.units import round_up
from .draws import BLOCK as _BLOCK
from ..workload.engine import (
    _PRUNE_INTERVAL,
    _FunctionAccumulator,
    _ReplayAccumulator,
    WorkloadResult,
    streaming_result,
)
from ..workload.trace import MergedWorkloadTrace, WorkloadTrace
from .records import ColumnarRecordBlock, LaneMeta

_HTTP = TriggerType.HTTP
_COLD = StartType.COLD
_WARM = StartType.WARM
_COMPLETED = InvocationOutcome.COMPLETED
_FAILED = InvocationOutcome.FAILED
_CS_WARM = ContainerState.WARM
#: ``Container.is_warm`` as a membership test, hoisted for the inlined
#: pool operations (pick / release re-offer).
_LIVE = (ContainerState.WARM, ContainerState.BUSY)

#: Streaming-fold flush threshold: client-time / cost buffers fold into the
#: per-function accumulator in batches of this size (element order inside a
#: batch is preserved, so the fold is bit-identical to per-record adds).
_FOLD_BATCH = 8192

#: Provider-log buffers are trimmed to the retention bound whenever they
#: grow past twice of it, keeping memory O(retention) without trimming on
#: every append.
_HISTORY_SLACK = 2


class _Lane:
    """Per-function constants and prebound hot-path callables."""

    __slots__ = (
        "fname",
        "benchmark",
        "version",
        "memory_mb",
        "profile",
        "package_mb",
        "timeout_s",
        "peak_memory_mb",
        "function",
        # Overridden sandbox acquisition (IaaS's always-warm VM); ``None``
        # selects the inlined base-platform path.
        "acquire",
        # pool / container plumbing.  The pick / reserve / finish-serve /
        # release operations are inlined in the loop against the pool's
        # internal structures: ``heap`` (the per-version MRU heap list),
        # ``entry_lua`` and ``in_use`` are never rebound for the pool's
        # lifetime; ``index`` IS rebound by ``prune()`` and is refreshed
        # after every prune interval.
        "pool",
        "heap",
        "entry_lua",
        "in_use",
        "index",
        "cap",
        "pool_add",
        "release",
        "next_container_id",
        "in_flight",
        # compute stream (scalar draws, inlined arithmetic)
        "c_lognormal",
        "c_normal",
        # storage-model stream (the compute generator unless the platform
        # attached a dedicated one, e.g. IaaS cloud storage)
        "sto_lognormal",
        "sto_random",
        "compute_base",
        "jit_solo",
        "jit_conc",
        "cold_init_time",
        # storage
        "contention_p",
        "contention_slowdown",
        "read_on",
        "read_requests",
        "read_base",
        "write_on",
        "write_requests",
        "write_base",
        "s_jitter",
        "s_mean",
        "s_sigma",
        # reliability
        "rel_take",
        "rel_dynamic",
        "rel_strict",
        "rel_lenient_threshold",
        "rel_borderline",
        "rel_burst",
        "rel_gcp",
        "rel_highmem",
        # gateway / payload / network
        "gw_block",
        "http_base",
        "sdk_base",
        "payload_denom",
        "empty_upload",
        "response_download_s",
        "req_base",
        "resp_base",
        "net_block",
        "sp_take",
        "sp_p",
        # billing
        "is_vm",
        "vm_price",
        "min_billed",
        "granularity",
        "gb_price",
        "bills_avg",
        "mem_gb_const",
        "mem_gran",
        "mem_overhead",
        "statics",
        # provider-log buffers
        "state",
        "h_pt",
        "h_used",
        "h_cost",
        "h_cold",
        "h_success",
        "h_ts",
        # sink state
        "lane_idx",
        "acc",
        "n",
        "n_cold",
        "n_fail",
        "cost_buf",
        "client_buf",
    )


def _build_lane(platform, fname: str) -> _Lane:
    """Resolve one function into a precomputed lane (first appearance)."""
    from ..simulator.platform_sim import SimulatedPlatform

    function = platform.get_function(fname)
    state = platform._state.get(fname)
    if state is None:
        state = platform._runtime_state(fname)
    profile = platform._profile_for(function, state)
    memory_mb = function.config.memory_mb
    performance = platform.performance
    compute = state.compute

    lane = _Lane()
    lane.fname = function.name
    lane.benchmark = function.benchmark
    lane.version = function.version
    lane.memory_mb = memory_mb
    lane.profile = profile
    lane.package_mb = function.package.size_mb
    lane.timeout_s = function.config.timeout_s
    lane.peak_memory_mb = profile.peak_memory_mb
    lane.function = function
    # A platform that overrides sandbox acquisition (IaaS) keeps its own
    # semantics: the loop calls the override per invocation instead of the
    # inlined base path.
    if type(platform)._acquire_container is SimulatedPlatform._acquire_container:
        lane.acquire = None
    else:
        lane.acquire = platform._acquire_container

    pool = state.pool
    lane.pool = pool
    # ``setdefault`` so the lane owns the very list ``_push`` would use; an
    # empty heap entry for the version is what the first push would create.
    lane.heap = pool._mru.setdefault(function.version, [])
    lane.entry_lua = pool._entry_lua
    lane.in_use = pool._in_use
    lane.index = pool._index
    lane.cap = pool.slot_capacity
    lane.pool_add = pool.add
    lane.release = pool.release
    lane.next_container_id = pool.next_container_id
    lane.in_flight = 0

    # Compute stream: the heterogeneous scalar stream (see module docstring).
    rng = compute._rng
    lane.c_lognormal = rng.lognormal
    lane.c_normal = rng.normal
    storage_rng = compute.storage_model._rng
    lane.sto_lognormal = storage_rng.lognormal
    lane.sto_random = storage_rng.random
    share = compute.cpu_share(memory_mb)
    lane.compute_base = profile.warm_compute_s * performance.compute_speed_factor / share
    lane.jit_solo = _jitter_params(performance.compute_jitter_cv)
    lane.jit_conc = _jitter_params(
        performance.compute_jitter_cv * performance.concurrency_jitter_factor
    )
    lane.cold_init_time = compute.cold_init_time

    # Storage: per-transfer base latencies precomputed exactly as
    # StorageLatencyModel.transfer_time computes them.  Read the profile off
    # the live model — a platform may attach a non-default one (IaaS S3).
    storage = compute.storage_model.profile
    effective = compute.effective_memory(memory_mb)
    bandwidth = compute.storage_model.bandwidth_mbps(effective) * 1024 * 1024
    lane.contention_p = storage.contention_tail_probability
    lane.contention_slowdown = storage.contention_slowdown
    lane.read_on = profile.storage_read_bytes > 0 or profile.storage_read_requests > 0
    lane.read_requests = max(1, profile.storage_read_requests)
    lane.read_base = storage.base_latency_s + (
        profile.storage_read_bytes // lane.read_requests
    ) / bandwidth
    lane.write_on = profile.storage_write_bytes > 0 or profile.storage_write_requests > 0
    lane.write_requests = max(1, profile.storage_write_requests)
    lane.write_base = storage.base_latency_s + (
        profile.storage_write_bytes // lane.write_requests
    ) / bandwidth
    lane.s_jitter = storage.jitter_cv > 0
    if lane.s_jitter:
        s_sigma = float(np.sqrt(np.log(1.0 + storage.jitter_cv**2)))
        lane.s_sigma = s_sigma
        lane.s_mean = -(s_sigma**2) / 2.0
    else:
        lane.s_sigma = 0.0
        lane.s_mean = 0.0

    # Reliability: thresholds and draw gates, mirroring ReliabilityModel.
    provider = platform.provider
    enabled = platform.simulation.enable_failures
    lane.rel_take = state.reliability._rng.take if enabled else None
    lane.rel_dynamic = memory_mb == DYNAMIC_MEMORY
    lane.rel_strict = provider in ReliabilityModel._STRICT_MEMORY_PROVIDERS
    lane.rel_lenient_threshold = memory_mb * 1.5
    lane.rel_borderline = memory_mb < profile.peak_memory_mb * 1.10
    lane.rel_burst = provider in ReliabilityModel._BURST_FAILURE_PROVIDERS
    lane.rel_gcp = provider is Provider.GCP
    lane.rel_highmem = memory_mb >= 4096

    # Gateway, payload, response and network constants.
    invocation_profile = platform._invocation_profile
    lane.gw_block = state.gateway_stream
    lane.http_base = invocation_profile.http_gateway_s
    lane.sdk_base = invocation_profile.sdk_overhead_s
    lane.payload_denom = invocation_profile.payload_bandwidth_mbps * 1024 * 1024
    from ..simulator.platform_sim import _EMPTY_PAYLOAD_BYTES

    lane.empty_upload = _EMPTY_PAYLOAD_BYTES / lane.payload_denom
    lane.response_download_s = profile.output_bytes / (
        invocation_profile.response_bandwidth_mbps * 1024 * 1024
    )
    network = state.network
    lane.req_base = network._request_base
    lane.resp_base = network._response_base
    lane.net_block = network._rng if network.profile.jitter_scale_s > 0 else None
    lane.sp_p = platform._spurious_probability
    lane.sp_take = state.spurious_stream.take if lane.sp_p > 0 else None

    # Billing constants (the static components go through the billing
    # model's own cache so the floats are byte-for-byte the scalar path's).
    billing = platform.billing
    lane.is_vm = billing.vm_hourly_price > 0
    lane.vm_price = billing.vm_hourly_price
    lane.min_billed = billing.minimum_billed_duration_s
    lane.granularity = billing.duration_granularity_s
    lane.gb_price = billing.gb_second_price
    lane.bills_avg = billing.bills_average_memory or lane.rel_dynamic
    lane.mem_gb_const = float(memory_mb) / 1024.0
    lane.mem_gran = float(billing.memory_granularity_mb)
    lane.mem_overhead = billing.billed_memory_overhead_mb
    storage_requests = profile.storage_read_requests + profile.storage_write_requests
    if lane.is_vm:
        statics = {
            (via_http, success): (0.0, 0.0, 0.0)
            for via_http in (False, True)
            for success in (False, True)
        }
    else:
        statics = {
            (via_http, success): billing._static_cost_components(
                profile.output_bytes if success else 0, storage_requests, via_http
            )
            for via_http in (False, True)
            for success in (False, True)
        }
    lane.statics = statics

    # Provider-log buffers (materialised into state.history after the loop).
    lane.state = state
    lane.h_pt = []
    lane.h_used = []
    lane.h_cost = []
    lane.h_cold = []
    lane.h_success = []
    lane.h_ts = []

    lane.lane_idx = -1
    lane.acc = None
    lane.n = 0
    lane.n_cold = 0
    lane.n_fail = 0
    lane.cost_buf = []
    lane.client_buf = []
    return lane


def _jitter_params(cv: float) -> tuple[float, float] | None:
    """(mean, sigma) of the lognormal jitter for ``cv``; None = no draw.

    Matches ``ComputeModel._jitter``: ``sigma = float(sqrt(log(1+cv^2)))``
    (cached as a Python float there), ``mean = -sigma**2 / 2.0``.
    """
    if cv <= 0:
        return None
    sigma = float(np.sqrt(np.log(1.0 + cv**2)))
    return (-(sigma**2) / 2.0, sigma)


def _flush_lane(lane: _Lane) -> None:
    """Fold buffered per-lane stats into its _FunctionAccumulator."""
    acc = lane.acc
    acc.invocations += lane.n
    acc.executed += lane.n
    acc.cold_starts += lane.n_cold
    acc.failures += lane.n_fail
    total = acc.total_cost_usd
    for value in lane.cost_buf:
        total += value
    acc.total_cost_usd = total
    acc.client_time.add_many(lane.client_buf)
    lane.n = 0
    lane.n_cold = 0
    lane.n_fail = 0
    lane.cost_buf.clear()
    lane.client_buf.clear()


def _flush_history(lanes: dict, retention: int | None) -> None:
    """Materialise the buffered provider-log entries into state.history.

    One `_LogEntry` per *retained* invocation, built after the loop — the
    deque (``maxlen=retention``) keeps exactly the entries a scalar replay
    would have kept, in the same order.
    """
    from ..simulator.platform_sim import _LogEntry

    for lane in lanes.values():
        h_pt = lane.h_pt
        if retention is not None and len(h_pt) > retention:
            start = len(h_pt) - retention
        else:
            start = 0
        history = lane.state.history
        fname = lane.fname
        h_used = lane.h_used
        h_cost = lane.h_cost
        h_cold = lane.h_cold
        h_success = lane.h_success
        h_ts = lane.h_ts
        append = history.append
        for i in range(start, len(h_pt)):
            append(
                _LogEntry(
                    function_name=fname,
                    provider_time_s=h_pt[i],
                    memory_used_mb=h_used[i],
                    cost_usd=h_cost[i],
                    start_type=_COLD if h_cold[i] else _WARM,
                    success=h_success[i],
                    timestamp=h_ts[i],
                )
            )
        lane.h_pt = []
        lane.h_used = []
        lane.h_cost = []
        lane.h_cold = []
        lane.h_success = []
        lane.h_ts = []


def _replay(
    engine,
    requests: Iterable,
    positions: Iterable[int] | None,
    block: ColumnarRecordBlock | None,
    accumulator: _ReplayAccumulator | None,
    emit: Callable | None,
) -> None:
    """The flat columnar loop.  Exactly one sink must be active:

    ``block`` (record mode), ``accumulator`` (fold mode) or ``emit``
    (observer mode, records built inline and passed to the callback).
    """
    platform = engine.platform
    clock = platform.clock
    base = clock.now()
    retention = platform.simulation.log_retention
    history_cap = None if retention is None else retention * _HISTORY_SLACK
    provider = platform.provider
    apply_eviction = platform.eviction_policy.apply
    observer = platform._observer
    runtime_overhead_s = platform._runtime_overhead_s
    states = platform._state

    position_iter = iter(positions) if positions is not None else itertools.count()

    lanes: dict[str, _Lane] = {}
    #: Lanes whose pool saw an eviction since the last prune interval (dict
    #: used as an ordered set).  Pruning only these keeps the interval cost
    #: O(dirty) instead of O(deployed functions) — the difference between
    #: minutes and hours on million-function populations.
    dirty_lanes: dict[_Lane, None] = {}
    swept = False
    completions: list = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    isclose = math.isclose
    ceil = math.ceil
    seq = 0
    last_submitted = 0.0
    last_finish = base
    processed = 0
    peak = 0
    engine.last_peak_in_flight = 0

    record_mode = block is not None
    fold_mode = accumulator is not None
    if record_mode:
        a_lane = block.lane.append
        a_reqidx = block.request_index.append
        a_sub = block.submitted_at.append
        a_cold = block.cold.append
        a_success = block.success.append
        a_error = block.error.append
        a_bt = block.benchmark_time_s.append
        a_pt = block.provider_time_s.append
        a_ct = block.client_time_s.append
        a_ov = block.invocation_overhead_s.append
        a_ci = block.cold_init_s.append
        a_mu = block.memory_used_mb.append
        a_bd = block.billed_duration_s.append
        a_cc = block.compute_cost.append
        a_http = block.via_http.append
        a_cid = block.container_id.append
        a_fin = block.finished_at.append

    try:
        for request in requests:
            submitted = request.submitted_at
            if submitted < last_submitted:
                raise ConfigurationError(
                    "workload requests must be sorted by submission time "
                    f"({submitted:.6f} after {last_submitted:.6f})"
                )
            last_submitted = submitted
            now = base + submitted

            while completions and completions[0][0] <= now:
                # Inlined ContainerPool.release: drop the in-flight count,
                # re-offer the sandbox (push + entry_lua) if it freed up.
                done = heappop(completions)
                done_lane = done[2]
                cid = done[3]
                in_use = done_lane.in_use
                remaining = in_use.get(cid, 0) - 1
                if remaining > 0:
                    in_use[cid] = remaining
                else:
                    in_use.pop(cid, None)
                entry = done_lane.index.get(cid)
                if entry is not None:
                    cont = entry[1]
                    if (
                        cont.state in _LIVE
                        and in_use.get(cid, 0) < done_lane.cap
                        and done_lane.entry_lua.get(cid) != cont.last_used_at
                    ):
                        heappush(done_lane.heap, (-cont.last_used_at, entry[0], cont))
                        done_lane.entry_lua[cid] = cont.last_used_at
                done_lane.in_flight -= 1

            # Monotone by the sort check above: a plain store matches
            # VirtualClock.advance_to without the backwards-motion branch.
            clock._now = now

            fname = request.function_name
            lane = lanes.get(fname)
            if lane is None:
                lane = lanes[fname] = _build_lane(platform, fname)
                if record_mode:
                    lane.lane_idx = block.add_lane(
                        LaneMeta(
                            function_name=lane.fname,
                            benchmark=lane.benchmark,
                            provider=provider,
                            memory_declared_mb=lane.memory_mb,
                            output_bytes=lane.profile.output_bytes,
                            statics=lane.statics,
                        )
                    )
                elif fold_mode:
                    lane.acc = accumulator.per_function[lane.fname] = _FunctionAccumulator(
                        lane.fname
                    )

            in_flight = len(completions)

            # ---- sandbox acquisition (scalar: _acquire_container) --------
            if lane.acquire is None:
                evicted = apply_eviction(lane.pool, now)
                if evicted:
                    dirty_lanes[lane] = None
                    if observer is not None:
                        observer.on_container_evict(lane.fname, evicted, now, "policy")
                container = None
                sp_take = lane.sp_take
                if sp_take is None or sp_take() >= lane.sp_p:
                    # Inlined ContainerPool.pick_mru: pop stale heap entries
                    # (superseded, dead or saturated) until a live one
                    # surfaces; consume its entry_lua record.
                    mru = lane.heap
                    entry_lua = lane.entry_lua
                    in_use = lane.in_use
                    cap = lane.cap
                    while mru:
                        top = mru[0]
                        heappop(mru)
                        cand = top[2]
                        cid = cand.container_id
                        if entry_lua.get(cid) != -top[0]:
                            continue
                        if cand.state not in _LIVE or in_use.get(cid, 0) >= cap:
                            entry_lua.pop(cid, None)
                            continue
                        entry_lua.pop(cid, None)
                        container = cand
                        break
                if container is None:
                    cold = True
                    container_id = lane.next_container_id()
                    container = Container(
                        function_name=lane.fname,
                        function_version=lane.version,
                        memory_mb=lane.memory_mb,
                        created_at=now,
                        container_id=container_id,
                    )
                    lane.pool_add(container)
                    if observer is not None:
                        observer.on_container_create(lane.fname, container_id, now)
                else:
                    cold = False
                    container_id = container.container_id
            else:
                # The override may evict internally; conservatively mark the
                # lane dirty (pruning a clean pool is an O(1) no-op).
                container, start_type = lane.acquire(lane.function, lane.state, now)
                dirty_lanes[lane] = None
                cold = start_type is _COLD
                container_id = container.container_id
            # Inlined ContainerPool.reserve.
            in_use = lane.in_use
            in_use[container_id] = in_use.get(container_id, 0) + 1

            concurrency = lane.in_flight + 1

            # ---- compute sample (scalar: ComputeModel.execute) -----------
            jit = lane.jit_conc if concurrency > 1 else lane.jit_solo
            if jit is None:
                compute_t = lane.compute_base
            else:
                compute_t = lane.compute_base * float(lane.c_lognormal(jit[0], jit[1]))
            contention = lane.sto_random() < lane.contention_p
            storage_t = 0.0
            if lane.read_on:
                read_base = lane.read_base
                if lane.s_jitter:
                    s_mean = lane.s_mean
                    s_sigma = lane.s_sigma
                    for _ in range(lane.read_requests):
                        duration = read_base * float(lane.sto_lognormal(s_mean, s_sigma))
                        if contention:
                            duration *= lane.contention_slowdown
                        storage_t += duration
                else:
                    for _ in range(lane.read_requests):
                        duration = read_base
                        if contention:
                            duration *= lane.contention_slowdown
                        storage_t += duration
            if lane.write_on:
                write_base = lane.write_base
                if lane.s_jitter:
                    s_mean = lane.s_mean
                    s_sigma = lane.s_sigma
                    for _ in range(lane.write_requests):
                        duration = write_base * float(lane.sto_lognormal(s_mean, s_sigma))
                        if contention:
                            duration *= lane.contention_slowdown
                        storage_t += duration
                else:
                    for _ in range(lane.write_requests):
                        duration = write_base
                        if contention:
                            duration *= lane.contention_slowdown
                        storage_t += duration
            benchmark_time = compute_t + storage_t
            if cold:
                cold_init_s = lane.cold_init_time(lane.profile, lane.memory_mb, lane.package_mb)
            else:
                cold_init_s = 0.0
            memory_used = float(
                max(1.0, lane.peak_memory_mb * max(0.85, lane.c_normal(loc=1.0, scale=0.03)))
            )

            # ---- reliability check (scalar: ReliabilityModel.check) ------
            error = None
            rel_take = lane.rel_take
            if rel_take is not None:
                if not lane.rel_dynamic:
                    if lane.rel_strict:
                        if memory_used > lane.memory_mb:
                            error = "out-of-memory"
                        elif lane.rel_borderline and rel_take() < 0.05:
                            error = "out-of-memory"
                    elif memory_used > lane.rel_lenient_threshold:
                        error = "out-of-memory"
                if error is None and lane.rel_burst and concurrency >= 10:
                    if lane.rel_gcp:
                        probability = 0.6 if (lane.rel_highmem and concurrency >= 50) else 0.01
                    else:
                        probability = 0.02
                    if rel_take() < probability:
                        error = "unavailable"

            # ---- gateway / payload / network (scalar: reserved-invocation)
            via_http = request.trigger is _HTTP
            # Inlined LognormalBlock.take (gateway stream).
            gw = lane.gw_block
            gi = gw._i
            gv = gw._values
            if gi == len(gv):
                gv = gw._values = gw._rng.lognormal(gw._mean, gw._sigma, _BLOCK).tolist()
                gi = 0
            gw._i = gi + 1
            gateway = (lane.http_base if via_http else lane.sdk_base) * gv[gi]
            payload_bytes = request.payload_bytes
            if payload_bytes is not None:
                payload_upload_s = payload_bytes / lane.payload_denom
            elif request.payload:
                payload_upload_s = payload_wire_bytes(request.payload) / lane.payload_denom
            else:
                payload_upload_s = lane.empty_upload
            nb = lane.net_block
            if nb is not None:
                # Inlined ExponentialBlock.take ×2 (request, then response).
                ni = nb._i
                nv = nb._values
                if ni == len(nv):
                    nv = nb._values = nb._rng.exponential(nb._scale, _BLOCK).tolist()
                    ni = 0
                request_network_s = lane.req_base + nv[ni]
                ni += 1
                if ni == len(nv):
                    nv = nb._values = nb._rng.exponential(nb._scale, _BLOCK).tolist()
                    ni = 0
                response_network_s = lane.resp_base + nv[ni]
                nb._i = ni + 1
            else:
                request_network_s = lane.req_base + 0.0
                response_network_s = lane.resp_base + 0.0

            invocation_overhead_s = request_network_s + gateway + payload_upload_s + cold_init_s

            if error is not None:
                benchmark_time_s = 0.0
                provider_time_s = runtime_overhead_s
                success = False
            else:
                benchmark_time_s = benchmark_time
                provider_time_s = benchmark_time_s + runtime_overhead_s
                success = True

            client_time_s = (
                invocation_overhead_s
                + provider_time_s
                + lane.response_download_s
                + response_network_s
            )

            if success and provider_time_s > lane.timeout_s:
                success = False
                error = "timeout"
                provider_time_s = lane.timeout_s
                client_time_s = invocation_overhead_s + provider_time_s + response_network_s

            # ---- billing (scalar: BillingModel) --------------------------
            # Inlined round_up(max(provider_time_s, min_billed), granularity):
            # snap to the nearest multiple when within float tolerance, else
            # round up — op-for-op repro.utils.units.round_up.
            v = provider_time_s if provider_time_s > lane.min_billed else lane.min_billed
            q = v / lane.granularity
            nearest = round(q)
            if isclose(q, nearest, rel_tol=1e-12, abs_tol=1e-12):
                snapped = nearest * lane.granularity
                if snapped >= v - 1e-9:
                    billed_duration_s = snapped
                else:
                    billed_duration_s = ceil(q) * lane.granularity
            else:
                billed_duration_s = ceil(q) * lane.granularity
            if lane.is_vm:
                compute_cost = provider_time_s / 3600.0 * lane.vm_price
            elif lane.bills_avg:
                measured = max(memory_used, 1.0) + lane.mem_overhead
                compute_cost = (
                    billed_duration_s
                    * (round_up(measured, lane.mem_gran) / 1024.0)
                    * lane.gb_price
                )
            else:
                compute_cost = billed_duration_s * lane.mem_gb_const * lane.gb_price
            request_cost, storage_cost, egress_cost = lane.statics[(via_http, success)]
            cost_total = request_cost + compute_cost + storage_cost + egress_cost

            # ---- completion bookkeeping ----------------------------------
            finished_at = now + client_time_s
            # Inlined ContainerPool.finish_serve (serve + touch).  The
            # EVICTED guard is provably dead here: the policy ran before
            # this container was picked or created in this very iteration.
            container.invocations += 1
            if finished_at > container.last_used_at:
                container.last_used_at = finished_at
            container.state = _CS_WARM
            if lane.in_use.get(container_id, 0) < lane.cap:
                entry = lane.index.get(container_id)
                if entry is not None:
                    heappush(
                        lane.heap, (-container.last_used_at, entry[0], container)
                    )
                    lane.entry_lua[container_id] = container.last_used_at
            else:
                lane.entry_lua.pop(container_id, None)
            heappush(completions, (finished_at, seq, lane, container_id))
            seq += 1
            lane.in_flight = concurrency
            if in_flight + 1 > peak:
                peak = in_flight + 1
            if finished_at > last_finish:
                last_finish = finished_at

            # Provider log (materialised after the loop).
            lane.h_pt.append(provider_time_s)
            lane.h_used.append(memory_used)
            lane.h_cost.append(cost_total)
            lane.h_cold.append(cold)
            lane.h_success.append(success)
            lane.h_ts.append(finished_at)
            if history_cap is not None and len(lane.h_pt) > history_cap:
                cut = len(lane.h_pt) - retention
                del lane.h_pt[:cut]
                del lane.h_used[:cut]
                del lane.h_cost[:cut]
                del lane.h_cold[:cut]
                del lane.h_success[:cut]
                del lane.h_ts[:cut]

            request_index = next(position_iter)

            # ---- sink ----------------------------------------------------
            if record_mode:
                a_lane(lane.lane_idx)
                a_reqidx(request_index)
                a_sub(now)
                a_cold(cold)
                a_success(success)
                a_error(error)
                a_bt(benchmark_time_s)
                a_pt(provider_time_s)
                a_ct(client_time_s)
                a_ov(invocation_overhead_s)
                a_ci(cold_init_s)
                a_mu(memory_used)
                a_bd(billed_duration_s)
                a_cc(compute_cost)
                a_http(via_http)
                a_cid(container_id)
                a_fin(finished_at)
            elif fold_mode:
                if accumulator.first_submitted is None:
                    accumulator.first_submitted = now
                lane.n += 1
                if cold:
                    lane.n_cold += 1
                if not success:
                    lane.n_fail += 1
                lane.cost_buf.append(cost_total)
                lane.client_buf.append(client_time_s)
                if len(lane.client_buf) >= _FOLD_BATCH:
                    _flush_lane(lane)
            else:
                emit(
                    InvocationRecord(
                        function_name=lane.fname,
                        benchmark=lane.benchmark,
                        provider=provider,
                        start_type=_COLD if cold else _WARM,
                        success=success,
                        benchmark_time_s=benchmark_time_s,
                        provider_time_s=provider_time_s,
                        client_time_s=client_time_s,
                        invocation_overhead_s=invocation_overhead_s,
                        cold_init_s=cold_init_s,
                        memory_declared_mb=lane.memory_mb,
                        memory_used_mb=memory_used,
                        billed_duration_s=billed_duration_s,
                        cost=CostBreakdown(
                            request_cost=request_cost,
                            compute_cost=compute_cost,
                            storage_cost=storage_cost,
                            egress_cost=egress_cost,
                        ),
                        output_bytes=lane.profile.output_bytes,
                        container_id=container_id,
                        submitted_at=now,
                        started_at=now + invocation_overhead_s,
                        finished_at=finished_at,
                        error=error,
                        outcome=_COMPLETED if success else _FAILED,
                        admitted_at=now,
                        request_index=request_index,
                    )
                )

            processed += 1
            if processed % _PRUNE_INTERVAL == 0:
                # prune() rebinds pool._index; refresh the lane caches of
                # every pruned pool.  The first interval sweeps every state
                # (clearing any evictions that predate this loop, exactly as
                # the scalar engine's full _prune_pools pass would); after
                # that only lanes evicted-from inside this loop can be dirty.
                if swept:
                    for dirty_lane in dirty_lanes:
                        dirty_lane.pool.prune()
                        dirty_lane.index = dirty_lane.pool._index
                else:
                    swept = True
                    for state in states.values():
                        state.pool.prune()
                    for pruned_lane in lanes.values():
                        pruned_lane.index = pruned_lane.pool._index
                dirty_lanes.clear()

        if last_finish > clock.now():
            clock.advance_to(last_finish)
    finally:
        engine.last_peak_in_flight = peak
        while completions:
            done = heappop(completions)
            done[2].release(done[3])
        if fold_mode:
            for lane in lanes.values():
                if lane.client_buf:
                    _flush_lane(lane)
            if lanes:
                accumulator.last_finished = last_finish
        _flush_history(lanes, retention)


def replay_collect(engine, requests, positions=None) -> ColumnarRecordBlock:
    """Record mode: replay into a columnar block (no record objects yet)."""
    block = ColumnarRecordBlock()
    _replay(engine, requests, positions, block, None, None)
    return block


def replay_fold(engine, requests, accumulator: _ReplayAccumulator, positions=None) -> None:
    """Fold mode: replay straight into a streaming accumulator."""
    _replay(engine, requests, positions, None, accumulator, None)


def replay_emit(engine, requests, emit: Callable, positions=None) -> None:
    """Observer mode: build records inline, hand each to ``emit``."""
    _replay(engine, requests, positions, None, None, emit)


def run_columnar(engine, trace, keep_records: bool, observer) -> WorkloadResult:
    """Columnar equivalent of ``WorkloadEngine.run`` for fast-path replays."""
    platform = engine.platform
    if isinstance(trace, (WorkloadTrace, MergedWorkloadTrace)):
        for fname in trace.functions():
            platform.get_function(fname)
    wall_start = time.perf_counter()
    if keep_records:
        if observer is None:
            block = replay_collect(engine, trace)
            records = block.materialize()
            bounds = block.span_bounds()
            span = bounds[1] - bounds[0] if bounds is not None else 0.0
        else:
            records = []
            dispatch = observer.on_invocation
            append = records.append

            def emit(record):
                dispatch(record)
                append(record)

            replay_emit(engine, trace, emit)
            span = 0.0
            if records:
                span = max(r.finished_at for r in records) - min(
                    r.submitted_at for r in records
                )
        wall_clock_s = time.perf_counter() - wall_start
        return WorkloadResult(
            provider=platform.provider,
            records=records,
            simulated_span_s=span,
            wall_clock_s=wall_clock_s,
            peak_in_flight=engine.last_peak_in_flight,
        )
    accumulator = _ReplayAccumulator()
    if observer is None:
        replay_fold(engine, trace, accumulator)
    else:
        dispatch = observer.on_invocation
        fold = accumulator.add

        def emit(record):
            dispatch(record)
            fold(record)

        replay_emit(engine, trace, emit)
    wall_clock_s = time.perf_counter() - wall_start
    return streaming_result(
        platform.provider,
        accumulator,
        wall_clock_s=wall_clock_s,
        peak_in_flight=engine.last_peak_in_flight,
    )
