"""The simulated FaaS platform shared by the AWS / Azure / GCP back-ends.

``SimulatedPlatform`` implements the abstract SeBS platform interface
(:class:`repro.faas.platform.FaaSPlatform`) over a virtual clock.  It manages
deployed functions, their sandbox pools and eviction, executes invocations
through the compute model, bills them, injects reliability failures, and
keeps a provider-side log that ``query_logs`` exposes — everything an
experiment needs to treat it exactly like a real provider.

Invocations can optionally execute the *real* benchmark kernel against the
platform's object store (``execute_kernels=True``); by default only the
calibrated work profile is used, which keeps large experiments (hundreds of
thousands of invocations) fast while preserving the statistical behaviour.

The invocation path is built for trace replay at scale: sandbox acquisition
is an indexed MRU pick plus an O(1) eviction-deadline peek (no pool scans),
sandbox occupancy is a multiset maintained through
:meth:`~repro.simulator.containers.ContainerPool.reserve` /
:meth:`~repro.simulator.containers.ContainerPool.release`, and per-function
invariants (the resolved work profile) are cached instead of re-derived per
request.  See ``docs/architecture.md`` ("Performance internals").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import json

from ..benchmarks.base import Benchmark, BenchmarkContext, InputSize, WorkProfile
from ..benchmarks.registry import BenchmarkRegistry, default_registry
from ..concurrency import build_function_throttle, create_retry_policy
from ..config import (
    DYNAMIC_MEMORY,
    FunctionConfig,
    InvocationOutcome,
    Language,
    Provider,
    SimulationConfig,
    StartType,
    TriggerType,
)
from ..exceptions import (
    ConfigurationError,
    FunctionAlreadyExistsError,
    PlatformError,
)
from ..faas.billing import BillingModel, CostBreakdown, billing_model_for
from ..faas.function import CodePackage, DeployedFunction
from ..columnar.draws import install_draw_blocks
from ..faults.plane import build_fault_state
from ..resilience.breaker import CircuitBreaker
from ..faas.invocation import InvocationRecord, InvocationRequest, payload_wire_bytes
from ..faas.platform import FaaSPlatform, LogQueryType
from ..workload.engine import WorkloadEngine, WorkloadResult
from ..workload.trace import WorkloadTrace
from ..network.latency import NetworkLink
from ..utils.clock import VirtualClock
from ..utils.rng import RandomStreams
from .compute import ComputeModel
from .containers import Container, ContainerPool
from .eviction import EvictionPolicy
from .profiles import ProviderPerformanceProfile, profile_for
from .reliability import ReliabilityModel

#: Size of the UTF-8 encoding of an empty JSON payload (``b"{}"``) — the
#: overwhelmingly common case on trace replays, special-cased to avoid a
#: json.dumps round trip per request.
_EMPTY_PAYLOAD_BYTES = len(json.dumps({}).encode("utf-8"))


@dataclass
class _LogEntry:
    """Provider-side record of one invocation (what query_logs exposes)."""

    function_name: str
    provider_time_s: float
    memory_used_mb: float
    cost_usd: float
    start_type: StartType
    success: bool
    timestamp: float = 0.0


@dataclass
class _FunctionRuntimeState:
    """Per-function simulator state.

    ``history`` is a deque so that :attr:`SimulationConfig.log_retention`
    can bound it; ``profile`` caches the resolved work profile keyed by
    ``profile_key`` so it is computed once per (benchmark, size, language),
    not once per request.

    The stochastic models (``compute``, ``reliability``, ``network`` and
    the spurious/gateway streams) are *per function*, each drawing from a
    stream derived from the platform seed and the function name
    (:func:`repro.utils.rng.derive_seed`).  A function's simulated numbers
    are therefore a pure function of its own request history: co-deployed
    functions never perturb each other's draws, which is what lets sharded
    parallel replay (:mod:`repro.parallel`) reproduce serial replay
    bit-for-bit, one function shard at a time.
    """

    pool: ContainerPool
    compute: ComputeModel
    reliability: ReliabilityModel
    network: NetworkLink
    spurious_stream: Any
    gateway_stream: Any
    language: Language = Language.PYTHON
    input_size: InputSize = InputSize.SMALL
    history: deque[_LogEntry] = field(default_factory=deque)
    profile: WorkProfile | None = None
    profile_key: tuple | None = None
    #: Admission gate (:class:`repro.concurrency.FunctionThrottle`); ``None``
    #: when the overload model is disabled — the engine then admits
    #: unconditionally.
    throttle: Any = None
    #: Per-function retry-jitter stream (``(seed, "retry", fname)``).
    retry_stream: Any = None
    #: This function's materialised fault schedule
    #: (:class:`repro.faults.FunctionFaultState`); ``None`` when the fault
    #: plane is disabled or no scheduled event applies to the function.
    fault_state: Any = None
    #: Client circuit breaker (:class:`repro.resilience.CircuitBreaker`);
    #: ``None`` when resilience is disabled or no breaker is configured.
    breaker: Any = None
    #: Jitter stream of the client's fault-retry policy
    #: (``(seed, "client-retry", fname)``) — separate from the 429 retry
    #: stream so enabling one layer never shifts the other's draws.
    client_retry_stream: Any = None


class SimulatedPlatform(FaaSPlatform):
    """Base class of the simulated commercial providers."""

    provider: Provider = Provider.AWS

    #: Concurrent executions one sandbox can absorb before the scheduler
    #: stops offering it for reuse.  1 for per-invocation containers
    #: (AWS/GCP); Azure's shared function-app instances raise it.
    sandbox_concurrency: int = 1

    def __init__(
        self,
        simulation: SimulationConfig | None = None,
        clock: VirtualClock | None = None,
        registry: BenchmarkRegistry | None = None,
        execute_kernels: bool = False,
    ):
        super().__init__()
        self.simulation = simulation or SimulationConfig()
        self.clock = clock or VirtualClock()
        self.registry = registry or default_registry()
        self.execute_kernels = execute_kernels

        self._streams = RandomStreams(self.simulation.seed).fork(self.provider.value)
        self.performance: ProviderPerformanceProfile = profile_for(self.provider)
        self.billing: BillingModel = billing_model_for(self.provider)
        # The stochastic invocation models (compute, reliability, network
        # jitter) live on the per-function runtime state — see
        # _new_runtime_state.  The platform keeps only this one link, whose
        # clock offset (drawn once per deployment) the per-function links
        # share.
        self.network = NetworkLink(
            self.performance.network,
            self._streams.stream("network"),
            clock_offset_s=float(self._streams.stream("clock-offset").uniform(-2.0, 2.0)),
        )
        self.eviction_policy: EvictionPolicy = self._build_eviction_policy()

        # Hot-path invariants hoisted out of _simulate_invocation: profile
        # scalars (the per-function stream handles live on the runtime
        # state, hoisted the same way).
        self._spurious_probability = self.performance.spurious_cold_start_probability
        self._invocation_profile = self.performance.invocation
        self._runtime_overhead_s = self.performance.runtime_overhead_s
        gateway_sigma = float(self._invocation_profile.warm_jitter_cv)
        self._gateway_sigma = gateway_sigma
        self._gateway_mean = -(gateway_sigma**2) / 2.0

        # Overload model (None = admit everything, the pre-overload paths
        # stay byte-identical).  The retry policy object is stateless and
        # shared; jitter draws come from per-function streams.
        self._overload = self.simulation.overload
        self._retry_policy = None
        if self._overload is not None:
            self._retry_policy = create_retry_policy(
                self._overload.retry_policy,
                max_retries=self._overload.max_retries,
                base_delay_s=self._overload.retry_base_delay_s,
                max_delay_s=self._overload.retry_max_delay_s,
            )

        # Fault plane and client resilience layer (both None = the
        # pre-fault paths stay byte-identical).
        self._faults = self.simulation.faults
        self._resilience = self.simulation.resilience
        self._hedge = None
        self._stale_after_s = None
        self._client_retry_policy = None
        if self._resilience is not None:
            self._hedge = self._resilience.hedge
            self._stale_after_s = self._resilience.stale_after_s
            if self._resilience.retry_policy != "none":
                self._client_retry_policy = create_retry_policy(
                    self._resilience.retry_policy,
                    max_retries=self._resilience.max_retries,
                    base_delay_s=self._resilience.retry_base_delay_s,
                    max_delay_s=self._resilience.retry_max_delay_s,
                )
        #: Whether trace replay must run the controlled (event-buffering)
        #: engine path: any of overload admission, fault injection or
        #: client resilience is active.  The fast path stays byte-identical
        #: to earlier releases whenever this is False.
        self._controlled_replay = (
            self._overload is not None
            or self._faults is not None
            or self._resilience is not None
        )
        #: Columnar hot path (:mod:`repro.columnar`): blockable per-function
        #: streams are wrapped in pre-drawn blocks at state creation, and
        #: trace replay dispatches to the vectorized engine.  Bit-identical
        #: to the scalar path by construction (and by the differential test
        #: tier); hoisted here so the replay dispatch is one attribute load.
        self._columnar = bool(self.simulation.columnar)

        from ..storage.object_store import ObjectStore

        #: Persistent storage attached to this deployment (S3 / Blob / GCS).
        self.object_store = ObjectStore(name=f"{self.provider.value}-storage")
        self._state: dict[str, _FunctionRuntimeState] = {}
        #: Optional :class:`repro.observe.events.ReplayObserver`, attached
        #: for the duration of a replay (container lifecycle hooks).  Every
        #: hook site is ``if self._observer is not None``-guarded and fires
        #: post-decision with already-computed values, so a detached replay
        #: is untouched and an attached one is bit-identical.
        self._observer = None

    # -------------------------------------------------------------- plumbing
    def _build_eviction_policy(self) -> EvictionPolicy:
        raise NotImplementedError

    def _snapshot_init_kwargs(self) -> dict:
        """Extra constructor kwargs a faithful rebuild of this platform needs.

        Subclasses with behaviour-changing constructor parameters beyond
        ``simulation``/``clock`` (e.g. the IaaS storage configuration) must
        report them here, or sharded replay would silently rebuild workers
        with defaults (see :class:`repro.parallel.snapshot.PlatformSnapshot`).
        """
        return {}

    def _build_compute_model(self, fname: str) -> ComputeModel:
        """The per-function compute model (providers may customise storage)."""
        return ComputeModel(self.performance, self.limits, self._streams.stream("compute", fname))

    def _new_runtime_state(self, fname: str, language: Language) -> _FunctionRuntimeState:
        retention = self.simulation.log_retention
        streams = self._streams
        throttle = None
        retry_stream = None
        if self._overload is not None:
            throttle = build_function_throttle(
                fname,
                self._overload,
                self.limits,
                self.provider,
                slot_capacity=self.sandbox_concurrency,
            )
            retry_stream = streams.stream("retry", fname)
        fault_state = None
        if self._faults is not None:
            fault_state = build_fault_state(fname, self._faults, streams.stream("fault", fname))
        breaker = None
        client_retry_stream = None
        if self._resilience is not None:
            if self._resilience.breaker is not None:
                breaker = CircuitBreaker(self._resilience.breaker)
            if self._client_retry_policy is not None:
                client_retry_stream = streams.stream("client-retry", fname)
        state = _FunctionRuntimeState(
            throttle=throttle,
            retry_stream=retry_stream,
            fault_state=fault_state,
            breaker=breaker,
            client_retry_stream=client_retry_stream,
            pool=ContainerPool(fname, slot_capacity=self.sandbox_concurrency),
            compute=self._build_compute_model(fname),
            reliability=ReliabilityModel(
                self.provider,
                streams.stream("reliability", fname),
                enabled=self.simulation.enable_failures,
            ),
            # Per-function jitter stream, but the same constant clock offset:
            # all functions of a deployment live behind one region endpoint.
            network=NetworkLink(
                self.performance.network,
                streams.stream("network", fname),
                clock_offset_s=self.network.clock_offset_s,
            ),
            spurious_stream=streams.stream("spurious", fname),
            gateway_stream=streams.stream("gateway", fname),
            language=language,
            history=deque(maxlen=retention),
        )
        if self._columnar:
            # Wrap the single-distribution streams in pre-drawn blocks once,
            # for the state's lifetime: every consumer (columnar loop,
            # controlled replay, direct invoke) then reads the same buffered
            # sequence, and no draw is ever lost at a replay boundary.
            install_draw_blocks(state, self)
        return state

    def _runtime_state(self, fname: str) -> _FunctionRuntimeState:
        function = self.get_function(fname)
        if fname not in self._state:
            self._state[fname] = self._new_runtime_state(fname, function.package.language)
        return self._state[fname]

    def _benchmark_for(self, function: DeployedFunction) -> Benchmark:
        return self.registry.get(function.benchmark)

    def _profile_for(self, function: DeployedFunction, state: _FunctionRuntimeState) -> WorkProfile:
        key = (function.benchmark, state.input_size, state.language)
        if state.profile_key != key:
            benchmark = self._benchmark_for(function)
            state.profile = benchmark.profile(size=state.input_size, language=state.language)
            state.profile_key = key
        return state.profile

    # --------------------------------------------------------- FaaS interface
    def package_code(self, benchmark_name: str, language: Language) -> CodePackage:
        benchmark = self.registry.get(benchmark_name)
        if language not in benchmark.languages:
            raise PlatformError(
                f"benchmark {benchmark_name!r} has no {language.display_name} implementation"
            )
        profile = benchmark.profile(language=language)
        # Providers with small deployment limits (GCP's 100 MB zip) require the
        # cloud-side build system, which strips the package further; clamp the
        # built size to the provider limit as the original toolkit's
        # provider-specific build steps do.
        size_mb = min(profile.code_package_mb, self.limits.deployment_limit_mb)
        package = CodePackage(
            benchmark=benchmark_name,
            language=language,
            size_mb=size_mb,
            dependencies=benchmark.dependencies,
            docker_image=f"sebs.build.{self.provider.value}.{language.value}",
        )
        self.limits.validate_package(package.size_mb)
        return package

    def create_function(self, fname: str, code: CodePackage, config: FunctionConfig) -> DeployedFunction:
        if fname in self._functions:
            raise FunctionAlreadyExistsError(fname)
        self.limits.validate_memory(config.memory_mb)
        self.limits.validate_package(code.size_mb)
        if config.timeout_s > self.limits.time_limit_s:
            raise PlatformError(
                f"timeout of {config.timeout_s:.0f}s exceeds the platform limit of {self.limits.time_limit_s:.0f}s"
            )
        function = DeployedFunction(
            name=fname,
            benchmark=code.benchmark,
            package=code,
            config=config,
            platform=self.provider.value,
            created_at=self.clock.now(),
            updated_at=self.clock.now(),
        )
        self._functions[fname] = function
        self._state[fname] = self._new_runtime_state(fname, code.language)
        return function

    def update_function(
        self,
        fname: str,
        code: CodePackage | None = None,
        config: FunctionConfig | None = None,
    ) -> DeployedFunction:
        function = self.get_function(fname)
        if code is not None:
            self.limits.validate_package(code.size_mb)
            function.package = code
        if config is not None:
            self.limits.validate_memory(config.memory_mb)
            function.config = config
        function.bump_version(self.clock.now())
        # Publishing a new version / updating the configuration invalidates
        # all warm sandboxes (this is how SeBS enforces cold starts).
        state = self._runtime_state(fname)
        state.pool.evict_all()
        return function

    def query_logs(self, fname: str, query: LogQueryType) -> list[float]:
        state = self._runtime_state(fname)
        if query is LogQueryType.TIME:
            return [entry.provider_time_s for entry in state.history]
        if query is LogQueryType.MEMORY:
            return [entry.memory_used_mb for entry in state.history]
        if query is LogQueryType.COST:
            return [entry.cost_usd for entry in state.history]
        raise PlatformError(f"unsupported log query {query!r}")

    # ------------------------------------------------------------ invocation
    def set_input_size(self, fname: str, size: InputSize) -> None:
        """Select the input-size preset the simulator assumes for ``fname``."""
        self._runtime_state(fname).input_size = size

    def warm_container_count(self, fname: str) -> int:
        """Number of currently warm sandboxes (after applying eviction)."""
        state = self._runtime_state(fname)
        self.eviction_policy.apply(state.pool, self.clock.now())
        function = self.get_function(fname)
        return state.pool.warm_count(version=function.version)

    def invoke(
        self,
        fname: str,
        payload: Mapping[str, Any],
        trigger: TriggerType = TriggerType.HTTP,
        payload_bytes: int | None = None,
    ) -> InvocationRecord:
        """Sequential invocation: the virtual clock advances by the client time."""
        record = self._simulate_invocation(
            fname, payload, trigger, payload_bytes, concurrency=1, start_at=self.clock.now()
        )
        # A sequential caller waits for the response, so the sandbox is free
        # again by the time anything else happens.
        self._state[fname].pool.release(record.container_id)
        self.clock.advance(record.client_time_s)
        return record

    def invoke_batch(
        self,
        fname: str,
        count: int,
        payload: Mapping[str, Any] | None = None,
        trigger: TriggerType = TriggerType.HTTP,
        payload_bytes: int | None = None,
    ) -> list[InvocationRecord]:
        """Concurrent burst of ``count`` invocations starting at the same time.

        All invocations share a single submission instant (the current
        virtual time); afterwards the clock advances by the *longest* client
        time in the batch, mirroring a driver that waits for the whole burst.

        **Sandbox reservation rule.**  Because the burst is concurrent, each
        invocation occupies its sandbox for the entire batch: the burst is
        simulated in submission order and every invocation holds a
        reservation (one slot of the pool's occupancy multiset) that
        :meth:`_acquire_container` excludes from warm reuse.  A burst of
        ``count`` requests against ``w`` warm sandboxes therefore produces
        exactly ``max(0, count - w)`` cold starts on AWS and GCP — the
        mechanism behind the paper's eviction experiment (Section 6.5),
        which uses bursts to materialise ``D_init`` distinct containers.

        **Azure exception.**  Azure Functions hosts executions in *function
        apps*: one app instance serves several concurrent executions on
        worker processes/threads, so
        :class:`~repro.simulator.providers.AzureFunctionsSimulator` raises
        ``sandbox_concurrency`` — a sandbox only becomes unavailable once it
        already hosts that many members of the burst (Section 3.3 of the
        paper; see ``docs/architecture.md`` for the full scheduling
        semantics).

        For arrivals spread over time (rather than one instant) use
        :meth:`run_workload` / :meth:`invoke_stream`, where occupancy is
        tracked per-invocation on the event queue instead of per-batch.

        Raises :class:`~repro.exceptions.FunctionNotFoundError` if ``fname``
        is not deployed, and :class:`~repro.exceptions.PlatformError` for a
        non-positive ``count``.
        """
        self.get_function(fname)  # unknown functions fail before batch validation
        if count <= 0:
            raise PlatformError("batch size must be positive")
        start_at = self.clock.now()
        records: list[InvocationRecord] = []
        pool = self._runtime_state(fname).pool
        try:
            for _ in range(count):
                # Each invocation's reservation (taken inside
                # _simulate_invocation) stays held until the whole batch is
                # done, so later members of the burst cannot reuse the
                # sandbox.
                records.append(
                    self._simulate_invocation(
                        fname,
                        payload or {},
                        trigger,
                        payload_bytes,
                        concurrency=count,
                        start_at=start_at,
                    )
                )
        finally:
            for record in records:
                pool.release(record.container_id)
        self.clock.advance(max(record.client_time_s for record in records))
        return records

    # ------------------------------------------------------ workload replay
    def invoke_stream(self, requests: Iterable[InvocationRequest]) -> Iterator[InvocationRecord]:
        """Replay a time-sorted request stream through the event-queue engine.

        Yields one :class:`~repro.faas.invocation.InvocationRecord` per
        request, in arrival order.  Unlike :meth:`invoke_batch`, sandboxes
        are occupied only between their invocation's start and finish times,
        so warm reuse and concurrency emerge from the overlap of requests.
        See :class:`~repro.workload.engine.WorkloadEngine`.
        """
        return WorkloadEngine(self).stream(requests)

    def run_workload(
        self,
        trace: WorkloadTrace | Iterable[InvocationRequest],
        keep_records: bool = True,
        workers: int | None = None,
        backend: str | None = None,
        trace_seed: int | None = None,
        supervision=None,
        checkpoint_dir=None,
        resume: bool = False,
        observer=None,
        timeseries=None,
        profile: bool = False,
    ) -> WorkloadResult:
        """Replay a :class:`~repro.workload.trace.WorkloadTrace` and aggregate.

        Returns a :class:`~repro.workload.engine.WorkloadResult` with the
        per-invocation records, per-function latency/cold-start/cost
        summaries and simulator-throughput measurements.  Deterministic:
        the same platform seed and trace produce identical results.

        With ``keep_records=False`` the replay runs in streaming-aggregation
        mode: individual records are folded into per-function accumulators
        (counts, costs, reservoir-sampled latency quantiles) as they are produced, so
        memory stays O(functions) instead of O(invocations) — the mode for
        million-invocation traces.  ``trace`` may then also be a lazy
        iterable of requests rather than a materialised trace.

        ``workers`` switches to **sharded replay** (:mod:`repro.parallel`):
        the trace is partitioned into per-function shards, each shard
        replays on its own rebuilt copy of this (freshly deployed) platform,
        and the shard results are merged deterministically — bit-identical
        records (and exactly equal counts/costs/min/max) to the serial
        replay, by the per-function isolation the simulator maintains.
        ``workers=1`` (or ``backend="sequential"``) runs the shards
        in-process — the reference backend; ``workers>1`` uses
        ``multiprocessing``.  Unlike a serial replay, the sharded path does
        not mutate this platform instance.  Sharding a trace (or lazy
        iterable) materialises every request in the parent to partition it;
        for million-invocation sharded replays pass a
        :class:`~repro.workload.scenario.Scenario` instead (streaming mode
        only), in which case each worker synthesizes its own shard's
        arrivals and parent memory stays O(functions).

        ``supervision`` (a :class:`~repro.parallel.SupervisorConfig`) adds
        the shard recovery ladder — heartbeat timeouts, bounded retries,
        pool rebuild, quarantine — and ``checkpoint_dir``/``resume``
        persist completed shard outcomes so an interrupted replay re-runs
        only the missing shards; both preserve bit-identical results.
        They require ``workers``.

        **Observability** (all pure observers — attached or not, the
        replay's records and summaries are bit-identical):

        * ``observer`` — a :class:`repro.observe.events.ReplayObserver`
          receiving the lifecycle event stream (serial replay only);
        * ``timeseries`` — a :class:`repro.observe.timeseries.TimeSeriesSpec`
          (or a plain window width in seconds) building windowed
          simulated-time metrics, landing on ``result.timeseries``; works
          serial *and* sharded (per-shard builders merge exactly);
        * ``profile=True`` — host wall-clock phase profiling on
          ``result.profile``.

        Parameters
        ----------
        trace:
            A :class:`~repro.workload.trace.WorkloadTrace`, a lazy iterable
            of :class:`~repro.workload.trace.InvocationRequest` (streaming
            mode only), or — sharded streaming mode only — a
            :class:`~repro.workload.scenario.Scenario` /
            population-recipe scenario whose shards synthesize their own
            arrivals.
        keep_records:
            ``True`` (default) keeps every invocation record;
            ``False`` streams into O(functions)-memory accumulators.
        workers:
            ``None`` (default) replays serially in-process; ``N >= 1``
            shards the replay across ``N`` processes (``1`` = sequential
            reference backend).
        backend:
            Shard-execution backend override: ``"sequential"`` or
            ``"process"`` (default ``None`` picks by ``workers``).
        trace_seed:
            Seed for shard-local arrival synthesis when ``trace`` is a
            scenario (default ``None`` uses the platform seed).
        supervision:
            :class:`~repro.parallel.SupervisorConfig` enabling the shard
            recovery ladder (default ``None``: a shard failure aborts).
        checkpoint_dir:
            Directory persisting completed shard outcomes for
            ``resume=True`` (default ``None``: no checkpointing).
        resume:
            Resume from ``checkpoint_dir``, re-running only missing
            shards (default ``False``).
        observer:
            :class:`~repro.observe.events.ReplayObserver` receiving
            lifecycle events; serial replay only (default ``None``).
        timeseries:
            :class:`~repro.observe.timeseries.TimeSeriesSpec` or a window
            width in seconds of simulated time (default ``None``).
        profile:
            Collect host wall-clock phase timings (default ``False``).
        """
        if workers is not None:
            from ..parallel import run_workload_sharded

            if observer is not None:
                raise ConfigurationError(
                    "event observers attach to serial replay only; sharded "
                    "replay supports timeseries= (exact merge) and profile="
                )
            return run_workload_sharded(
                self,
                trace,
                keep_records=keep_records,
                workers=workers,
                backend=backend,
                trace_seed=trace_seed,
                supervision=supervision,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                timeseries=timeseries,
                profile=profile,
            )
        if supervision is not None or checkpoint_dir is not None or resume:
            raise ConfigurationError(
                "supervision/checkpoint_dir/resume apply to sharded replay only: "
                "pass workers= as well"
            )
        attach, builder, profiler = self._observation(observer, timeseries, profile)
        engine = WorkloadEngine(self)
        if attach is not None:
            engine.observer = attach
            self._observer = attach
            self._announce_fault_windows(attach, trace)
        try:
            if profiler is not None:
                with profiler.phase("replay"):
                    result = engine.run(trace, keep_records=keep_records)
            else:
                result = engine.run(trace, keep_records=keep_records)
        finally:
            self._observer = None
        result.timeseries = builder
        if profiler is not None:
            result.profile = profiler.build()
        return result

    def _observation(self, observer, timeseries, profile: bool):
        """Resolve the observability kwargs shared by the replay entry points.

        Returns ``(attached observer or None, time-series builder or None,
        profile builder or None)``; the attached observer is the composite
        of the caller's observer and the time-series builder.
        """
        builder = None
        attach = observer
        if timeseries is not None:
            from ..observe.timeseries import TimeSeriesSpec

            spec = (
                timeseries
                if isinstance(timeseries, TimeSeriesSpec)
                else TimeSeriesSpec(window_s=float(timeseries))
            )
            builder = spec.build()
            if attach is None:
                attach = builder
            else:
                from ..observe.events import CompositeObserver

                attach = CompositeObserver([attach, builder])
        profiler = None
        if profile:
            from ..observe.profile import ProfileBuilder

            profiler = ProfileBuilder()
        return attach, builder, profiler

    def _announce_fault_windows(self, observer, trace) -> None:
        """Emit every scheduled fault window once, at replay start.

        Reads the functions' already-materialised schedules — no stream is
        touched, and runtime states are created exactly as a first dispatch
        would create them (each function's streams derive from its own
        name, so early creation shifts nothing).
        """
        if self._faults is None:
            return
        functions = None
        if hasattr(trace, "functions"):
            try:
                functions = sorted(trace.functions())
            except TypeError:
                functions = None
        if functions is None:
            functions = sorted(self._state)
        for fname in functions:
            fault_state = self._runtime_state(fname).fault_state
            if fault_state is None:
                continue
            for kind, start_s, end_s, detail in fault_state.windows():
                observer.on_fault_window(fname, kind, start_s, end_s, detail)

    def run_workflows(
        self,
        arrivals,
        keep_records: bool = True,
        record_sink=None,
        workers: int | None = None,
        backend: str | None = None,
        supervision=None,
        checkpoint_dir=None,
        resume: bool = False,
        observer=None,
        timeseries=None,
        profile: bool = False,
    ):
        """Replay a time-sorted stream of workflow arrivals and aggregate.

        Each :class:`~repro.workflows.spec.WorkflowArrival` starts one
        end-to-end execution of its DAG: stage tasks become event-queue
        entries, downstream stages are scheduled at their upstream's
        completion time plus the trigger-edge propagation delay, and every
        execution yields a :class:`~repro.workflows.engine.WorkflowResult`
        with end-to-end latency, critical-path decomposition and aggregated
        billing.  ``keep_records=False`` streams executions into
        per-workflow accumulators (O(workflows + in-flight) memory);
        ``record_sink`` optionally observes every constituent invocation
        record.  See :class:`~repro.workflows.engine.WorkflowEngine`.

        ``workers`` switches to sharded replay: arrivals are grouped into
        function-disjoint components (workflow specs sharing a deployed
        function always land in the same shard) and replayed on rebuilt
        platform copies, preserving each execution's global index so the
        hash-seeded trigger-edge delays are identical to serial replay.
        ``record_sink`` is unsupported in that mode.
        ``supervision``/``checkpoint_dir``/``resume`` behave exactly as in
        :meth:`run_workload` (sharded replay only), and so do the
        observability kwargs ``observer``/``timeseries``/``profile``
        (workflow stage spans carry their execution's causal index).

        Parameters
        ----------
        arrivals:
            Time-sorted :class:`~repro.workflows.spec.WorkflowArrival`
            stream, e.g. from :meth:`Scenario.build_workflow_arrivals`.
        keep_records:
            ``True`` (default) keeps every execution's record;
            ``False`` streams into O(workflows + in-flight) accumulators.
        record_sink:
            Callable observing every constituent invocation record
            (default ``None``; serial replay only).
        workers, backend, supervision, checkpoint_dir, resume:
            Sharded-replay knobs, identical to :meth:`run_workload`
            (defaults: serial, unsupervised, no checkpointing).
        observer, timeseries, profile:
            Observability knobs, identical to :meth:`run_workload`
            (defaults: all off).
        """
        from ..workflows.engine import WorkflowEngine

        if workers is not None:
            from ..parallel import run_workflows_sharded

            if record_sink is not None:
                raise PlatformError("record_sink is not supported with sharded replay")
            if observer is not None:
                raise ConfigurationError(
                    "event observers attach to serial replay only; sharded "
                    "replay supports timeseries= (exact merge) and profile="
                )
            return run_workflows_sharded(
                self,
                arrivals,
                keep_records=keep_records,
                workers=workers,
                backend=backend,
                supervision=supervision,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                timeseries=timeseries,
                profile=profile,
            )
        if supervision is not None or checkpoint_dir is not None or resume:
            raise ConfigurationError(
                "supervision/checkpoint_dir/resume apply to sharded replay only: "
                "pass workers= as well"
            )
        attach, builder, profiler = self._observation(observer, timeseries, profile)
        engine = WorkflowEngine(self)
        if attach is not None:
            self._observer = attach
            self._announce_fault_windows(attach, trace=None)
        try:
            if profiler is not None:
                with profiler.phase("replay"):
                    result = engine.run(
                        arrivals,
                        keep_records=keep_records,
                        record_sink=record_sink,
                        observer=attach,
                    )
            else:
                result = engine.run(
                    arrivals,
                    keep_records=keep_records,
                    record_sink=record_sink,
                    observer=attach,
                )
        finally:
            self._observer = None
        result.timeseries = builder
        if profiler is not None:
            result.profile = profiler.build()
        return result

    # ------------------------------------------------------------- internals
    def _release_container(self, fname: str, container_id: str) -> None:
        """Return one occupancy slot of ``container_id`` (stream completions)."""
        state = self._state.get(fname)
        if state is not None:
            state.pool.release(container_id)

    def _acquire_container(
        self, function: DeployedFunction, state: _FunctionRuntimeState, start_at: float
    ) -> tuple[Container, StartType]:
        evicted = self.eviction_policy.apply(state.pool, start_at)
        if evicted and self._observer is not None:
            self._observer.on_container_evict(function.name, evicted, start_at, "policy")
        spurious = (
            self._spurious_probability > 0
            and state.spurious_stream.random() < self._spurious_probability
        )
        if not spurious:
            # Reuse the most recently used warm sandbox with a free slot
            # (mirrors providers preferring "hot" instances).  O(log n)
            # indexed pick instead of a pool scan.
            container = state.pool.pick_mru(function.version)
            if container is not None:
                return container, StartType.WARM
        container = Container(
            function_name=function.name,
            function_version=function.version,
            memory_mb=function.config.memory_mb,
            created_at=start_at,
            container_id=state.pool.next_container_id(),
        )
        state.pool.add(container)
        if self._observer is not None:
            self._observer.on_container_create(function.name, container.container_id, start_at)
        return container, StartType.COLD

    # ------------------------------------------------- overload / admission
    def _throttle_response_s(self, trigger: TriggerType) -> float:
        """Latency of a 429 response: the gateway turns it around without a
        sandbox, so only the constant gateway overhead applies.

        Deliberately draw-free: throttle traffic must not shift the
        per-function jitter streams, so an admitted execution's numbers are
        identical whether or not earlier requests got throttled.
        """
        profile = self._invocation_profile
        return profile.http_gateway_s if trigger is TriggerType.HTTP else profile.sdk_overhead_s

    def _overload_record(
        self,
        fname: str,
        *,
        outcome: InvocationOutcome,
        submitted_at: float,
        finished_at: float,
        attempts: int,
        admission_delay_s: float,
        request_index: int,
        error: str,
    ) -> InvocationRecord:
        """Record of a request that never executed.

        Shared by every rejected-request path — admission throttles/drops,
        fault-plane outage responses (``FAULTED``) and client breaker
        rejections (``SHORT_CIRCUITED``).  No sandbox, no billing:
        providers do not charge requests that never reached a sandbox, and
        a breaker rejection never even left the client.
        """
        function = self.get_function(fname)
        client_time_s = finished_at - submitted_at
        return InvocationRecord(
            function_name=fname,
            benchmark=function.benchmark,
            provider=self.provider,
            start_type=StartType.NONE,
            success=False,
            benchmark_time_s=0.0,
            provider_time_s=0.0,
            client_time_s=client_time_s,
            invocation_overhead_s=client_time_s,
            cold_init_s=0.0,
            memory_declared_mb=function.config.memory_mb,
            memory_used_mb=0.0,
            billed_duration_s=0.0,
            cost=CostBreakdown(request_cost=0.0, compute_cost=0.0),
            output_bytes=0,
            container_id="",
            submitted_at=submitted_at,
            started_at=finished_at,
            finished_at=finished_at,
            error=error,
            outcome=outcome,
            attempts=attempts,
            admitted_at=finished_at,
            admission_delay_s=admission_delay_s,
            request_index=request_index,
        )

    def _execute_kernel(self, function: DeployedFunction, payload: Mapping[str, Any]) -> tuple[dict, int]:
        """Optionally run the real kernel; returns (output, output_bytes)."""
        benchmark = self._benchmark_for(function)
        context = BenchmarkContext(storage=self.object_store, rng=self._streams.stream("kernel"))
        result = benchmark.run(payload, context)
        encoded = json.dumps(result, default=str).encode("utf-8")
        return result, len(encoded)

    def _simulate_invocation(
        self,
        fname: str,
        payload: Mapping[str, Any],
        trigger: TriggerType,
        payload_bytes: int | None,
        concurrency: int,
        start_at: float,
        request_index: int = -1,
        fault_scale: tuple[float, float] | None = None,
    ) -> InvocationRecord:
        """Simulate one invocation; leaves the sandbox *reserved*.

        The caller owns the reservation and must release it once the
        invocation no longer occupies its sandbox (immediately for
        sequential calls, at the end of the burst for batches, at the
        completion event for stream replay).

        ``fault_scale`` is the active latency-storm multiplier pair
        ``(compute, network)`` from the fault plane (:mod:`repro.faults`),
        applied to the sampled durations *after* all draws — ``None`` (no
        storm) leaves every number byte-identical to a storm-free replay.
        """
        function = self.get_function(fname)
        state = self._state.get(fname)
        if state is None:
            state = self._runtime_state(fname)
        profile = self._profile_for(function, state)
        memory_mb = function.config.memory_mb
        container, start_type = self._acquire_container(function, state, start_at)
        state.pool.reserve(container.container_id)
        try:
            return self._simulate_reserved_invocation(
                fname, function, state, profile, container, start_type,
                payload, trigger, payload_bytes, concurrency, start_at, memory_mb,
                request_index, fault_scale,
            )
        except BaseException:
            # An exception mid-invocation (e.g. a raising kernel) must not
            # leave the sandbox reserved forever: the caller never sees a
            # record to release.  release() re-indexes a warm sandbox whose
            # MRU entry was already consumed by the pick.
            state.pool.release(container.container_id)
            raise

    def _simulate_reserved_invocation(
        self,
        fname: str,
        function: DeployedFunction,
        state: _FunctionRuntimeState,
        profile: WorkProfile,
        container: Container,
        start_type: StartType,
        payload: Mapping[str, Any],
        trigger: TriggerType,
        payload_bytes: int | None,
        concurrency: int,
        start_at: float,
        memory_mb: int,
        request_index: int = -1,
        fault_scale: tuple[float, float] | None = None,
    ) -> InvocationRecord:
        sample = state.compute.execute(
            profile,
            memory_mb=memory_mb,
            cold=start_type is StartType.COLD,
            code_package_mb=function.package.size_mb,
            concurrent=concurrency > 1,
        )
        failure = state.reliability.check(
            profile,
            memory_mb=memory_mb,
            memory_used_mb=sample.memory_used_mb,
            concurrency=concurrency,
        )

        output: dict = {}
        output_bytes = profile.output_bytes
        if self.execute_kernels and payload and not failure.failed:
            output, output_bytes = self._execute_kernel(function, payload)

        if payload_bytes is not None:
            request_bytes = payload_bytes
        elif payload:
            # Measure the wire size of the request: UTF-8 encoded bytes, not
            # unicode characters — matching _execute_kernel's output
            # accounting.
            request_bytes = payload_wire_bytes(payload)
        else:
            request_bytes = _EMPTY_PAYLOAD_BYTES
        overhead_profile = self._invocation_profile
        via_http = trigger is TriggerType.HTTP
        gateway = overhead_profile.http_gateway_s if via_http else overhead_profile.sdk_overhead_s
        gateway *= float(
            state.gateway_stream.lognormal(mean=self._gateway_mean, sigma=self._gateway_sigma)
        )
        payload_upload_s = request_bytes / (overhead_profile.payload_bandwidth_mbps * 1024 * 1024)
        response_download_s = output_bytes / (overhead_profile.response_bandwidth_mbps * 1024 * 1024)
        request_network_s = state.network.one_way_delay("request")
        response_network_s = state.network.one_way_delay("response")

        sampled_benchmark_time_s = sample.benchmark_time_s
        cold_init_s = sample.cold_init_s
        if fault_scale is not None:
            # An active latency storm scales the already-drawn durations —
            # compute work and sandbox init by the compute multiplier, every
            # wire segment by the network multiplier.  Draw counts never
            # change, so the streams stay aligned with a calm replay.
            compute_scale, network_scale = fault_scale
            sampled_benchmark_time_s *= compute_scale
            cold_init_s *= compute_scale
            gateway *= network_scale
            payload_upload_s *= network_scale
            response_download_s *= network_scale
            request_network_s *= network_scale
            response_network_s *= network_scale

        # Overhead between submitting the request and the function starting.
        invocation_overhead_s = request_network_s + gateway + payload_upload_s + cold_init_s

        if failure.failed:
            benchmark_time_s = 0.0
            provider_time_s = self._runtime_overhead_s
            success = False
        else:
            benchmark_time_s = sampled_benchmark_time_s
            provider_time_s = benchmark_time_s + self._runtime_overhead_s
            success = True

        client_time_s = invocation_overhead_s + provider_time_s + response_download_s + response_network_s

        # Time-limit enforcement.
        if success and provider_time_s > function.config.timeout_s:
            success = False
            failure_reason = "timeout"
            provider_time_s = function.config.timeout_s
            client_time_s = invocation_overhead_s + provider_time_s + response_network_s
        else:
            failure_reason = failure.reason if failure.failed else None

        billing = self.billing
        billed_duration_s = billing.billed_duration(provider_time_s)
        cost = billing.invocation_cost(
            duration_s=provider_time_s,
            declared_memory_mb=memory_mb,
            used_memory_mb=sample.memory_used_mb,
            output_bytes=output_bytes if success else 0,
            storage_requests=profile.storage_read_requests + profile.storage_write_requests,
            via_http_api=via_http,
            billed_duration_s=billed_duration_s,
        )

        started_at = start_at + invocation_overhead_s
        finished_at = start_at + client_time_s
        container.serve(finished_at)
        state.pool.touch(container)

        state.history.append(
            _LogEntry(
                function_name=fname,
                provider_time_s=provider_time_s,
                memory_used_mb=sample.memory_used_mb,
                cost_usd=cost.total,
                start_type=start_type,
                success=success,
                timestamp=finished_at,
            )
        )

        return InvocationRecord(
            function_name=fname,
            benchmark=function.benchmark,
            provider=self.provider,
            start_type=start_type,
            success=success,
            benchmark_time_s=benchmark_time_s,
            provider_time_s=provider_time_s,
            client_time_s=client_time_s,
            invocation_overhead_s=invocation_overhead_s,
            cold_init_s=cold_init_s,
            memory_declared_mb=memory_mb,
            memory_used_mb=sample.memory_used_mb,
            billed_duration_s=billed_duration_s,
            cost=cost,
            output_bytes=output_bytes,
            container_id=container.container_id,
            submitted_at=start_at,
            started_at=started_at,
            finished_at=finished_at,
            error=failure_reason,
            output=output,
            outcome=InvocationOutcome.COMPLETED if success else InvocationOutcome.FAILED,
            admitted_at=start_at,
            request_index=request_index,
        )
