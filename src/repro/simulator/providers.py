"""Concrete simulated providers: AWS Lambda, Azure Functions, Google Cloud Functions.

Each subclass selects the eviction policy and provider-specific behaviour on
top of :class:`~repro.simulator.platform_sim.SimulatedPlatform`:

* **AWS Lambda** — deterministic half-life eviction (every 380 s half of the
  warm containers disappear); warm invocations always hit warm containers.
* **Google Cloud Functions** — idle-timeout eviction plus spurious cold
  starts (the scheduler sometimes routes sequential calls to new containers).
* **Azure Functions** — function apps: one *app instance* hosts many function
  executions in the same language worker, so a burst only cold-starts the
  first few invocations and dynamic memory allocation replaces the static
  memory sweep.
"""

from __future__ import annotations

from ..benchmarks.registry import BenchmarkRegistry
from ..config import Provider, SimulationConfig
from ..utils.clock import VirtualClock
from .eviction import AWS_EVICTION_PERIOD_S, EvictionPolicy, HalfLifeEvictionPolicy, IdleTimeoutEvictionPolicy
from .platform_sim import SimulatedPlatform


class AWSLambdaSimulator(SimulatedPlatform):
    """Simulated AWS Lambda deployment."""

    provider = Provider.AWS

    def _build_eviction_policy(self) -> EvictionPolicy:
        return HalfLifeEvictionPolicy(period_s=AWS_EVICTION_PERIOD_S)


class GoogleCloudFunctionsSimulator(SimulatedPlatform):
    """Simulated Google Cloud Functions deployment."""

    provider = Provider.GCP

    def _build_eviction_policy(self) -> EvictionPolicy:
        # Per-function timeout streams: a function's eviction jitter depends
        # only on its own sandbox history, never on co-deployed functions
        # (required for sharded replay, see repro.parallel).
        return IdleTimeoutEvictionPolicy(
            mean_idle_timeout_s=900.0,
            jitter_cv=0.5,
            rng_factory=lambda fname: self._streams.stream("eviction", fname),
        )


class AzureFunctionsSimulator(SimulatedPlatform):
    """Simulated Azure Functions deployment (Linux consumption plan).

    Azure bundles functions into *function apps*: a single app instance uses
    processes and threads to serve multiple invocations, so bursts experience
    far fewer cold starts (Section 3.3) at the cost of interference between
    co-located invocations (the performance deviations of Section 6.2 Q3).
    The simulator models this by letting each warm "app instance" absorb
    ``app_instance_concurrency`` concurrent invocations before a new instance
    is started.
    """

    provider = Provider.AZURE

    #: Concurrent invocations a single function-app instance can absorb.
    #: This is the pool's per-sandbox slot capacity: the scheduler keeps
    #: reusing a warm app instance until it hosts this many in-flight
    #: executions, then starts a new one — no provider-specific scan needed.
    sandbox_concurrency = 8

    @property
    def app_instance_concurrency(self) -> int:
        """Backwards-compatible alias for :attr:`sandbox_concurrency`."""
        return self.sandbox_concurrency

    def _build_eviction_policy(self) -> EvictionPolicy:
        return IdleTimeoutEvictionPolicy(
            mean_idle_timeout_s=1500.0,
            jitter_cv=0.4,
            rng_factory=lambda fname: self._streams.stream("eviction", fname),
        )


def create_platform(
    provider: Provider,
    simulation: SimulationConfig | None = None,
    clock: VirtualClock | None = None,
    registry: BenchmarkRegistry | None = None,
    execute_kernels: bool = False,
) -> SimulatedPlatform:
    """Factory returning the simulated platform for ``provider``."""
    platforms = {
        Provider.AWS: AWSLambdaSimulator,
        Provider.GCP: GoogleCloudFunctionsSimulator,
        Provider.AZURE: AzureFunctionsSimulator,
    }
    if provider not in platforms:
        from .iaas import IaaSPlatform

        if provider is Provider.IAAS:
            return IaaSPlatform(simulation=simulation, clock=clock, registry=registry, execute_kernels=execute_kernels)
        raise ValueError(f"no simulated platform available for {provider!r}")
    cls = platforms[provider]
    return cls(simulation=simulation, clock=clock, registry=registry, execute_kernels=execute_kernels)
