"""Failure injection reproducing provider reliability issues.

Section 6.2 Q3 documents two classes of failures, both on Google Cloud
Functions:

* **Out-of-memory kills** — ``image-recognition`` on 512 MB and
  ``compression`` on 256 MB failed on 4% and 5.2% of invocations because the
  observed peak memory occasionally crosses the allocation, while AWS's more
  lenient accounting never killed the same workloads;
* **Availability errors** — concurrent bursts occasionally fail with service
  errors on Azure and GCP; the extreme case is ``image-recognition`` at
  4096 MB where up to 80% of a 50-invocation batch failed, indicating a lack
  of free high-memory resources.

The model keeps these behaviours behind a single object so the platform
implementation stays readable and the failure rates are easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..benchmarks.base import WorkProfile
from ..config import DYNAMIC_MEMORY, Provider


@dataclass(frozen=True)
class FailureDecision:
    """Outcome of the reliability check for one invocation."""

    failed: bool
    reason: str = ""
    message: str = ""


class ReliabilityModel:
    """Decides whether an invocation fails and why."""

    #: Providers whose memory accounting is strict enough to kill borderline
    #: allocations (the paper only observed this on GCP).
    _STRICT_MEMORY_PROVIDERS = (Provider.GCP,)
    #: Providers showing availability errors under concurrent bursts.
    _BURST_FAILURE_PROVIDERS = (Provider.GCP, Provider.AZURE)

    def __init__(self, provider: Provider, rng: np.random.Generator, enabled: bool = True):
        self._provider = provider
        self._rng = rng
        self._enabled = enabled

    def check(
        self,
        profile: WorkProfile,
        memory_mb: int,
        memory_used_mb: float,
        concurrency: int = 1,
    ) -> FailureDecision:
        """Evaluate failure conditions for one invocation."""
        if not self._enabled:
            return FailureDecision(failed=False)
        decision = self._check_memory(profile, memory_mb, memory_used_mb)
        if decision.failed:
            return decision
        return self._check_availability(memory_mb, concurrency)

    # ------------------------------------------------------------ components
    def _check_memory(self, profile: WorkProfile, memory_mb: int, memory_used_mb: float) -> FailureDecision:
        if memory_mb == DYNAMIC_MEMORY:
            return FailureDecision(failed=False)
        if self._provider not in self._STRICT_MEMORY_PROVIDERS:
            # AWS/Azure tolerate peaks around the declared allocation; only an
            # egregious overshoot (>1.5x) kills the invocation.
            if memory_used_mb > memory_mb * 1.5:
                return FailureDecision(True, "out-of-memory", f"used {memory_used_mb:.0f} MB of {memory_mb} MB")
            return FailureDecision(failed=False)
        # Strict accounting: exceeding the allocation kills the function, and
        # allocations within ~10% of the typical peak fail sporadically
        # because per-invocation peaks fluctuate (the 4-5% rates in the paper).
        if memory_used_mb > memory_mb:
            return FailureDecision(True, "out-of-memory", f"used {memory_used_mb:.0f} MB of {memory_mb} MB")
        if memory_mb < profile.peak_memory_mb * 1.10 and self._rng.random() < 0.05:
            return FailureDecision(True, "out-of-memory", "sporadic memory-limit violation")
        return FailureDecision(failed=False)

    def _check_availability(self, memory_mb: int, concurrency: int) -> FailureDecision:
        if self._provider not in self._BURST_FAILURE_PROVIDERS or concurrency < 10:
            return FailureDecision(failed=False)
        probability = 0.0
        if self._provider is Provider.GCP:
            probability = 0.01
            if memory_mb >= 4096 and concurrency >= 50:
                # The extreme shortage of high-memory containers: up to 80%.
                probability = 0.6
        elif self._provider is Provider.AZURE:
            probability = 0.02
        if self._rng.random() < probability:
            return FailureDecision(True, "unavailable", "service could not allocate resources for the burst")
        return FailureDecision(failed=False)
