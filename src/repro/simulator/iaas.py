"""IaaS (virtual machine) baseline platform.

Section 6.2 Q4 and 6.3 Q3 compare serverless functions against their natural
alternative: a rented VM (an AWS EC2 ``t2.micro`` with one vCPU and 1 GB of
memory, priced at $0.0116/hour) running the same benchmark in a local
Docker-based execution environment.  The VM is always on, so there are no
cold starts and no per-invocation request fees; the price is purely the
hourly rental, and throughput is limited by the single core.

Two storage configurations are evaluated (Table 5): the benchmark data on the
VM's local disk ("IaaS, Local") and on S3 ("IaaS, S3"), the latter being the
fairer comparison since functions must use cloud storage.
"""

from __future__ import annotations

from ..benchmarks.registry import BenchmarkRegistry
from ..config import Provider, SimulationConfig, StartType
from ..storage.latency import StorageLatencyModel
from ..utils.clock import VirtualClock
from .compute import ComputeModel
from .containers import Container
from .eviction import EvictionPolicy
from .platform_sim import SimulatedPlatform
from .profiles import IAAS_S3_STORAGE_PROFILE


class _NeverEvict(EvictionPolicy):
    """The VM never evicts its worker process."""

    def select_evictions(self, pool, now):  # type: ignore[override]
        return []


class IaaSPlatform(SimulatedPlatform):
    """A persistent VM executing benchmarks without FaaS overheads."""

    provider = Provider.IAAS

    def __init__(
        self,
        simulation: SimulationConfig | None = None,
        clock: VirtualClock | None = None,
        registry: BenchmarkRegistry | None = None,
        execute_kernels: bool = False,
        use_cloud_storage: bool = False,
    ):
        super().__init__(simulation=simulation, clock=clock, registry=registry, execute_kernels=execute_kernels)
        self.use_cloud_storage = use_cloud_storage

    def _snapshot_init_kwargs(self) -> dict:
        # Workers must rebuild with the same storage configuration, or a
        # sharded replay would silently fall back to local-disk latency.
        return {"use_cloud_storage": self.use_cloud_storage}

    def _build_compute_model(self, fname: str) -> ComputeModel:
        compute = super()._build_compute_model(fname)
        if self.use_cloud_storage:
            # Replace the local-disk storage model with an S3-like one (per
            # function, like every other stochastic model).
            compute._storage_model = StorageLatencyModel(
                IAAS_S3_STORAGE_PROFILE, self._streams.stream("s3-storage", fname)
            )
        return compute

    def _build_eviction_policy(self) -> EvictionPolicy:
        return _NeverEvict()

    def _acquire_container(self, function, state, start_at):  # type: ignore[override]
        # The VM's worker process is always running: the first invocation
        # creates the bookkeeping record, but every execution is "warm".
        containers = state.pool.all_containers()
        if containers:
            return containers[0], StartType.WARM
        container = Container(
            function_name=function.name,
            function_version=function.version,
            memory_mb=function.config.memory_mb,
            created_at=start_at,
            container_id=state.pool.next_container_id(),
        )
        container.mark_warm(start_at)
        state.pool.add(container)
        return container, StartType.WARM

    # ------------------------------------------------------------ utilities
    def hourly_cost(self) -> float:
        """Hourly rental price of the VM."""
        return self.billing.hourly_cost()

    def max_requests_per_hour(self, fname: str, samples: int = 50) -> float:
        """Throughput ceiling of the VM for ``fname`` at 100% utilisation.

        The VM serves requests back-to-back on its single core, so the
        sustainable request rate is ``3600 / median service time``.  Used by
        the break-even analysis (Table 6).
        """
        import numpy as np

        records = [self.invoke(fname, payload={}) for _ in range(samples)]
        median_time = float(np.median([record.provider_time_s for record in records]))
        if median_time <= 0:
            return float("inf")
        return 3600.0 / median_time
