"""Execution-duration model of a sandbox.

Given a benchmark's :class:`~repro.benchmarks.base.WorkProfile`, a memory
configuration and a provider performance profile, the compute model produces
the three durations SeBS measures for every invocation:

* **benchmark time** — CPU work scaled by the memory-proportional CPU share
  (plateauing at one vCPU, since the kernels are single-threaded) plus the
  time spent in persistent-storage transfers (whose bandwidth also scales
  with memory);
* **cold initialisation time** — runtime/dependency import and, on a cold
  start, downloading the code package, plus the provider's provisioning
  latency (with the GCP high-memory penalty and the erratic component of
  Azure/GCP);
* **memory consumption** — the kernel's peak memory with a small amount of
  per-invocation noise (which is what makes borderline allocations fail
  occasionally on GCP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..benchmarks.base import WorkProfile
from ..config import DYNAMIC_MEMORY
from ..faas.limits import PlatformLimits
from ..storage.latency import StorageLatencyModel
from .profiles import ProviderPerformanceProfile


@dataclass(frozen=True)
class ExecutionSample:
    """One simulated execution of a benchmark inside a sandbox."""

    benchmark_time_s: float
    compute_time_s: float
    storage_time_s: float
    cold_init_s: float
    memory_used_mb: float


class ComputeModel:
    """Derives execution durations from work profiles and configurations."""

    def __init__(
        self,
        performance: ProviderPerformanceProfile,
        limits: PlatformLimits,
        rng: np.random.Generator,
    ):
        self._performance = performance
        self._limits = limits
        self._rng = rng
        self._storage_model = StorageLatencyModel(performance.storage, rng)
        # Pure-function caches for the per-invocation hot path.  Every entry
        # stores the exact float the inline computation would produce, so
        # replays are bit-identical with or without a warm cache.
        self._share_cache: dict[int, float] = {}
        self._sigma_cache: dict[float, float] = {}

    @property
    def storage_model(self) -> StorageLatencyModel:
        return self._storage_model

    def effective_memory(self, memory_mb: int) -> int:
        """Memory used for CPU/bandwidth scaling (resolves dynamic allocation)."""
        if memory_mb == DYNAMIC_MEMORY:
            return self._performance.dynamic_memory_effective_mb
        return memory_mb

    def cpu_share(self, memory_mb: int) -> float:
        """Usable CPU share: proportional to memory, capped at one full vCPU."""
        cached = self._share_cache.get(memory_mb)
        if cached is None:
            share = self._limits.cpu_share(self.effective_memory(memory_mb))
            cached = self._share_cache[memory_mb] = float(min(1.0, share))
        return cached

    def _jitter(self, cv: float) -> float:
        if cv <= 0:
            return 1.0
        sigma = self._sigma_cache.get(cv)
        if sigma is None:
            sigma = self._sigma_cache[cv] = float(np.sqrt(np.log(1.0 + cv**2)))
        return float(self._rng.lognormal(mean=-sigma**2 / 2.0, sigma=sigma))

    def compute_time(self, profile: WorkProfile, memory_mb: int, concurrent: bool = False) -> float:
        """CPU portion of the benchmark time under ``memory_mb``."""
        performance = self._performance
        share = self.cpu_share(memory_mb)
        base = profile.warm_compute_s * performance.compute_speed_factor / share
        cv = performance.compute_jitter_cv
        if concurrent:
            cv *= performance.concurrency_jitter_factor
        return base * self._jitter(cv)

    def storage_time(self, profile: WorkProfile, memory_mb: int) -> float:
        """Persistent-storage portion of the benchmark time.

        A contention event (a co-located function saturating the server NIC)
        is drawn once per invocation and applied to every transfer, which is
        what turns long, storage-heavy invocations into stragglers.
        """
        effective = self.effective_memory(memory_mb)
        contention = self._storage_model.draw_contention()
        total = 0.0
        if profile.storage_read_bytes > 0 or profile.storage_read_requests > 0:
            requests = max(1, profile.storage_read_requests)
            per_request = profile.storage_read_bytes // requests
            for _ in range(requests):
                total += self._storage_model.transfer_time(per_request, effective, contention=contention)
        if profile.storage_write_bytes > 0 or profile.storage_write_requests > 0:
            requests = max(1, profile.storage_write_requests)
            per_request = profile.storage_write_bytes // requests
            for _ in range(requests):
                total += self._storage_model.transfer_time(per_request, effective, contention=contention)
        return total

    def cold_init_time(self, profile: WorkProfile, memory_mb: int, code_package_mb: float) -> float:
        """Cold-start latency: provisioning + package fetch + runtime init."""
        performance = self._performance
        cold = performance.cold_start
        share = self.cpu_share(memory_mb)
        provisioning = cold.provisioning_s * self._jitter(cold.jitter_cv)
        package_fetch = code_package_mb / cold.package_bandwidth_mbps
        runtime_init = profile.cold_init_s * cold.init_multiplier / share
        penalty = cold.highmem_penalty_s_per_gb * (self.effective_memory(memory_mb) / 1024.0)
        erratic = 0.0
        if cold.erratic_probability > 0 and self._rng.random() < cold.erratic_probability:
            erratic = float(self._rng.exponential(cold.erratic_scale_s))
        return provisioning + package_fetch + runtime_init + penalty + erratic

    def memory_used(self, profile: WorkProfile) -> float:
        """Peak memory of one invocation with small measurement noise."""
        noise = self._rng.normal(loc=1.0, scale=0.03)
        return float(max(1.0, profile.peak_memory_mb * max(0.85, noise)))

    def execute(
        self,
        profile: WorkProfile,
        memory_mb: int,
        cold: bool,
        code_package_mb: float,
        concurrent: bool = False,
    ) -> ExecutionSample:
        """Produce all durations of one invocation."""
        compute = self.compute_time(profile, memory_mb, concurrent)
        storage = self.storage_time(profile, memory_mb)
        cold_init = self.cold_init_time(profile, memory_mb, code_package_mb) if cold else 0.0
        return ExecutionSample(
            benchmark_time_s=compute + storage,
            compute_time_s=compute,
            storage_time_s=storage,
            cold_init_s=cold_init,
            memory_used_mb=self.memory_used(profile),
        )
