"""Simulated FaaS cloud substrate.

The original SeBS toolkit drives real commercial platforms; in this offline
reproduction the providers are replaced by behavioural simulators that
implement the same abstract :class:`~repro.faas.platform.FaaSPlatform`
interface over a virtual clock.  Each simulated provider models:

* the **sandbox lifecycle** — cold starts (provisioning + code download +
  runtime/dependency initialisation), warm reuse, and provider-specific
  container-eviction policies (AWS's 380 s half-life, idle timeouts with
  unexpected cold starts on GCP, function apps on Azure);
* **resource allocation** — CPU and I/O bandwidth proportional to the memory
  configuration, with single-threaded kernels plateauing at one vCPU;
* **billing** — per-provider pricing rules (request fees, GB-s, rounding
  granularity, dynamic-memory billing on Azure, egress);
* **reliability** — out-of-memory kills and availability errors observed on
  GCP, and the concurrency-induced performance degradation of Azure's Python
  function apps;
* the **invocation path** — trigger/gateway overhead, network transfer of
  payloads and results, and cold-start scheduling delays.

All stochastic behaviour is driven by named random streams derived from a
single seed, so simulations are exactly reproducible.
"""

from .compute import ComputeModel
from .containers import Container, ContainerPool, ContainerState
from .eviction import EvictionPolicy, HalfLifeEvictionPolicy, IdleTimeoutEvictionPolicy
from .iaas import IaaSPlatform
from .platform_sim import SimulatedPlatform
from .providers import AWSLambdaSimulator, AzureFunctionsSimulator, GoogleCloudFunctionsSimulator, create_platform
from .profiles import ProviderPerformanceProfile, profile_for
from .reliability import ReliabilityModel

__all__ = [
    "ComputeModel",
    "Container",
    "ContainerPool",
    "ContainerState",
    "EvictionPolicy",
    "HalfLifeEvictionPolicy",
    "IdleTimeoutEvictionPolicy",
    "IaaSPlatform",
    "SimulatedPlatform",
    "AWSLambdaSimulator",
    "AzureFunctionsSimulator",
    "GoogleCloudFunctionsSimulator",
    "create_platform",
    "ProviderPerformanceProfile",
    "profile_for",
    "ReliabilityModel",
]
