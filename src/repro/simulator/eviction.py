"""Container eviction policies.

Section 6.5 reverse-engineers the AWS Lambda policy: it is deterministic,
agnostic to memory size, execution time, language and code-package size, and
after every period of 380 seconds half of the existing containers are
evicted, i.e. ``D_warm = D_init * 2^-floor(dT / 380s)``.  GCP and Azure have
no published policy; their sandboxes disappear after an idle timeout with
substantial randomness (and Azure's function apps keep instances alive
longer).  The policies below are applied lazily: before every scheduling
decision the platform asks the policy which warm containers should be gone by
``now``.
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import ConfigurationError
from .containers import Container, ContainerPool

#: The empirically measured AWS eviction period (seconds).
AWS_EVICTION_PERIOD_S = 380.0


class EvictionPolicy(abc.ABC):
    """Decides which warm containers a provider has evicted by ``now``."""

    @abc.abstractmethod
    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        """Return the containers that should be evicted at time ``now``."""

    def apply(self, pool: ContainerPool, now: float) -> int:
        """Evict the selected containers; return how many were evicted."""
        victims = self.select_evictions(pool, now)
        pool.evict(victims)
        return len(victims)


class HalfLifeEvictionPolicy(EvictionPolicy):
    """The AWS policy: every ``period_s`` half of the containers are evicted.

    The eviction is deterministic and application agnostic.  Containers are
    ranked by creation order; at period boundary ``p`` the policy keeps the
    ``floor(initial / 2**p)`` earliest-created warm containers from each
    creation batch, which realises the paper's ``D_init * 2^-p`` model.
    """

    def __init__(self, period_s: float = AWS_EVICTION_PERIOD_S):
        if period_s <= 0:
            raise ConfigurationError("eviction period must be positive")
        self.period_s = period_s
        # Containers this policy evicted from each creation batch, keyed by
        # (function, batch period).  The survivor count must be computed from
        # the batch's full population (still warm + evicted by this policy),
        # not from whatever is still warm — otherwise repeated lazy
        # applications (every scheduling decision reapplies the policy) would
        # halve the survivors again on every call instead of once per period.
        # Counting our own evictions rather than remembering the peak size
        # also keeps the model correct when sandboxes disappear for other
        # reasons (``update_function`` invalidating all warm containers).
        self._evicted_counts: dict[tuple[str, int], int] = {}

    def _periods_elapsed(self, container: Container, now: float) -> int:
        return int((now - container.created_at) // self.period_s)

    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        warm = pool.warm_containers()
        if not warm:
            return []
        # Group containers by the batch they were created in (same period of
        # creation time); within each batch, the survivors after p periods are
        # the first floor(initial_batch_size / 2**p) by creation order.
        victims: list[Container] = []
        batches: dict[int, list[Container]] = {}
        for container in warm:
            batch_key = int(container.created_at // self.period_s)
            batches.setdefault(batch_key, []).append(container)
        for batch_key, batch in batches.items():
            batch.sort(key=lambda c: (c.created_at, c.container_id))
            already_evicted = self._evicted_counts.get((pool.function_name, batch_key), 0)
            initial = len(batch) + already_evicted
            periods = self._periods_elapsed(batch[0], now)
            if periods <= 0:
                continue
            survivors = initial >> periods  # floor(initial / 2**periods)
            # Victims this policy evicted before were the latest-created, so
            # the still-warm batch occupies the earliest positions of the
            # full population and can be sliced directly.
            victims.extend(batch[survivors:])
        return victims

    def apply(self, pool: ContainerPool, now: float) -> int:
        # The eviction ledger is only updated here, once the selected
        # containers are actually evicted — ``select_evictions`` stays a
        # side-effect-free query, as the EvictionPolicy contract promises.
        victims = self.select_evictions(pool, now)
        pool.evict(victims)
        for container in victims:
            key = (pool.function_name, int(container.created_at // self.period_s))
            self._evicted_counts[key] = self._evicted_counts.get(key, 0) + 1
        return len(victims)


class IdleTimeoutEvictionPolicy(EvictionPolicy):
    """GCP/Azure-style policy: evict containers idle longer than a timeout.

    The timeout is randomised per container (log-normal around the mean) to
    reproduce the unpredictable cold-start behaviour observed on those
    platforms.
    """

    def __init__(
        self,
        mean_idle_timeout_s: float = 900.0,
        jitter_cv: float = 0.3,
        rng: np.random.Generator | None = None,
    ):
        if mean_idle_timeout_s <= 0:
            raise ConfigurationError("idle timeout must be positive")
        if jitter_cv < 0:
            raise ConfigurationError("jitter_cv must be non-negative")
        self.mean_idle_timeout_s = mean_idle_timeout_s
        self.jitter_cv = jitter_cv
        self._rng = rng or np.random.default_rng(0)
        self._timeouts: dict[str, float] = {}

    def _timeout_for(self, container: Container) -> float:
        if container.container_id not in self._timeouts:
            if self.jitter_cv > 0:
                sigma = np.sqrt(np.log(1.0 + self.jitter_cv**2))
                factor = float(self._rng.lognormal(mean=-sigma**2 / 2.0, sigma=sigma))
            else:
                factor = 1.0
            self._timeouts[container.container_id] = self.mean_idle_timeout_s * factor
        return self._timeouts[container.container_id]

    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        victims = []
        for container in pool.warm_containers():
            if container.idle_time(now) > self._timeout_for(container):
                victims.append(container)
        return victims
