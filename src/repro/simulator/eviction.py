"""Container eviction policies.

Section 6.5 reverse-engineers the AWS Lambda policy: it is deterministic,
agnostic to memory size, execution time, language and code-package size, and
after every period of 380 seconds half of the existing containers are
evicted, i.e. ``D_warm = D_init * 2^-floor(dT / 380s)``.  GCP and Azure have
no published policy; their sandboxes disappear after an idle timeout with
substantial randomness (and Azure's function apps keep instances alive
longer).  The policies below are applied lazily: before every scheduling
decision the platform asks the policy which warm containers should be gone by
``now``.

Because that question is asked once per invocation, :meth:`EvictionPolicy.apply`
is *incremental*: each policy keeps a min-heap of upcoming eviction deadlines
(period boundaries for the half-life policy, per-sandbox expiry instants for
the idle-timeout policies) and only does work when the virtual clock crosses
the earliest deadline — an O(1) peek on the hot path instead of a full-pool
scan.  New sandboxes are discovered through the pool's append-only
:attr:`~repro.simulator.containers.ContainerPool.creation_log`, so ingestion
is O(new containers), not O(pool).

The scan-based semantics remain available as :meth:`EvictionPolicy.apply_full`
(and the side-effect-free :meth:`select_evictions` query); the scheduler
equivalence suite replays identical traces through both paths and asserts
bit-identical outcomes.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .containers import Container, ContainerPool, ContainerState

#: The empirically measured AWS eviction period (seconds).
AWS_EVICTION_PERIOD_S = 380.0


class EvictionPolicy(abc.ABC):
    """Decides which warm containers a provider has evicted by ``now``."""

    @abc.abstractmethod
    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        """Return the containers that should be evicted at time ``now``."""

    def apply_full(self, pool: ContainerPool, now: float) -> int:
        """Scan-based application: evict everything ``select_evictions`` names.

        This is the reference semantics; subclasses with an incremental
        ``apply`` must produce identical evictions at identical times.
        """
        victims = self.select_evictions(pool, now)
        pool.evict(victims)
        self._note_evicted(pool, victims)
        return len(victims)

    def _note_evicted(self, pool: ContainerPool, victims: list[Container]) -> None:
        """Hook for policies that keep a ledger of their own evictions."""

    def apply(self, pool: ContainerPool, now: float) -> int:
        """Evict the selected containers; return how many were evicted."""
        return self.apply_full(pool, now)


@dataclass
class _HalfLifeTracker:
    """Per-function incremental state of the half-life policy."""

    cursor: int = 0
    #: batch period -> still-tracked members (possibly already evicted
    #: elsewhere; filtered lazily when the batch is processed).
    batches: dict[int, list[Container]] = field(default_factory=dict)
    #: batch period -> the deadline currently scheduled on the heap.  Heap
    #: entries with a different deadline are stale duplicates and skipped.
    scheduled: dict[int, float] = field(default_factory=dict)
    heap: list[tuple[float, int]] = field(default_factory=list)


class HalfLifeEvictionPolicy(EvictionPolicy):
    """The AWS policy: every ``period_s`` half of the containers are evicted.

    The eviction is deterministic and application agnostic.  Containers are
    ranked by creation order; at period boundary ``p`` the policy keeps the
    ``floor(initial / 2**p)`` earliest-created warm containers from each
    creation batch, which realises the paper's ``D_init * 2^-p`` model.
    """

    def __init__(self, period_s: float = AWS_EVICTION_PERIOD_S):
        if period_s <= 0:
            raise ConfigurationError("eviction period must be positive")
        self.period_s = period_s
        # Containers this policy evicted from each creation batch, keyed by
        # (function, batch period).  The survivor count must be computed from
        # the batch's full population (still warm + evicted by this policy),
        # not from whatever is still warm — otherwise repeated lazy
        # applications (every scheduling decision reapplies the policy) would
        # halve the survivors again on every call instead of once per period.
        # Counting our own evictions rather than remembering the peak size
        # also keeps the model correct when sandboxes disappear for other
        # reasons (``update_function`` invalidating all warm containers).
        self._evicted_counts: dict[tuple[str, int], int] = {}
        # Keyed by pool *identity* (ContainerPool hashes by identity), not
        # function name: delete_function + create_function reuses the name
        # with a fresh pool, whose creation log must be ingested from zero.
        # Weak keys let a replaced pool (and the container graph its log
        # holds) be collected instead of leaking across redeploy cycles.
        self._trackers: "weakref.WeakKeyDictionary[ContainerPool, _HalfLifeTracker]" = (
            weakref.WeakKeyDictionary()
        )

    def _periods_elapsed(self, container: Container, now: float) -> int:
        return int((now - container.created_at) // self.period_s)

    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        warm = pool.warm_containers()
        if not warm:
            return []
        # Group containers by the batch they were created in (same period of
        # creation time); within each batch, the survivors after p periods are
        # the first floor(initial_batch_size / 2**p) by creation order.
        victims: list[Container] = []
        batches: dict[int, list[Container]] = {}
        for container in warm:
            batch_key = int(container.created_at // self.period_s)
            batches.setdefault(batch_key, []).append(container)
        for batch_key, batch in batches.items():
            batch.sort(key=lambda c: (c.created_at, c.container_id))
            already_evicted = self._evicted_counts.get((pool.function_name, batch_key), 0)
            initial = len(batch) + already_evicted
            periods = self._periods_elapsed(batch[0], now)
            if periods <= 0:
                continue
            survivors = initial >> periods  # floor(initial / 2**periods)
            # Victims this policy evicted before were the latest-created, so
            # the still-warm batch occupies the earliest positions of the
            # full population and can be sliced directly.
            victims.extend(batch[survivors:])
        return victims

    def _note_evicted(self, pool: ContainerPool, victims: list[Container]) -> None:
        for container in victims:
            key = (pool.function_name, int(container.created_at // self.period_s))
            self._evicted_counts[key] = self._evicted_counts.get(key, 0) + 1

    def _schedule(self, tracker: _HalfLifeTracker, batch_key: int, deadline: float) -> None:
        tracker.scheduled[batch_key] = deadline
        heapq.heappush(tracker.heap, (deadline, batch_key))

    def _ingest(self, pool: ContainerPool, tracker: _HalfLifeTracker) -> None:
        log = pool.creation_log
        while tracker.cursor < len(log):
            container = log[tracker.cursor]
            tracker.cursor += 1
            batch_key = int(container.created_at // self.period_s)
            members = tracker.batches.setdefault(batch_key, [])
            members.append(container)
            deadline = container.created_at + self.period_s
            if deadline < tracker.scheduled.get(batch_key, float("inf")):
                self._schedule(tracker, batch_key, deadline)

    def apply(self, pool: ContainerPool, now: float) -> int:
        """Incremental application: only batches whose period boundary has
        passed since the last call do any work; otherwise this is an O(1)
        deadline peek."""
        tracker = self._trackers.get(pool)
        if tracker is None:
            tracker = self._trackers[pool] = _HalfLifeTracker()
        if tracker.cursor < len(pool.creation_log):
            self._ingest(pool, tracker)
        evicted = 0
        while tracker.heap and tracker.heap[0][0] <= now:
            deadline, batch_key = heapq.heappop(tracker.heap)
            if tracker.scheduled.get(batch_key) != deadline:
                continue  # stale duplicate entry
            tracker.scheduled.pop(batch_key, None)
            members = [c for c in tracker.batches.get(batch_key, ()) if c.is_warm]
            if not members:
                tracker.batches.pop(batch_key, None)
                continue
            members.sort(key=lambda c: (c.created_at, c.container_id))
            key = (pool.function_name, batch_key)
            already_evicted = self._evicted_counts.get(key, 0)
            # As in select_evictions, the period count is anchored at the
            # earliest *currently warm* member: if the whole batch vanished
            # (update_function) and was repopulated, the half-life restarts.
            periods = int((now - members[0].created_at) // self.period_s)
            if periods <= 0:
                tracker.batches[batch_key] = members
                self._schedule(tracker, batch_key, members[0].created_at + self.period_s)
                continue
            survivors = (len(members) + already_evicted) >> periods
            victims = members[survivors:]
            if victims:
                pool.evict(victims)
                self._evicted_counts[key] = already_evicted + len(victims)
                evicted += len(victims)
            remaining = members[:survivors]
            tracker.batches[batch_key] = remaining
            if remaining:
                self._schedule(
                    tracker, batch_key, remaining[0].created_at + (periods + 1) * self.period_s
                )
            else:
                tracker.batches.pop(batch_key, None)
        return evicted


@dataclass
class _IdleTracker:
    """Per-function incremental state of the idle-timeout policies."""

    cursor: int = 0
    #: Sandboxes seen in the creation log that were not yet warm (still
    #: cold-starting) when ingested; their timeout draw is deferred until
    #: they first appear warm, matching the scan-based draw order.
    pending: list[Container] = field(default_factory=list)
    heap: list[tuple[float, int, Container]] = field(default_factory=list)


class IdleTimeoutEvictionPolicy(EvictionPolicy):
    """GCP/Azure-style policy: evict containers idle longer than a timeout.

    The timeout is randomised per container (log-normal around the mean) to
    reproduce the unpredictable cold-start behaviour observed on those
    platforms.

    ``rng_factory`` (preferred) maps a function name to that function's
    private timeout stream: every pool draws from its own generator, in its
    own container-creation order, so one function's eviction jitter is a
    pure function of its own history — the isolation sharded replay
    (:mod:`repro.parallel`) depends on.  The legacy single ``rng`` is kept
    for callers that only ever evict one pool.
    """

    def __init__(
        self,
        mean_idle_timeout_s: float = 900.0,
        jitter_cv: float = 0.3,
        rng: np.random.Generator | None = None,
        rng_factory=None,
    ):
        if mean_idle_timeout_s <= 0:
            raise ConfigurationError("idle timeout must be positive")
        if jitter_cv < 0:
            raise ConfigurationError("jitter_cv must be non-negative")
        self.mean_idle_timeout_s = mean_idle_timeout_s
        self.jitter_cv = jitter_cv
        self._rng = rng or np.random.default_rng(0)
        self._rng_factory = rng_factory
        self._timeouts: dict[str, float] = {}
        # Weak pool-identity keys — see HalfLifeEvictionPolicy._trackers.
        self._trackers: "weakref.WeakKeyDictionary[ContainerPool, _IdleTracker]" = (
            weakref.WeakKeyDictionary()
        )
        self._pool_rngs: "weakref.WeakKeyDictionary[ContainerPool, np.random.Generator]" = (
            weakref.WeakKeyDictionary()
        )
        self._entry_seq = itertools.count()

    def _pool_rng(self, pool: ContainerPool) -> np.random.Generator:
        if self._rng_factory is None:
            return self._rng
        rng = self._pool_rngs.get(pool)
        if rng is None:
            rng = self._pool_rngs[pool] = self._rng_factory(pool.function_name)
        return rng

    def _timeout_for(self, pool: ContainerPool, container: Container) -> float:
        if container.container_id not in self._timeouts:
            if self.jitter_cv > 0:
                sigma = np.sqrt(np.log(1.0 + self.jitter_cv**2))
                factor = float(
                    self._pool_rng(pool).lognormal(mean=-sigma**2 / 2.0, sigma=sigma)
                )
            else:
                factor = 1.0
            self._timeouts[container.container_id] = self.mean_idle_timeout_s * factor
        return self._timeouts[container.container_id]

    def select_evictions(self, pool: ContainerPool, now: float) -> list[Container]:
        victims = []
        for container in pool.warm_containers():
            if container.idle_time(now) > self._timeout_for(pool, container):
                victims.append(container)
        return victims

    def _ingest(self, pool: ContainerPool, tracker: _IdleTracker) -> None:
        log = pool.creation_log
        while tracker.cursor < len(log):
            tracker.pending.append(log[tracker.cursor])
            tracker.cursor += 1
        if not tracker.pending:
            return
        still_pending: list[Container] = []
        for container in tracker.pending:
            if container.state is ContainerState.EVICTED:
                # Gone before the policy ever observed it warm: the
                # scan-based path would never have drawn a timeout either.
                continue
            if not container.is_warm:
                still_pending.append(container)
                continue
            # Drawing here — first application after the sandbox turns warm,
            # in creation order — reproduces the RNG draw sequence of the
            # scan-based path exactly.
            timeout = self._timeout_for(pool, container)
            heapq.heappush(
                tracker.heap,
                (container.last_used_at + timeout, next(self._entry_seq), container),
            )
        tracker.pending = still_pending

    def apply(self, pool: ContainerPool, now: float) -> int:
        """Incremental application via a lazy expiry heap.

        A sandbox's scheduled expiry is ``last_used_at + timeout`` *at push
        time*; if it served again in between, the stale deadline surfaces,
        the entry is re-pushed at the true expiry, and nothing is evicted.
        """
        tracker = self._trackers.get(pool)
        if tracker is None:
            tracker = self._trackers[pool] = _IdleTracker()
        if tracker.cursor < len(pool.creation_log) or tracker.pending:
            self._ingest(pool, tracker)
        evicted = 0
        while tracker.heap and tracker.heap[0][0] < now:
            _, seq, container = heapq.heappop(tracker.heap)
            if not container.is_warm:
                continue
            expiry = container.last_used_at + self._timeouts[container.container_id]
            # Strict inequality mirrors idle_time(now) > timeout.
            if expiry < now:
                pool.evict([container])
                evicted += 1
            else:
                heapq.heappush(tracker.heap, (expiry, seq, container))
        return evicted
