"""Sandbox (container / microVM) lifecycle bookkeeping.

Section 2, label 2: every function instance runs inside an isolated execution
environment.  The simulator tracks one :class:`Container` per sandbox —
which function and version it serves, when it was created and last used, and
how many invocations it has handled — and a :class:`ContainerPool` per
function holding the warm sandboxes the scheduler can reuse.  The eviction
experiment (Section 6.5) observes exactly this population.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import PlatformError


class ContainerState(str, enum.Enum):
    """Lifecycle states of a sandbox."""

    COLD_STARTING = "cold-starting"
    WARM = "warm"
    BUSY = "busy"
    EVICTED = "evicted"


_container_ids = itertools.count(1)


@dataclass
class Container:
    """One sandbox instance bound to a specific function version."""

    function_name: str
    function_version: int
    memory_mb: int
    created_at: float
    container_id: str = field(default_factory=lambda: f"container-{next(_container_ids):06d}")
    state: ContainerState = ContainerState.COLD_STARTING
    last_used_at: float = 0.0
    invocations: int = 0

    def __post_init__(self) -> None:
        self.last_used_at = max(self.last_used_at, self.created_at)

    def mark_warm(self, timestamp: float) -> None:
        if self.state is ContainerState.EVICTED:
            raise PlatformError("cannot warm an evicted container")
        self.state = ContainerState.WARM
        self.last_used_at = max(self.last_used_at, timestamp)

    def serve(self, timestamp: float) -> None:
        """Record that the container served an invocation at ``timestamp``."""
        if self.state is ContainerState.EVICTED:
            raise PlatformError("cannot invoke an evicted container")
        self.invocations += 1
        self.last_used_at = max(self.last_used_at, timestamp)
        self.state = ContainerState.WARM

    def evict(self) -> None:
        self.state = ContainerState.EVICTED

    @property
    def is_warm(self) -> bool:
        return self.state in (ContainerState.WARM, ContainerState.BUSY)

    def uptime(self, now: float) -> float:
        return max(0.0, now - self.created_at)

    def idle_time(self, now: float) -> float:
        return max(0.0, now - self.last_used_at)


class ContainerPool:
    """The set of sandboxes (warm and historical) of one deployed function."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self._containers: list[Container] = []

    def add(self, container: Container) -> None:
        if container.function_name != self.function_name:
            raise PlatformError("container belongs to a different function")
        self._containers.append(container)

    def warm_containers(self, version: int | None = None) -> list[Container]:
        """Warm sandboxes, optionally restricted to a function version."""
        return [
            c
            for c in self._containers
            if c.is_warm and (version is None or c.function_version == version)
        ]

    def warm_count(self, version: int | None = None) -> int:
        return len(self.warm_containers(version))

    def all_containers(self) -> list[Container]:
        return list(self._containers)

    def total_created(self) -> int:
        return len(self._containers)

    def evict_all(self) -> int:
        """Evict every warm container; returns how many were evicted."""
        evicted = 0
        for container in self._containers:
            if container.is_warm:
                container.evict()
                evicted += 1
        return evicted

    def evict(self, containers: list[Container]) -> None:
        for container in containers:
            container.evict()

    def prune(self) -> None:
        """Drop evicted containers from the bookkeeping list."""
        self._containers = [c for c in self._containers if c.state is not ContainerState.EVICTED]

    def __iter__(self) -> Iterator[Container]:
        return iter(self._containers)

    def __len__(self) -> int:
        return len(self._containers)
