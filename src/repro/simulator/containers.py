"""Sandbox (container / microVM) lifecycle bookkeeping.

Section 2, label 2: every function instance runs inside an isolated execution
environment.  The simulator tracks one :class:`Container` per sandbox —
which function and version it serves, when it was created and last used, and
how many invocations it has handled — and a :class:`ContainerPool` per
function holding the warm sandboxes the scheduler can reuse.  The eviction
experiment (Section 6.5) observes exactly this population.

The pool is *indexed* so the invocation hot path never scans it:

* a per-version **MRU heap** keyed by ``(-last_used_at, insertion order)``
  answers "most recently used warm sandbox" in O(log n)
  (:meth:`ContainerPool.pick_mru`), with at most one live heap entry per
  container and lazy invalidation of stale entries;
* an **occupancy multiset** (:meth:`reserve` / :meth:`release`) tracks how
  many in-flight executions each sandbox is hosting, so busy-set exclusion
  is an O(1) counter comparison instead of a list membership test
  (``slot_capacity`` > 1 models Azure's function-app instance sharing);
* an append-only **creation log** lets eviction policies ingest new
  sandboxes incrementally instead of re-scanning the pool
  (:attr:`creation_log`).

The classic scan-based accessors (:meth:`warm_containers`,
:meth:`warm_count`) remain for slow paths — tests, reporting, and the
reference scheduling semantics used by the equivalence suite.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import PlatformError


class ContainerState(str, enum.Enum):
    """Lifecycle states of a sandbox."""

    COLD_STARTING = "cold-starting"
    WARM = "warm"
    BUSY = "busy"
    EVICTED = "evicted"


_container_ids = itertools.count(1)


@dataclass
class Container:
    """One sandbox instance bound to a specific function version."""

    function_name: str
    function_version: int
    memory_mb: int
    created_at: float
    container_id: str = field(default_factory=lambda: f"container-{next(_container_ids):06d}")
    state: ContainerState = ContainerState.COLD_STARTING
    last_used_at: float = 0.0
    invocations: int = 0

    def __post_init__(self) -> None:
        self.last_used_at = max(self.last_used_at, self.created_at)

    def mark_warm(self, timestamp: float) -> None:
        if self.state is ContainerState.EVICTED:
            raise PlatformError("cannot warm an evicted container")
        self.state = ContainerState.WARM
        self.last_used_at = max(self.last_used_at, timestamp)

    def serve(self, timestamp: float) -> None:
        """Record that the container served an invocation at ``timestamp``."""
        if self.state is ContainerState.EVICTED:
            raise PlatformError("cannot invoke an evicted container")
        self.invocations += 1
        self.last_used_at = max(self.last_used_at, timestamp)
        self.state = ContainerState.WARM

    def evict(self) -> None:
        self.state = ContainerState.EVICTED

    @property
    def is_warm(self) -> bool:
        return self.state in (ContainerState.WARM, ContainerState.BUSY)

    def uptime(self, now: float) -> float:
        return max(0.0, now - self.created_at)

    def idle_time(self, now: float) -> float:
        return max(0.0, now - self.last_used_at)


class ContainerPool:
    """The set of sandboxes (warm and historical) of one deployed function.

    ``slot_capacity`` is the number of concurrent executions one sandbox can
    absorb before it stops being offered for reuse: 1 for AWS/GCP containers,
    higher for Azure's shared function-app instances.
    """

    def __init__(self, function_name: str, slot_capacity: int = 1):
        if slot_capacity < 1:
            raise PlatformError("slot_capacity must be at least 1")
        self.function_name = function_name
        self.slot_capacity = slot_capacity
        self._containers: list[Container] = []
        #: Append-only log of every sandbox ever added; eviction policies keep
        #: a cursor into it so they only ever look at *new* containers.  Plain
        #: attribute (not a property) — it sits on the per-invocation path.
        self.creation_log: list[Container] = []
        self._seq = itertools.count()
        #: container_id -> (insertion seq, container); evicted entries are
        #: dropped by prune().
        self._index: dict[str, tuple[int, Container]] = {}
        #: container_id -> number of in-flight executions hosted right now.
        self._in_use: dict[str, int] = {}
        #: version -> min-heap of (-last_used_at, insertion seq, container).
        self._mru: dict[int, list[tuple[float, int, Container]]] = {}
        #: container_id -> last_used_at of its (single) live heap entry.
        #: An entry whose recorded timestamp disagrees with this map is stale
        #: and discarded when it surfaces at the heap top.
        self._entry_lua: dict[str, float] = {}
        #: Per-pool sandbox id counter (see :meth:`next_container_id`).
        self._id_counter = itertools.count(1)
        #: Set by :meth:`evict` / :meth:`evict_all`, cleared by :meth:`prune`.
        #: A clean pool's prune would rebuild identical structures, so the
        #: flag lets replay loops prune thousands of pools per interval at
        #: O(dirty) instead of O(pools) cost.
        self._needs_prune = False

    def next_container_id(self) -> str:
        """Mint a pool-scoped sandbox id, e.g. ``thumbnails-c00000007``.

        Scoping ids to the pool (function) instead of the module-level
        default counter makes a function's sandbox ids a pure function of
        its *own* invocation history: two platforms replaying the same trace
        in one process, or one function replayed alone versus inside a mixed
        trace, mint identical ids.  The eviction policies' deterministic
        ``(created_at, container_id)`` tie-break then stays stable under
        sharded replay — and under id-counter rollover, since the fixed-width
        sort key only rolls over at 10^8 sandboxes *per function* rather
        than across the whole process.
        """
        return f"{self.function_name}-c{next(self._id_counter):08d}"

    # ------------------------------------------------------------- mutation
    def add(self, container: Container) -> None:
        if container.function_name != self.function_name:
            raise PlatformError("container belongs to a different function")
        seq = next(self._seq)
        self._containers.append(container)
        self.creation_log.append(container)
        self._index[container.container_id] = (seq, container)
        if container.is_warm:
            self._push(container)

    def _push(self, container: Container) -> None:
        entry = self._index.get(container.container_id)
        if entry is None:
            return
        seq, _ = entry
        heap = self._mru.setdefault(container.function_version, [])
        heapq.heappush(heap, (-container.last_used_at, seq, container))
        self._entry_lua[container.container_id] = container.last_used_at

    def touch(self, container: Container) -> None:
        """Re-index ``container`` after its ``last_used_at`` changed.

        Called by the platform after :meth:`Container.serve`.  While the
        sandbox is saturated (``in_use >= slot_capacity``) no entry is kept —
        :meth:`release` re-inserts it the moment a slot frees up.
        """
        cid = container.container_id
        if container.is_warm and self._in_use.get(cid, 0) < self.slot_capacity:
            self._push(container)
        else:
            self._entry_lua.pop(cid, None)

    def reserve(self, container_id: str) -> None:
        """Count one more in-flight execution on ``container_id``."""
        self._in_use[container_id] = self._in_use.get(container_id, 0) + 1

    def finish_serve(self, container: Container, timestamp: float) -> None:
        """Fused :meth:`Container.serve` + :meth:`touch` (columnar hot loop).

        One call instead of two on the per-invocation completion path; the
        state transitions are op-for-op those of ``serve`` followed by
        ``touch``, so pool bookkeeping stays bit-identical to the scalar
        engine's two-call sequence.
        """
        if container.state is ContainerState.EVICTED:
            raise PlatformError("cannot invoke an evicted container")
        container.invocations += 1
        if timestamp > container.last_used_at:
            container.last_used_at = timestamp
        container.state = ContainerState.WARM
        cid = container.container_id
        if self._in_use.get(cid, 0) < self.slot_capacity:
            self._push(container)
        else:
            self._entry_lua.pop(cid, None)

    def release(self, container_id: str) -> None:
        """Drop one in-flight execution; re-offer the sandbox if it frees up."""
        remaining = self._in_use.get(container_id, 0) - 1
        if remaining > 0:
            self._in_use[container_id] = remaining
        else:
            self._in_use.pop(container_id, None)
        entry = self._index.get(container_id)
        if entry is None:
            return
        _, container = entry
        if (
            container.is_warm
            and self._in_use.get(container_id, 0) < self.slot_capacity
            and self._entry_lua.get(container_id) != container.last_used_at
        ):
            self._push(container)

    def in_use_count(self, container_id: str) -> int:
        """In-flight executions currently hosted by ``container_id``."""
        return self._in_use.get(container_id, 0)

    def pick_mru(self, version: int) -> Container | None:
        """Most recently used warm sandbox of ``version`` with a free slot.

        O(log n) amortized: stale heap entries (evicted, re-used at a newer
        timestamp, or saturated) are discarded as they surface.  The returned
        container's index entry is consumed — the caller reserves it and the
        post-invocation :meth:`touch` re-inserts it.

        Ties on ``last_used_at`` resolve to the earliest-created sandbox,
        matching a linear ``max()`` scan over the pool in insertion order.
        """
        heap = self._mru.get(version)
        if not heap:
            return None
        capacity = self.slot_capacity
        while heap:
            neg_lua, seq, container = heap[0]
            heapq.heappop(heap)
            cid = container.container_id
            live = self._entry_lua.get(cid) == -neg_lua
            if not live:
                continue  # superseded by a newer entry for the same sandbox
            if not container.is_warm or self._in_use.get(cid, 0) >= capacity:
                # Dead or saturated: forget the entry; touch()/release()
                # will re-index the sandbox if it becomes offerable again.
                self._entry_lua.pop(cid, None)
                continue
            self._entry_lua.pop(cid, None)
            return container
        return None

    # -------------------------------------------------------------- queries
    def warm_containers(self, version: int | None = None) -> list[Container]:
        """Warm sandboxes, optionally restricted to a function version."""
        return [
            c
            for c in self._containers
            if c.is_warm and (version is None or c.function_version == version)
        ]

    def warm_count(self, version: int | None = None) -> int:
        return len(self.warm_containers(version))

    def all_containers(self) -> list[Container]:
        return list(self._containers)

    def total_created(self) -> int:
        return len(self.creation_log)

    def evict_all(self) -> int:
        """Evict every warm container; returns how many were evicted."""
        evicted = 0
        for container in self._containers:
            if container.is_warm:
                container.evict()
                evicted += 1
        self._mru.clear()
        self._entry_lua.clear()
        if evicted:
            self._needs_prune = True
        return evicted

    def evict(self, containers: list[Container]) -> None:
        for container in containers:
            container.evict()
            self._entry_lua.pop(container.container_id, None)
        if containers:
            self._needs_prune = True

    def prune(self) -> None:
        """Drop evicted containers from the bookkeeping structures.

        The creation log is left untouched: eviction policies hold cursors
        into it, and its memory cost is bounded by the number of cold starts,
        not the number of invocations.
        """
        if not self._needs_prune:
            return
        self._needs_prune = False
        self._containers = [c for c in self._containers if c.state is not ContainerState.EVICTED]
        self._index = {
            cid: entry for cid, entry in self._index.items() if entry[1].state is not ContainerState.EVICTED
        }

    def __iter__(self) -> Iterator[Container]:
        return iter(self._containers)

    def __len__(self) -> int:
        return len(self._containers)
