"""Empirical performance profiles of the simulated providers.

The numbers below encode the *relative* behaviours the paper measures in
Section 6 rather than absolute testbed numbers:

* AWS Lambda is the fastest platform on every workload and its warm
  invocations always reuse warm containers (Section 6.2 Q1/Q3).
* GCP is slightly slower on compute and noticeably slower on
  storage-bandwidth-bound benchmarks, produces spurious cold starts even for
  sequential calls, and its cold starts get *slower* at higher memory
  allocations (Section 6.2 Q2/Q3).
* Azure's consumption plan executes compute-bound Python benchmarks at
  AWS-like speed when invoked sequentially but degrades severely under
  concurrent invocations of Python function apps; its cold starts are cheap
  for big packages (function apps) but highly variable (Section 6.2 Q2/Q3).
* Invocation latency is linear in the payload size for warm invocations on
  all providers and for cold ones on AWS, while Azure/GCP cold invocations
  are erratic (Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Provider
from ..network.latency import NetworkProfile
from ..storage.latency import StorageProfile


@dataclass(frozen=True)
class ColdStartProfile:
    """Parameters of the cold-start path of one provider."""

    #: Fixed sandbox provisioning latency (scheduler + microVM/container boot).
    provisioning_s: float
    #: Bandwidth at which the code package is fetched from storage (MB/s).
    package_bandwidth_mbps: float
    #: Multiplier applied to the benchmark's runtime-initialisation time.
    init_multiplier: float
    #: Log-normal coefficient of variation of the provisioning latency.
    jitter_cv: float
    #: Additional provisioning penalty per GB of requested memory (models the
    #: smaller pool of high-memory containers on GCP, where high-memory cold
    #: starts are slower instead of faster).
    highmem_penalty_s_per_gb: float = 0.0
    #: Probability of an erratic scheduling delay on a cold start.
    erratic_probability: float = 0.0
    #: Scale (seconds) of the erratic delay when it happens.
    erratic_scale_s: float = 0.0


@dataclass(frozen=True)
class InvocationOverheadProfile:
    """Parameters of the request path between client and sandbox."""

    #: Fixed overhead of the HTTP gateway / front end.
    http_gateway_s: float
    #: Fixed overhead of an SDK-triggered invocation.
    sdk_overhead_s: float
    #: Effective bandwidth for uploading the invocation payload (MB/s).
    payload_bandwidth_mbps: float
    #: Effective bandwidth for downloading the function result (MB/s).
    response_bandwidth_mbps: float
    #: Log-normal coefficient of variation of the warm invocation overhead.
    warm_jitter_cv: float


@dataclass(frozen=True)
class ProviderPerformanceProfile:
    """Everything the simulator needs to know about one provider."""

    provider: Provider
    #: Multiplier on compute time relative to AWS (1.0 = AWS speed).
    compute_speed_factor: float
    #: Coefficient of variation of warm compute time.
    compute_jitter_cv: float
    #: Extra multiplier on jitter when invocations run concurrently.
    concurrency_jitter_factor: float
    #: Fixed per-invocation sandbox/runtime overhead added to provider time.
    runtime_overhead_s: float
    cold_start: ColdStartProfile
    invocation: InvocationOverheadProfile
    storage: StorageProfile
    network: NetworkProfile
    #: Probability that a sequential warm invocation still lands on a new
    #: container (GCP's spurious cold starts, Section 6.2 Q3 "Consistency").
    spurious_cold_start_probability: float = 0.0
    #: Memory sizes with a dynamically allocated consumption plan get this
    #: effective memory for CPU-share purposes.
    dynamic_memory_effective_mb: int = 1536
    extra: dict = field(default_factory=dict)


_AWS_PROFILE = ProviderPerformanceProfile(
    provider=Provider.AWS,
    compute_speed_factor=1.0,
    compute_jitter_cv=0.03,
    concurrency_jitter_factor=1.2,
    runtime_overhead_s=0.010,
    cold_start=ColdStartProfile(
        provisioning_s=0.35,
        package_bandwidth_mbps=110.0,
        init_multiplier=1.0,
        jitter_cv=0.15,
    ),
    invocation=InvocationOverheadProfile(
        http_gateway_s=0.055,
        sdk_overhead_s=0.030,
        payload_bandwidth_mbps=3.0,
        response_bandwidth_mbps=8.0,
        warm_jitter_cv=0.10,
    ),
    storage=StorageProfile(
        base_latency_s=0.018,
        peak_bandwidth_mbps=95.0,
        reference_memory_mb=1792,
        jitter_cv=0.22,
        contention_tail_probability=0.10,
        contention_slowdown=4.0,
    ),
    network=NetworkProfile(min_rtt_s=0.109, jitter_scale_s=0.004, asymmetry=0.62, bandwidth_mbps=55.0),
)

_GCP_PROFILE = ProviderPerformanceProfile(
    provider=Provider.GCP,
    compute_speed_factor=1.18,
    compute_jitter_cv=0.05,
    concurrency_jitter_factor=1.4,
    runtime_overhead_s=0.018,
    cold_start=ColdStartProfile(
        provisioning_s=0.55,
        package_bandwidth_mbps=60.0,
        init_multiplier=1.15,
        jitter_cv=0.30,
        highmem_penalty_s_per_gb=0.9,
        erratic_probability=0.25,
        erratic_scale_s=4.0,
    ),
    invocation=InvocationOverheadProfile(
        http_gateway_s=0.075,
        sdk_overhead_s=0.045,
        payload_bandwidth_mbps=2.4,
        response_bandwidth_mbps=6.0,
        warm_jitter_cv=0.12,
    ),
    storage=StorageProfile(
        base_latency_s=0.030,
        peak_bandwidth_mbps=42.0,
        reference_memory_mb=2048,
        jitter_cv=0.30,
        contention_tail_probability=0.08,
        contention_slowdown=3.5,
    ),
    network=NetworkProfile(min_rtt_s=0.033, jitter_scale_s=0.005, asymmetry=0.62, bandwidth_mbps=45.0),
    spurious_cold_start_probability=0.08,
)

_AZURE_PROFILE = ProviderPerformanceProfile(
    provider=Provider.AZURE,
    compute_speed_factor=1.10,
    compute_jitter_cv=0.08,
    concurrency_jitter_factor=3.5,
    runtime_overhead_s=0.060,
    cold_start=ColdStartProfile(
        provisioning_s=0.9,
        package_bandwidth_mbps=150.0,
        init_multiplier=0.7,
        jitter_cv=0.55,
        erratic_probability=0.35,
        erratic_scale_s=6.0,
    ),
    invocation=InvocationOverheadProfile(
        http_gateway_s=0.110,
        sdk_overhead_s=0.080,
        payload_bandwidth_mbps=2.0,
        response_bandwidth_mbps=5.0,
        warm_jitter_cv=0.25,
    ),
    storage=StorageProfile(
        base_latency_s=0.028,
        peak_bandwidth_mbps=60.0,
        reference_memory_mb=1536,
        jitter_cv=0.35,
        contention_tail_probability=0.10,
        contention_slowdown=3.0,
    ),
    network=NetworkProfile(min_rtt_s=0.020, jitter_scale_s=0.004, asymmetry=0.62, bandwidth_mbps=50.0),
    dynamic_memory_effective_mb=1536,
)

_IAAS_PROFILE = ProviderPerformanceProfile(
    provider=Provider.IAAS,
    compute_speed_factor=1.0,
    compute_jitter_cv=0.02,
    concurrency_jitter_factor=1.0,
    runtime_overhead_s=0.002,
    cold_start=ColdStartProfile(
        provisioning_s=0.0,
        package_bandwidth_mbps=1000.0,
        init_multiplier=0.0,
        jitter_cv=0.0,
    ),
    invocation=InvocationOverheadProfile(
        http_gateway_s=0.004,
        sdk_overhead_s=0.002,
        payload_bandwidth_mbps=12.0,
        response_bandwidth_mbps=12.0,
        warm_jitter_cv=0.05,
    ),
    storage=StorageProfile(
        base_latency_s=0.0015,
        peak_bandwidth_mbps=220.0,
        reference_memory_mb=1024,
        jitter_cv=0.08,
        contention_tail_probability=0.0,
        contention_slowdown=1.0,
    ),
    network=NetworkProfile(min_rtt_s=0.109, jitter_scale_s=0.003, asymmetry=0.55, bandwidth_mbps=60.0),
)

#: Storage profile used by the IaaS baseline when it accesses cloud object
#: storage (S3) instead of its local disk — the "IaaS, S3" row of Table 5.
IAAS_S3_STORAGE_PROFILE = StorageProfile(
    base_latency_s=0.020,
    peak_bandwidth_mbps=90.0,
    reference_memory_mb=1024,
    jitter_cv=0.20,
    contention_tail_probability=0.02,
    contention_slowdown=2.0,
)

_PROFILES: dict[Provider, ProviderPerformanceProfile] = {
    Provider.AWS: _AWS_PROFILE,
    Provider.GCP: _GCP_PROFILE,
    Provider.AZURE: _AZURE_PROFILE,
    Provider.IAAS: _IAAS_PROFILE,
    Provider.LOCAL: _IAAS_PROFILE,
}


def profile_for(provider: Provider) -> ProviderPerformanceProfile:
    """Return the performance profile of ``provider``."""
    return _PROFILES[provider]
