"""Cold-start overhead estimation (Section 6.2 Q2, Figure 4).

The paper estimates cold-start overhead as the distribution of ratios
``T_cold / T_warm`` over *all N² combinations* of N cold and N warm client
times.  On Azure, where a function-app instance serves many invocations and
"pure" cold runs are not representative, the cold side is replaced by
concurrent burst invocations that mix cold and warm executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ModelFitError
from ..stats.summary import DistributionSummary, summarize


@dataclass(frozen=True)
class ColdStartOverhead:
    """Distribution of cold/warm client-time ratios for one configuration."""

    benchmark: str
    provider: str
    memory_mb: int
    ratios: DistributionSummary
    cold_median_s: float
    warm_median_s: float

    @property
    def median_ratio(self) -> float:
        return self.ratios.median

    def to_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "provider": self.provider,
            "memory_mb": self.memory_mb,
            "median_ratio": round(self.ratios.median, 3),
            "p2_ratio": round(self.ratios.whisker_low, 3),
            "p98_ratio": round(self.ratios.whisker_high, 3),
            "cold_median_s": round(self.cold_median_s, 4),
            "warm_median_s": round(self.warm_median_s, 4),
        }


def cold_warm_ratio_distribution(cold_times: Sequence[float], warm_times: Sequence[float]) -> np.ndarray:
    """All N*M pairwise ratios of cold over warm times."""
    cold = np.asarray(list(cold_times), dtype=float)
    warm = np.asarray(list(warm_times), dtype=float)
    if cold.size == 0 or warm.size == 0:
        raise ModelFitError("both cold and warm measurements are required")
    if np.any(warm <= 0):
        raise ModelFitError("warm times must be positive")
    return (cold[:, None] / warm[None, :]).ravel()


def cold_start_overheads(
    benchmark: str,
    provider: str,
    memory_mb: int,
    cold_times: Sequence[float],
    warm_times: Sequence[float],
) -> ColdStartOverhead:
    """Summarise the cold/warm ratio distribution for one configuration."""
    ratios = cold_warm_ratio_distribution(cold_times, warm_times)
    return ColdStartOverhead(
        benchmark=benchmark,
        provider=provider,
        memory_mb=memory_mb,
        ratios=summarize(ratios),
        cold_median_s=float(np.median(cold_times)),
        warm_median_s=float(np.median(warm_times)),
    )
