"""Analytical models derived from SeBS experiments (Sections 6.2-6.5).

* :mod:`repro.models.eviction` — the container-eviction model
  ``D_warm = D_init * 2^-floor(dT/380s)`` and the optimal warm-batch size
  ``D_init_opt = n * t / P``.
* :mod:`repro.models.cold_start` — cold/warm overhead ratios computed from
  all N² combinations of cold and warm measurements (Figure 4).
* :mod:`repro.models.invocation_latency` — the linear payload-size/latency
  model with adjusted R² reporting (Figure 6).
* :mod:`repro.models.breakeven` — the FaaS-vs-IaaS break-even analysis
  (Table 6).
"""

from .breakeven import BreakEvenPoint, break_even_analysis
from .cold_start import ColdStartOverhead, cold_start_overheads
from .eviction import ContainerEvictionModel, fit_eviction_model, optimal_initial_batch
from .invocation_latency import PayloadLatencyModel, fit_payload_latency

__all__ = [
    "BreakEvenPoint",
    "break_even_analysis",
    "ColdStartOverhead",
    "cold_start_overheads",
    "ContainerEvictionModel",
    "fit_eviction_model",
    "optimal_initial_batch",
    "PayloadLatencyModel",
    "fit_payload_latency",
]
