"""FaaS-vs-IaaS break-even analysis (Section 6.3 Q3, Table 6).

A serverless deployment only bills active invocations, while a VM bills every
hour regardless of utilisation.  For a function whose single execution costs
``c`` dollars on FaaS and whose VM alternative costs ``r`` dollars per hour,
the break-even request rate is ``r / c`` requests per hour: below it the
function is cheaper, above it the VM wins (provided the VM can actually
sustain the rate — its throughput ceiling is reported alongside).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ExperimentError


@dataclass(frozen=True)
class BreakEvenPoint:
    """Break-even request rate of one benchmark configuration."""

    benchmark: str
    configuration: str
    cost_per_million_usd: float
    vm_hourly_cost_usd: float
    break_even_requests_per_hour: float
    iaas_local_requests_per_hour: float
    iaas_cloud_requests_per_hour: float

    @property
    def faas_cheaper_below(self) -> float:
        """Alias emphasising the interpretation of the break-even point."""
        return self.break_even_requests_per_hour

    @property
    def iaas_can_sustain_breakeven(self) -> bool:
        """Whether a single VM could even serve the break-even rate."""
        return self.iaas_cloud_requests_per_hour >= self.break_even_requests_per_hour

    def to_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "cost_per_1M_usd": round(self.cost_per_million_usd, 2),
            "break_even_req_per_hour": round(self.break_even_requests_per_hour),
            "iaas_local_req_per_hour": round(self.iaas_local_requests_per_hour),
            "iaas_cloud_req_per_hour": round(self.iaas_cloud_requests_per_hour),
            "vm_hourly_cost_usd": self.vm_hourly_cost_usd,
        }


def break_even_analysis(
    benchmark: str,
    configuration: str,
    cost_per_million_usd: float,
    vm_hourly_cost_usd: float,
    iaas_local_requests_per_hour: float,
    iaas_cloud_requests_per_hour: float,
) -> BreakEvenPoint:
    """Compute the request rate at which FaaS and IaaS cost the same per hour."""
    if cost_per_million_usd <= 0:
        raise ExperimentError("FaaS cost per million invocations must be positive")
    if vm_hourly_cost_usd <= 0:
        raise ExperimentError("VM hourly cost must be positive")
    cost_per_request = cost_per_million_usd / 1e6
    break_even = vm_hourly_cost_usd / cost_per_request
    return BreakEvenPoint(
        benchmark=benchmark,
        configuration=configuration,
        cost_per_million_usd=cost_per_million_usd,
        vm_hourly_cost_usd=vm_hourly_cost_usd,
        break_even_requests_per_hour=break_even,
        iaas_local_requests_per_hour=iaas_local_requests_per_hour,
        iaas_cloud_requests_per_hour=iaas_cloud_requests_per_hour,
    )
