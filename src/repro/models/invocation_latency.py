"""Linear payload-size/latency model (Section 6.4 Q2, Figure 6).

For warm invocations on all providers and cold invocations on AWS, the
invocation latency scales linearly with the payload size (adjusted R²
between 0.89 and 0.99 in the paper), i.e. network transmission is the only
major overhead of large inputs.  Cold invocations on Azure and GCP do not fit
a linear model — their latency is dominated by erratic scheduling delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ModelFitError
from ..stats.regression import LinearFit, fit_linear


@dataclass(frozen=True)
class PayloadLatencyModel:
    """A fitted latency(payload) line for one provider/start-type pair."""

    provider: str
    start_type: str
    fit: LinearFit

    @property
    def latency_per_mb_s(self) -> float:
        """Additional latency per megabyte of payload."""
        return self.fit.slope * 1024 * 1024

    @property
    def base_latency_s(self) -> float:
        """Latency of an (extrapolated) empty payload."""
        return self.fit.intercept

    @property
    def is_linear(self) -> bool:
        """Whether the linear model explains the data well (adj. R² >= 0.85)."""
        return self.fit.adjusted_r_squared >= 0.85

    def predict(self, payload_bytes: float) -> float:
        return float(self.fit.predict(payload_bytes))

    def to_row(self) -> dict:
        return {
            "provider": self.provider,
            "start_type": self.start_type,
            "base_latency_s": round(self.base_latency_s, 4),
            "latency_per_mb_s": round(self.latency_per_mb_s, 4),
            "adjusted_r_squared": round(self.fit.adjusted_r_squared, 4),
            "linear": self.is_linear,
        }


def fit_payload_latency(
    provider: str,
    start_type: str,
    payload_bytes: Sequence[float],
    latencies_s: Sequence[float],
) -> PayloadLatencyModel:
    """Fit latency against payload size for one provider and start type."""
    if len(payload_bytes) != len(latencies_s):
        raise ModelFitError("payload sizes and latencies must have the same length")
    fit = fit_linear(payload_bytes, latencies_s)
    return PayloadLatencyModel(provider=provider, start_type=start_type, fit=fit)
