"""Analytical container-eviction model (Section 6.5, Equations 1-2).

The Eviction-Model experiment observes, for different initial batch sizes
``D_init`` and waiting times ``dT``, how many containers are still warm.  The
paper finds the AWS policy deterministic and application agnostic, fitting

    D_warm = D_init * 2^-p,   p = floor(dT / 380s)                       (1)

with R² above 0.99, and derives the time-optimal initial batch size for
keeping ``n`` function instances warm with runtime ``t``:

    D_init_opt = n * t / P,   P = 380 s                                  (2)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ModelFitError
from ..stats.regression import r_squared

#: AWS eviction period measured by the paper (seconds).
DEFAULT_EVICTION_PERIOD_S = 380.0


@dataclass(frozen=True)
class ContainerEvictionModel:
    """The fitted half-life model of warm-container survival."""

    period_s: float
    r_squared: float
    n_observations: int

    def predict(self, initial_containers: int, elapsed_s: float) -> float:
        """Predicted number of warm containers after ``elapsed_s`` seconds."""
        if initial_containers < 0:
            raise ModelFitError("initial container count cannot be negative")
        if elapsed_s < 0:
            raise ModelFitError("elapsed time cannot be negative")
        periods = math.floor(elapsed_s / self.period_s)
        return initial_containers * 2.0 ** (-periods)

    def survival_fraction(self, elapsed_s: float) -> float:
        """Fraction of containers expected to survive ``elapsed_s`` seconds."""
        return self.predict(1, elapsed_s)


def predict_warm_containers(initial: int, elapsed_s: float, period_s: float = DEFAULT_EVICTION_PERIOD_S) -> float:
    """Equation (1) with the default 380 s period."""
    return ContainerEvictionModel(period_s=period_s, r_squared=1.0, n_observations=0).predict(initial, elapsed_s)


def fit_eviction_model(
    observations: Sequence[tuple[int, float, int]],
    candidate_periods_s: Sequence[float] | None = None,
) -> ContainerEvictionModel:
    """Fit the eviction period to ``(D_init, dT, D_warm)`` observations.

    The fit scans candidate periods (by default 20 s steps between 60 s and
    1200 s) and picks the one maximising R² between observed and predicted
    warm-container counts — mirroring how the paper recovers the 380 s period
    from black-box measurements.
    """
    if not observations:
        raise ModelFitError("eviction-model fit requires at least one observation")
    if candidate_periods_s is None:
        candidate_periods_s = np.arange(60.0, 1200.0 + 1e-9, 20.0)

    observed = np.array([float(d_warm) for _, _, d_warm in observations])
    best_period = None
    best_r2 = -np.inf
    for period in candidate_periods_s:
        predicted = np.array(
            [d_init * 2.0 ** (-math.floor(dt / period)) for d_init, dt, _ in observations]
        )
        score = r_squared(observed, predicted)
        if score > best_r2:
            best_r2 = score
            best_period = float(period)
    assert best_period is not None
    return ContainerEvictionModel(period_s=best_period, r_squared=float(best_r2), n_observations=len(observations))


def optimal_initial_batch(
    instances_needed: int,
    function_runtime_s: float,
    period_s: float = DEFAULT_EVICTION_PERIOD_S,
) -> int:
    """Equation (2): the time-optimal invocation batch size.

    Given that the user needs ``instances_needed`` warm instances of a
    function with runtime ``function_runtime_s``, the paper derives the batch
    size that keeps enough containers warm without over-invoking:
    ``D_init_opt = n * t / P``.
    """
    if instances_needed <= 0:
        raise ModelFitError("instances_needed must be positive")
    if function_runtime_s <= 0:
        raise ModelFitError("function_runtime_s must be positive")
    if period_s <= 0:
        raise ModelFitError("period_s must be positive")
    return max(1, math.ceil(instances_needed * function_runtime_s / period_s))
