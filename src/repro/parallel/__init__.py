"""Deterministic sharded parallel replay.

Partitions a workload (or workflow arrival stream) into function-disjoint
shards, replays each shard on its own rebuilt platform — sequentially
in-process or across ``multiprocessing`` workers — and merges the results
deterministically.  The headline guarantee, pinned by
``tests/test_parallel_equivalence.py``: **parallel results are bit-identical
(record mode) or exactly mergeable (streaming mode) to serial replay**, on
any worker count and either backend.

Layout:

* :mod:`~repro.parallel.plan` — :class:`ShardPlanner`: per-function /
  per-component partitioning with LPT load balancing over invocation counts;
* :mod:`~repro.parallel.snapshot` — :class:`PlatformSnapshot`: the
  picklable recipe workers rebuild fresh platforms from;
* :mod:`~repro.parallel.executor` — the sequential reference backend, the
  process backend, and the :func:`run_workload_sharded` /
  :func:`run_workflows_sharded` entry points
  (``SimulatedPlatform.run_workload(..., workers=N)`` delegates here);
* :mod:`~repro.parallel.merge` — deterministic shard-outcome merging, with
  the exact-vs-approximate contract documented per statistic;
* :mod:`~repro.parallel.supervisor` — :class:`ShardSupervisor`: heartbeat
  timeouts, bounded retries with backoff, pool-breakage recovery, graceful
  degradation and poison-shard quarantine (opt-in via
  :class:`SupervisorConfig`);
* :mod:`~repro.parallel.checkpoint` — :class:`CheckpointStore`: atomic
  per-shard outcome persistence keyed by a plan fingerprint, powering
  ``checkpoint_dir=... , resume=True`` crash recovery.
"""

from .checkpoint import CheckpointStore, plan_fingerprint
from .executor import BACKENDS, run_workload_sharded, run_workflows_sharded
from .merge import (
    TraceShardOutcome,
    WorkflowShardOutcome,
    merge_trace_outcomes,
    merge_workflow_outcomes,
)
from .plan import ScenarioShard, ShardPlanner, TraceShard, WorkflowShard
from .snapshot import FunctionSnapshot, PlatformSnapshot
from .supervisor import (
    InjectedWorkerFault,
    ShardFault,
    ShardSupervisor,
    SupervisionReport,
    SupervisorConfig,
    WorkerFaultInjection,
)

__all__ = [
    "BACKENDS",
    "CheckpointStore",
    "FunctionSnapshot",
    "InjectedWorkerFault",
    "PlatformSnapshot",
    "ScenarioShard",
    "ShardFault",
    "ShardPlanner",
    "ShardSupervisor",
    "SupervisionReport",
    "SupervisorConfig",
    "TraceShard",
    "TraceShardOutcome",
    "WorkerFaultInjection",
    "WorkflowShard",
    "WorkflowShardOutcome",
    "merge_trace_outcomes",
    "merge_workflow_outcomes",
    "plan_fingerprint",
    "run_workload_sharded",
    "run_workflows_sharded",
]
