"""Shard-outcome checkpointing: crash/SIGKILL-survivable sharded replay.

A sharded replay is a bag of independent, pure shard computations — which
makes it checkpointable *for free*: persisting each completed
:class:`~repro.parallel.merge.TraceShardOutcome` /
:class:`~repro.parallel.merge.WorkflowShardOutcome` as it lands lets a
re-run replay only the missing shards, and the merged result is byte
identical to an uninterrupted run because the merge is a deterministic
function of the outcome set (sorted by shard index) and every persisted
outcome *is* the outcome a fresh replay of that shard would produce.

Two safety properties:

* **Atomicity** — each outcome is pickled, digest-prefixed, written to a
  same-directory temp file and published with ``os.replace``.  A crash
  mid-write leaves a temp file, never a truncated checkpoint; a crash
  between checkpoints loses at most the shards in flight.
* **Keying** — checkpoints live under a *plan fingerprint*: a SHA-256
  over the platform recipe (provider class, simulation config incl. seed,
  clock, deployed functions), ``keep_records``, and every shard's full
  content (for trace shards, each request; for scenario shards, the
  recipe + seed; for workflow shards, each arrival).  Any change to the
  workload, the seed, the config or the sharding lands in a different
  directory, so ``resume=True`` can never splice stale outcomes into a
  different plan.  Corrupt, truncated or mismatched checkpoint files are
  ignored (the shard simply replays); misuse of the store itself raises
  :class:`~repro.exceptions.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import pickle
import re
from pathlib import Path
from typing import Mapping, Sequence

from ..exceptions import CheckpointError
from ..utils.io import atomic_write_bytes
from .plan import ScenarioShard, TraceShard, WorkflowShard
from .snapshot import PlatformSnapshot

#: Bumped whenever the checkpoint file or fingerprint layout changes.
_FORMAT_VERSION = 1

_CHECKPOINT_NAME = re.compile(r"^shard_(\d{5})\.ckpt$")


def _update_shard(hasher, shard) -> None:
    """Feed one shard's identity into the fingerprint, streamed.

    Trace shards can carry millions of requests; hashing them one repr at
    a time keeps peak memory at one request's repr, not the whole shard's.
    """
    if isinstance(shard, TraceShard):
        hasher.update(f"trace:{shard.index}:{len(shard.requests)}".encode())
        for index, request in shard.requests:
            hasher.update(f"{index}:{request!r}".encode())
    elif isinstance(shard, ScenarioShard):
        hasher.update(
            f"scenario:{shard.index}:{shard.scenario_name}:{shard.seed}:"
            f"{shard.duration_s}:{shard.sources!r}".encode()
        )
    elif isinstance(shard, WorkflowShard):
        hasher.update(f"workflow:{shard.index}:{len(shard.arrivals)}".encode())
        for index, arrival in shard.arrivals:
            hasher.update(f"{index}:{arrival!r}".encode())
    else:  # a custom shard type: fall back to its own repr
        hasher.update(repr(shard).encode())


def plan_fingerprint(
    snapshot: PlatformSnapshot, shards: Sequence, keep_records: bool
) -> str:
    """SHA-256 hex fingerprint of one replay plan.

    Every input that determines a shard outcome is covered: the platform
    rebuild recipe (class, simulation config including the seed, clock
    start, function packages/configs), the record/streaming mode, and the
    full shard contents.  All components are frozen dataclasses or enums
    with value-based reprs, so the fingerprint is stable across processes
    and runs.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{_FORMAT_VERSION}".encode())
    hasher.update(
        f"{snapshot.platform_class.__module__}.{snapshot.platform_class.__qualname__}".encode()
    )
    hasher.update(repr(snapshot.simulation).encode())
    hasher.update(repr(snapshot.clock_start).encode())
    for function in snapshot.functions:
        hasher.update(repr(function).encode())
    hasher.update(repr(snapshot.init_kwargs).encode())
    hasher.update(f"keep_records:{keep_records}".encode())
    for shard in shards:
        _update_shard(hasher, shard)
    return hasher.hexdigest()


class CheckpointStore:
    """Atomically persists and reloads shard outcomes for one replay plan."""

    def __init__(self, directory: Path | str, fingerprint: str):
        self.fingerprint = fingerprint
        self.directory = Path(directory) / fingerprint[:32]
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {error}"
            ) from error

    @classmethod
    def for_plan(
        cls,
        directory: Path | str,
        snapshot: PlatformSnapshot,
        shards: Sequence,
        keep_records: bool,
    ) -> "CheckpointStore":
        return cls(directory, plan_fingerprint(snapshot, shards, keep_records))

    def _path(self, shard_index: int) -> Path:
        return self.directory / f"shard_{shard_index:05d}.ckpt"

    def store(self, outcome) -> Path:
        """Persist one completed shard outcome (tmp + rename + digest)."""
        payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        return atomic_write_bytes(
            self._path(outcome.shard_index), digest.encode("ascii") + b"\n" + payload
        )

    def load(self) -> Mapping[int, object]:
        """Reload every intact checkpoint as ``{shard_index: outcome}``.

        Unreadable, truncated, digest-mismatched or misnamed files are
        skipped — the shard will simply be replayed — so a checkpoint
        directory can never make a resume *worse* than a fresh run.
        """
        outcomes: dict[int, object] = {}
        for path in sorted(self.directory.iterdir()):
            match = _CHECKPOINT_NAME.match(path.name)
            if match is None:
                continue
            try:
                blob = path.read_bytes()
                digest, _, payload = blob.partition(b"\n")
                if digest.decode("ascii") != hashlib.sha256(payload).hexdigest():
                    continue
                outcome = pickle.loads(payload)
            except Exception:
                continue
            if getattr(outcome, "shard_index", None) != int(match.group(1)):
                continue
            outcomes[outcome.shard_index] = outcome
        return outcomes
