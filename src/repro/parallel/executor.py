"""Shard execution backends and the sharded-replay entry points.

Two backends run the shards produced by :mod:`repro.parallel.plan`:

* **sequential** — every shard replays in-process, one after another, each
  on its own freshly rebuilt platform.  This is the *reference backend*:
  zero concurrency, zero pickling, and the backend ``workers=1`` resolves
  to.  The equivalence suite pins its output bit-identical to a plain
  serial :meth:`~repro.simulator.platform_sim.SimulatedPlatform.run_workload`.
* **process** — shards run on a ``multiprocessing`` pool (``fork`` start
  method where available, ``spawn`` otherwise), at most ``workers``
  concurrently.  Because a shard's result is a pure function of the
  snapshot and the shard — no shared state, no cross-shard draws — the
  process backend produces byte-identical merged results to the sequential
  one, just faster.

Merged-result semantics (see :mod:`repro.parallel.merge` for the details):
record-mode merges are bit-identical to serial replay; streaming-mode
merges are exact for counts, sums, min and max, and carry each function's
reservoir percentile state over unchanged (a function lives in exactly one
shard, so its merged percentiles are byte-identical to serial).  Only
``wall_clock_s`` (a measurement, not a simulation output) and
``peak_in_flight`` (max over shards wherever the merged records' intervals
are unavailable — streaming mode, and workflow merges in both modes — a
lower bound on the cross-shard global peak) differ from serial replay.

Robustness is layered on without touching the merge contract: the
unsupervised process backend **fails fast** (first shard failure cancels
every still-pending shard), an optional
:class:`~repro.parallel.supervisor.SupervisorConfig` adds heartbeat
timeouts / bounded retries / pool rebuild / quarantine, and an optional
``checkpoint_dir`` + ``resume`` pair persists completed shard outcomes so
an interrupted replay re-runs only what is missing
(:mod:`repro.parallel.checkpoint`) — all of which reproduce the
uninterrupted result byte for byte, because each shard outcome is a pure
function of ``(snapshot, shard)``.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..exceptions import CheckpointError, ConfigurationError
from ..faas.invocation import InvocationRequest
from ..utils.rng import RandomStreams
from ..workload.engine import WorkloadEngine, WorkloadResult, _ReplayAccumulator
from ..workload.scenario import Scenario
from ..workload.trace import WorkloadTrace
from ..workflows.engine import WorkflowEngine, fold_workflow_results
from ..workflows.spec import WorkflowArrival
from .checkpoint import CheckpointStore
from .merge import (
    TraceShardOutcome,
    WorkflowShardOutcome,
    merge_trace_outcomes,
    merge_workflow_outcomes,
)
from .plan import ScenarioShard, ShardPlanner, TraceShard, WorkflowShard
from .snapshot import PlatformSnapshot
from .supervisor import ShardSupervisor, SupervisorConfig

#: Backend names accepted by the ``backend`` parameters.
BACKENDS = ("sequential", "process")


def _resolve_backend(backend: str | None, workers: int) -> str:
    if backend is None:
        return "sequential" if workers == 1 else "process"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    return backend


def _shard_requests(shard: TraceShard | ScenarioShard) -> Iterable[InvocationRequest]:
    """The time-sorted request stream of one shard, synthesizing if needed."""
    if isinstance(shard, TraceShard):
        return (request for _, request in shard.requests)
    streams = RandomStreams(shard.seed).fork("workload", shard.scenario_name)
    traces = [
        WorkloadTrace.synthesize(
            traffic.function_name,
            traffic.process,
            shard.duration_s,
            rng=streams.stream("arrivals", f"{source_index}:{traffic.function_name}"),
            payload=traffic.payload,
            payload_bytes=traffic.payload_bytes,
            trigger=traffic.trigger,
        )
        for source_index, traffic in shard.sources
    ]
    return WorkloadTrace.merge(*traces)


def _shard_series(platform, timeseries):
    """Build and attach a shard-local time-series builder, if requested.

    The builder observes the shard exactly as a serial attached builder
    would: container create/evict via the platform hooks, crash evictions
    via the engine observer, records folded in stream order by the caller.
    Shards are function-disjoint and one function's records keep their
    serial relative order within the shard stream, so each
    per-``(function, window)`` reservoir ingests the same values at the
    same indices as serially — the merged union is then byte-identical
    (see :mod:`repro.observe.timeseries`).
    """
    if timeseries is None:
        return None
    builder = timeseries.build()
    platform._observer = builder
    return builder


def _replay_trace_shard(
    snapshot: PlatformSnapshot,
    shard: TraceShard | ScenarioShard,
    keep_records: bool,
    timeseries=None,
) -> TraceShardOutcome:
    """Worker entry point: rebuild the platform, replay one shard."""
    platform = snapshot.build(shard.functions)
    engine = WorkloadEngine(platform)
    series = _shard_series(platform, timeseries)
    if series is not None:
        engine.observer = series
    requests = _shard_requests(shard)
    # Columnar fast path: ship the parallel arrays (record mode) or fold in
    # the worker (streaming) instead of materialising record objects.
    # Time-series shards and controlled replays fall through to the scalar
    # loop — the draw blocks installed on the rebuilt platform keep those
    # bit-identical through the stream shims.
    columnar_ok = (
        series is None
        and getattr(platform, "_columnar", False)
        and not getattr(platform, "_controlled_replay", False)
        and not platform.execute_kernels
    )
    if keep_records:
        if not isinstance(shard, TraceShard):
            raise ConfigurationError("record-mode shards must carry materialised requests")
        # Thread the *global* stream indices through the replay: each record
        # reports the index of the request that produced it, which stays
        # correct even when the overload model resolves requests out of
        # arrival order (retries, admission queueing).
        if columnar_ok:
            from ..columnar.engine import replay_collect

            block = replay_collect(
                engine, requests, positions=(index for index, _ in shard.requests)
            )
            return TraceShardOutcome(
                shard_index=shard.index,
                records=None,
                accumulator=None,
                peak_in_flight=engine.last_peak_in_flight,
                timeseries=None,
                columnar=block,
            )
        records = []
        for record in engine.stream(requests, positions=(index for index, _ in shard.requests)):
            if series is not None:
                series.observe_record(record)
            records.append(record)
        indexed = [(record.request_index, record) for record in records]
        return TraceShardOutcome(
            shard_index=shard.index,
            records=indexed,
            accumulator=None,
            peak_in_flight=engine.last_peak_in_flight,
            timeseries=series,
        )
    accumulator = _ReplayAccumulator()
    positions = (
        (index for index, _ in shard.requests) if isinstance(shard, TraceShard) else None
    )
    if columnar_ok:
        from ..columnar.engine import replay_fold

        replay_fold(engine, requests, accumulator, positions=positions)
        return TraceShardOutcome(
            shard_index=shard.index,
            records=None,
            accumulator=accumulator,
            peak_in_flight=engine.last_peak_in_flight,
            timeseries=None,
        )
    for record in engine.stream(requests, positions=positions):
        if series is not None:
            series.observe_record(record)
        accumulator.add(record)
    return TraceShardOutcome(
        shard_index=shard.index,
        records=None,
        accumulator=accumulator,
        peak_in_flight=engine.last_peak_in_flight,
        timeseries=series,
    )


def _replay_workflow_shard(
    snapshot: PlatformSnapshot,
    shard: WorkflowShard,
    keep_records: bool,
    timeseries=None,
) -> WorkflowShardOutcome:
    """Worker entry point: rebuild the platform, replay one workflow shard."""
    platform = snapshot.build(shard.functions)
    engine = WorkflowEngine(platform)
    series = _shard_series(platform, timeseries)
    accumulators, executions, first_submitted, last_finished = fold_workflow_results(
        engine.stream(
            (arrival for _, arrival in shard.arrivals),
            execution_indices=(index for index, _ in shard.arrivals),
            observer=series,
        ),
        keep_records=keep_records,
    )
    return WorkflowShardOutcome(
        shard_index=shard.index,
        accumulators=accumulators,
        executions=executions,
        first_submitted=first_submitted,
        last_finished=last_finished,
        peak_in_flight=engine.last_peak_in_flight,
        timeseries=series,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _execute(
    worker,
    snapshot: PlatformSnapshot,
    shards,
    keep_records: bool,
    workers: int,
    backend: str,
    supervision: SupervisorConfig | None = None,
    on_complete: Callable[[object], None] | None = None,
):
    """Run ``worker(snapshot, shard, keep_records)`` for every shard.

    Returns ``(outcomes, supervision_report_dict_or_None)`` with outcomes
    in shard order.  ``on_complete`` fires once per completed outcome, as
    it lands (checkpoint persistence hook).  With ``supervision`` set the
    shards route through :class:`~repro.parallel.supervisor.ShardSupervisor`
    (timeouts, retries, pool rebuild, quarantine); without it, failures
    **fail fast**: the first shard exception cancels every still-pending
    shard instead of letting doomed work run to completion.
    """
    if supervision is not None:
        supervisor = ShardSupervisor(
            worker, snapshot, keep_records, workers, supervision, on_complete=on_complete
        )
        if backend == "sequential" or len(shards) <= 1:
            outcomes = supervisor.execute_sequential(shards)
        else:
            outcomes = supervisor.execute(shards, _mp_context())
        return outcomes, supervisor.report.to_dict()
    if backend == "sequential" or len(shards) <= 1:
        outcomes = []
        for shard in shards:
            outcome = worker(snapshot, shard, keep_records)
            if on_complete is not None:
                on_complete(outcome)
            outcomes.append(outcome)
        return outcomes, None
    with ProcessPoolExecutor(
        max_workers=min(workers, len(shards)), mp_context=_mp_context()
    ) as pool:
        future_map = {
            pool.submit(worker, snapshot, shard, keep_records): shard for shard in shards
        }
        completed: dict[int, object] = {}
        try:
            for future in as_completed(future_map):
                outcome = future.result()
                if on_complete is not None:
                    on_complete(outcome)
                completed[future_map[future].index] = outcome
        except BaseException:
            # Fail fast: a doomed merge cannot use the remaining shards, so
            # don't let them burn wall-clock.  Running shards finish their
            # current task; queued ones never start.
            for future in future_map:
                future.cancel()
            raise
        return [completed[shard.index] for shard in shards], None


def _resolve_series_spec(timeseries):
    """Normalise ``timeseries`` into a picklable spec (or ``None``)."""
    if timeseries is None:
        return None
    from ..observe.timeseries import TimeSeriesSpec

    if isinstance(timeseries, TimeSeriesSpec):
        return timeseries
    return TimeSeriesSpec(window_s=float(timeseries))


def _merge_shard_series(spec, outcomes):
    """Fold shard-local builders into one, in shard-index order (exact)."""
    builder = spec.build()
    for outcome in sorted(outcomes, key=lambda outcome: outcome.shard_index):
        series = getattr(outcome, "timeseries", None)
        if series is None:
            raise CheckpointError(
                f"shard {outcome.shard_index} outcome carries no time series — "
                "it was checkpointed by a replay that did not request one; "
                "re-run without resume=True (or without timeseries=) to rebuild it"
            )
        builder.merge(series)
    return builder


def _open_store(
    checkpoint_dir: Path | str | None,
    resume: bool,
    snapshot: PlatformSnapshot,
    shards,
    keep_records: bool,
):
    """Resolve the checkpoint store and the already-completed outcomes."""
    if checkpoint_dir is None:
        if resume:
            raise CheckpointError("resume=True requires a checkpoint_dir")
        return None, {}
    store = CheckpointStore.for_plan(checkpoint_dir, snapshot, shards, keep_records)
    return store, (dict(store.load()) if resume else {})


def run_workload_sharded(
    platform,
    trace: WorkloadTrace | Scenario | Iterable[InvocationRequest],
    *,
    workers: int,
    keep_records: bool = True,
    backend: str | None = None,
    trace_seed: int | None = None,
    supervision: SupervisorConfig | None = None,
    checkpoint_dir: Path | str | None = None,
    resume: bool = False,
    timeseries=None,
    profile: bool = False,
) -> WorkloadResult:
    """Sharded trace replay: partition, replay per shard, merge.

    ``trace`` may be a trace / request iterable (partitioned exactly, with
    global indices) or a :class:`~repro.workload.scenario.Scenario`
    (streaming mode only: each worker synthesizes its own shard's arrivals,
    so nothing is materialised in the parent).  Note that partitioning a
    trace or iterable necessarily **materialises every request in the
    parent** (per-function shard lists, pickled to workers) — a lazy
    request generator loses its O(functions) memory property here, so ship
    million-invocation sharded replays as a ``Scenario`` recipe instead.
    The parent ``platform`` is only snapshotted — it is not mutated by the
    replay.  ``trace_seed`` is the seed the scenario's arrivals derive from
    (default: the platform's simulation seed, matching how the experiments
    build their traces); it is ignored for already-materialised traces.

    ``supervision`` routes the shards through the
    :class:`~repro.parallel.supervisor.ShardSupervisor` recovery ladder
    (heartbeat timeouts, bounded retries, pool rebuild, degradation,
    quarantine); the report lands on ``result.supervision``.
    ``checkpoint_dir`` persists each completed shard outcome atomically
    under the plan fingerprint; ``resume=True`` reloads intact checkpoints
    and replays only the missing shards — the merged result is byte
    identical to an uninterrupted run (``wall_clock_s`` aside, which is a
    measurement of *this* run).

    ``wall_clock_s`` covers everything from snapshot capture through
    planning, shard replay and the merge — both sharded entry points time
    the same phases, so workload and workflow throughput figures compare
    like for like.

    ``timeseries`` (a :class:`~repro.observe.timeseries.TimeSeriesSpec` or
    bare window width in seconds) has every shard build a local builder
    and folds them at merge time — exactly equal to a serial attached
    series.  ``profile=True`` decomposes the host wall clock into
    ``plan`` / ``shards`` / ``merge`` phases on ``result.profile``
    (carrying the supervision report when the replay ran supervised).
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    wall_start = time.perf_counter()
    spec = _resolve_series_spec(timeseries)
    profiler = None
    if profile:
        from ..observe.profile import ProfileBuilder

        profiler = ProfileBuilder()
    plan_phase = profiler.phase("plan") if profiler is not None else nullcontext()
    with plan_phase:
        backend = _resolve_backend(backend, workers)
        snapshot = PlatformSnapshot.capture(platform)
        planner = ShardPlanner()
        if isinstance(trace, Scenario):
            if keep_records:
                raise ConfigurationError(
                    "scenario sharding is streaming-only (keep_records=False): exact "
                    "record ordering requires a materialised trace — build one with "
                    "scenario.build_trace() first"
                )
            seed = platform.simulation.seed if trace_seed is None else trace_seed
            shards: Sequence = planner.plan_scenario(trace, seed, workers)
            deployed = set(platform.functions())
            for shard in shards:
                missing = [fname for fname in shard.functions if fname not in deployed]
                if missing:
                    raise ConfigurationError(
                        f"scenario references undeployed functions: {missing}"
                    )
        else:
            shards = planner.plan_trace(iter(trace), workers)
            for shard in shards:
                for fname in shard.functions:
                    platform.get_function(fname)  # unknown names fail before any replay
        store, preloaded = _open_store(checkpoint_dir, resume, snapshot, shards, keep_records)
        todo = [shard for shard in shards if shard.index not in preloaded]
    worker = (
        _replay_trace_shard
        if spec is None
        else functools.partial(_replay_trace_shard, timeseries=spec)
    )
    shard_phase = profiler.phase("shards") if profiler is not None else nullcontext()
    with shard_phase:
        outcomes, report = _execute(
            worker,
            snapshot,
            todo,
            keep_records,
            workers,
            backend,
            supervision=supervision,
            on_complete=store.store if store is not None else None,
        )
    outcomes = list(outcomes) + list(preloaded.values())
    merge_phase = profiler.phase("merge") if profiler is not None else nullcontext()
    with merge_phase:
        wall_clock_s = time.perf_counter() - wall_start
        result = merge_trace_outcomes(
            platform.provider, outcomes, keep_records=keep_records, wall_clock_s=wall_clock_s
        )
        if spec is not None:
            result.timeseries = _merge_shard_series(spec, outcomes)
    result.supervision = report
    if profiler is not None:
        result.profile = profiler.build(supervision=report)
    return result


def run_workflows_sharded(
    platform,
    arrivals: Sequence[WorkflowArrival],
    *,
    workers: int,
    keep_records: bool = True,
    backend: str | None = None,
    supervision: SupervisorConfig | None = None,
    checkpoint_dir: Path | str | None = None,
    resume: bool = False,
    timeseries=None,
    profile: bool = False,
):
    """Sharded workflow replay: component partition, replay, merge.

    Execution indices from the unsharded arrival order ride along with each
    shard, so trigger-edge delays (hash-seeded by execution key) are
    identical to serial replay.  In record mode the merged ``executions``
    list is in canonical execution-index order (serial replay yields them
    in completion order; sort by ``execution_index`` to compare).

    ``supervision`` / ``checkpoint_dir`` / ``resume`` / ``timeseries`` /
    ``profile`` behave exactly as in :func:`run_workload_sharded`.
    ``wall_clock_s`` starts before arrival materialisation and shard
    planning — the same phases the workload entry point times.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    wall_start = time.perf_counter()
    spec = _resolve_series_spec(timeseries)
    profiler = None
    if profile:
        from ..observe.profile import ProfileBuilder

        profiler = ProfileBuilder()
    plan_phase = profiler.phase("plan") if profiler is not None else nullcontext()
    with plan_phase:
        backend = _resolve_backend(backend, workers)
        snapshot = PlatformSnapshot.capture(platform)
        arrivals = list(arrivals)
        shards = ShardPlanner().plan_workflows(arrivals, workers)
        deployed = set(platform.functions())
        for shard in shards:
            missing = [fname for fname in shard.functions if fname not in deployed]
            if missing:
                raise ConfigurationError(
                    f"workflow arrivals reference undeployed functions: {missing}"
                )
        store, preloaded = _open_store(checkpoint_dir, resume, snapshot, shards, keep_records)
        todo = [shard for shard in shards if shard.index not in preloaded]
    worker = (
        _replay_workflow_shard
        if spec is None
        else functools.partial(_replay_workflow_shard, timeseries=spec)
    )
    shard_phase = profiler.phase("shards") if profiler is not None else nullcontext()
    with shard_phase:
        outcomes, report = _execute(
            worker,
            snapshot,
            todo,
            keep_records,
            workers,
            backend,
            supervision=supervision,
            on_complete=store.store if store is not None else None,
        )
    outcomes = list(outcomes) + list(preloaded.values())
    merge_phase = profiler.phase("merge") if profiler is not None else nullcontext()
    with merge_phase:
        wall_clock_s = time.perf_counter() - wall_start
        result = merge_workflow_outcomes(
            platform.provider, outcomes, keep_records=keep_records, wall_clock_s=wall_clock_s
        )
        if spec is not None:
            result.timeseries = _merge_shard_series(spec, outcomes)
    result.supervision = report
    if profiler is not None:
        result.profile = profiler.build(supervision=report)
    return result
