"""Platform snapshots: rebuild an identical deployment inside a worker.

Sharded replay cannot ship a live :class:`~repro.simulator.platform_sim.SimulatedPlatform`
to a worker process — it holds generators, heaps and weak maps mid-state.
What it *can* ship is the recipe: the platform class, the simulation
configuration, the clock position and the deployed functions' packages and
configurations.  Because every per-function random stream is derived from
``(seed, stream kind, function name)`` — never from creation order — a
platform rebuilt from the recipe with any *subset* of the functions draws
exactly the numbers the original full deployment would have drawn for those
functions.

Snapshots require a **freshly deployed** platform (no invocation has ever
run): once sandboxes exist and streams have advanced, that state cannot be
reproduced from a recipe, so :meth:`PlatformSnapshot.capture` refuses.
``execute_kernels`` deployments are refused too — kernels read and write
one shared object store, which sharding cannot partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..benchmarks.base import InputSize
from ..config import FunctionConfig, SimulationConfig
from ..exceptions import ConfigurationError
from ..faas.function import CodePackage
from ..utils.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform


@dataclass(frozen=True)
class FunctionSnapshot:
    """The deployment recipe of one function."""

    fname: str
    package: CodePackage
    config: FunctionConfig
    input_size: InputSize


@dataclass(frozen=True)
class PlatformSnapshot:
    """A picklable recipe that rebuilds an identical fresh deployment."""

    platform_class: type
    simulation: SimulationConfig
    clock_start: float
    functions: tuple[FunctionSnapshot, ...]
    #: Extra constructor kwargs the platform class needs to be rebuilt
    #: faithfully (e.g. IaaS ``use_cloud_storage``), as sorted pairs.
    init_kwargs: tuple[tuple[str, object], ...] = ()

    @classmethod
    def capture(cls, platform: "SimulatedPlatform") -> "PlatformSnapshot":
        if platform.execute_kernels:
            raise ConfigurationError(
                "sharded replay does not support execute_kernels=True: kernels "
                "share one object store, which cannot be partitioned per shard"
            )
        for state in platform._state.values():
            if state.pool.creation_log or state.history:
                raise ConfigurationError(
                    "sharded replay requires a freshly deployed platform "
                    f"(function {state.pool.function_name!r} has already served "
                    "invocations; its sandbox/stream state cannot be rebuilt in workers)"
                )
        functions = tuple(
            FunctionSnapshot(
                fname=fname,
                package=platform.get_function(fname).package,
                config=platform.get_function(fname).config,
                input_size=platform._runtime_state(fname).input_size,
            )
            for fname in platform.functions()
        )
        return cls(
            platform_class=type(platform),
            simulation=platform.simulation,
            clock_start=platform.clock.now(),
            functions=functions,
            init_kwargs=tuple(sorted(platform._snapshot_init_kwargs().items())),
        )

    def build(self, only_functions: tuple[str, ...] | None = None) -> "SimulatedPlatform":
        """Instantiate the platform and deploy (a subset of) its functions.

        Deploying only a shard's functions is safe *because* of the
        name-keyed stream derivation: the other functions' absence changes
        no draw the shard's functions make.  It also keeps worker start-up
        O(shard) instead of O(deployment).
        """
        platform = self.platform_class(
            simulation=self.simulation,
            clock=VirtualClock(self.clock_start),
            **dict(self.init_kwargs),
        )
        wanted = None if only_functions is None else set(only_functions)
        for snapshot in self.functions:
            if wanted is not None and snapshot.fname not in wanted:
                continue
            platform.create_function(snapshot.fname, snapshot.package, snapshot.config)
            platform.set_input_size(snapshot.fname, snapshot.input_size)
        return platform
