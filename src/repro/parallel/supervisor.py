"""Supervised shard execution: timeouts, retries, and graceful degradation.

The plain process backend in :mod:`repro.parallel.executor` collects bare
``future.result()`` calls: one OOM-killed or wedged worker loses the whole
replay.  :class:`ShardSupervisor` wraps the pool with the recovery ladder a
long replay needs, climbing one rung at a time:

1. **Heartbeats, not result timeouts.**  Every shard attempt registers a
   beat (pid, monotonic timestamp, attempt number) in a shared
   :class:`multiprocessing.Manager` dict and re-beats every
   ``heartbeat_interval_s`` from a daemon thread.  A *slow* shard keeps
   beating and is left alone — the point of heartbeats over
   ``result(timeout=)`` — while a shard whose beat goes stale for
   ``shard_timeout_s`` is presumed wedged and its worker is SIGKILLed.
2. **Bounded retries with exponential backoff.**  A failed attempt (clean
   exception, killed worker, or pool breakage while running) requeues the
   shard with ``backoff_base_s * 2**(attempts-1)`` delay, capped at
   ``backoff_max_s``, for at most ``max_retries`` retries.  Because every
   shard outcome is a pure function of ``(snapshot, shard)``, a retried
   shard reproduces exactly the outcome an untroubled first attempt would
   have produced — retries are invisible in the merged result.
3. **Pool-breakage recovery.**  A dead worker breaks the whole
   ``ProcessPoolExecutor`` (every pending future fails).  The supervisor
   rebuilds the pool and requeues only the incomplete shards.  Attempt
   blame on a break is conservative: every shard that had *started* (has a
   beat for its current attempt) but not completed is charged one attempt —
   the culprit cannot be distinguished from innocent co-tenants, so
   concurrent shards may burn an attempt to someone else's crash; queued,
   never-started shards requeue for free.
4. **Graceful degradation.**  After ``degrade_after_breaks`` pool
   breakages the worker count is halved (floored at ``min_workers``) on
   each further break — repeated breakage usually means memory pressure,
   and fewer concurrent rebuilds is the generic mitigation.
5. **Quarantine.**  A shard that exhausts its retries gets one last
   in-process, sequential replay in the supervisor's own process (when
   ``quarantine=True``) — immune to pool breakage and to the test-only
   fault injection, and bit-identical by the same purity argument.
6. **Fail fast.**  Only when quarantine is disabled or fails does the run
   abort: pending futures are cancelled and a structured
   :class:`~repro.exceptions.ShardReplayError` surfaces the poison shard's
   provenance (index, functions, attempts, cause) plus every completed
   outcome, so a checkpointing caller loses no finished work.

The sequential backend gets the same retry/quarantine ladder minus the
process machinery (no heartbeats, no pool to break); only ``flaky`` fault
injection applies there.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..exceptions import ConfigurationError, ShardReplayError

#: Exit status used by injected worker crashes (visible in pool tracebacks).
_CRASH_EXIT_STATUS = 13

#: Recovery actions log here: WARNING for failures the ladder absorbed
#: (retry, timeout kill, pool break, quarantine), INFO for degradation.
logger = logging.getLogger(__name__)


class InjectedWorkerFault(RuntimeError):
    """The exception raised by ``flaky`` fault injection (test-only)."""


@dataclass(frozen=True)
class ShardFault:
    """One injected worker fault, applied to a single shard (test-only).

    ``mode`` is one of ``"crash"`` (``os._exit`` — kills the worker
    process, breaking the pool), ``"hang"`` (register one beat, then sleep
    ``hang_s`` *without* beating — triggers stale-beat detection), or
    ``"flaky"`` (raise :class:`InjectedWorkerFault` — a clean retryable
    failure).  The fault fires while the shard's consumed attempt count is
    below ``attempts``, so ``attempts=1`` means "fail once, then succeed".
    """

    mode: str
    attempts: int = 1
    hang_s: float = 3600.0

    def __post_init__(self):
        if self.mode not in ("crash", "hang", "flaky"):
            raise ConfigurationError(f"unknown fault mode {self.mode!r}")


@dataclass(frozen=True)
class WorkerFaultInjection:
    """Test-only fault plan for workers, keyed by shard index (picklable).

    Applied inside the supervised worker entry point only — the quarantine
    replay and the unsupervised path never see it, which is exactly what
    makes quarantine a meaningful last resort in tests.
    """

    faults: Mapping[int, ShardFault] = field(default_factory=dict)

    def fault_for(self, shard_index: int, attempt: int) -> ShardFault | None:
        fault = self.faults.get(shard_index)
        if fault is not None and attempt < fault.attempts:
            return fault
        return None


@dataclass(frozen=True)
class SupervisorConfig:
    """Recovery policy for supervised shard execution.

    All knobs are policy, not mechanism (the adaptive-middleware argument):
    ``shard_timeout_s=None`` disables stale-beat detection entirely,
    ``max_retries=0`` makes every failure terminal, ``quarantine=False``
    turns exhaustion straight into :class:`~repro.exceptions.ShardReplayError`.
    """

    #: Kill a started shard whose last heartbeat is older than this (None
    #: disables timeout detection; slow-but-beating shards never time out).
    shard_timeout_s: float | None = 30.0
    #: How often workers beat, and the supervisor's poll cadence.
    heartbeat_interval_s: float = 0.2
    #: Retries allowed per shard beyond its first attempt.
    max_retries: int = 2
    #: Exponential backoff: ``base * 2**(attempts-1)``, capped at ``max``.
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: Halve the worker count on every pool break from this one onward.
    degrade_after_breaks: int = 2
    min_workers: int = 1
    #: Replay a retry-exhausted shard in-process before giving up.
    quarantine: bool = True
    #: Test-only worker fault hook (crash / hang / flaky-then-succeed).
    fault_injection: WorkerFaultInjection | None = None

    def __post_init__(self):
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigurationError("shard_timeout_s must be positive (or None)")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.min_workers < 1:
            raise ConfigurationError("min_workers must be at least 1")
        if self.degrade_after_breaks < 1:
            raise ConfigurationError("degrade_after_breaks must be at least 1")

    def backoff_s(self, attempts: int) -> float:
        """Delay before re-dispatching a shard that has failed ``attempts`` times."""
        return min(self.backoff_max_s, self.backoff_base_s * 2 ** max(0, attempts - 1))


@dataclass
class SupervisionReport:
    """What supervision did during one sharded replay (diagnostic only).

    Surfaced as a plain dict on ``WorkloadResult.supervision`` /
    ``WorkflowReplayResult.supervision``; deliberately excluded from
    ``to_dict()`` so supervised results stay byte-identical to
    unsupervised ones.
    """

    retries: int = 0
    pool_breaks: int = 0
    timeouts: int = 0
    quarantined: list[int] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    initial_workers: int = 0
    final_workers: int = 0

    @property
    def degraded(self) -> bool:
        return self.final_workers < self.initial_workers

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "pool_breaks": self.pool_breaks,
            "timeouts": self.timeouts,
            "quarantined": list(self.quarantined),
            "attempts": {str(index): count for index, count in sorted(self.attempts.items())},
            "initial_workers": self.initial_workers,
            "final_workers": self.final_workers,
            "degraded": self.degraded,
        }


def _supervised_entry(
    worker,
    snapshot,
    shard,
    keep_records: bool,
    attempt: int,
    beats,
    heartbeat_interval_s: float,
    injection: WorkerFaultInjection | None,
):
    """Worker-side wrapper: register heartbeats, apply injected faults, run.

    The first beat is registered synchronously before any fault fires, so
    the supervisor can always tell "started then died" from "never
    started" when it assigns attempt blame after a pool break.
    """
    beats[shard.index] = (os.getpid(), time.monotonic(), attempt)
    if injection is not None:
        fault = injection.fault_for(shard.index, attempt)
        if fault is not None:
            if fault.mode == "crash":
                os._exit(_CRASH_EXIT_STATUS)
            if fault.mode == "hang":
                # Sleep without beating: the initial beat above goes stale
                # and the supervisor's timeout detection SIGKILLs this pid.
                time.sleep(fault.hang_s)
            if fault.mode == "flaky":
                raise InjectedWorkerFault(
                    f"injected flaky failure on shard {shard.index} attempt {attempt}"
                )
    stop = threading.Event()

    def _beat():
        while not stop.wait(heartbeat_interval_s):
            beats[shard.index] = (os.getpid(), time.monotonic(), attempt)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        return worker(snapshot, shard, keep_records)
    finally:
        stop.set()
        beater.join(timeout=heartbeat_interval_s * 2)


class ShardSupervisor:
    """Drives shards through the recovery ladder documented in the module."""

    def __init__(
        self,
        worker,
        snapshot,
        keep_records: bool,
        workers: int,
        config: SupervisorConfig,
        on_complete: Callable[[object], None] | None = None,
    ):
        self._worker = worker
        self._snapshot = snapshot
        self._keep_records = keep_records
        self._workers = workers
        self._config = config
        self._on_complete = on_complete
        self.report = SupervisionReport()

    # -- shared bookkeeping -------------------------------------------------

    def _complete(self, shard, outcome, results: dict) -> None:
        results[shard.index] = outcome
        if self._on_complete is not None:
            self._on_complete(outcome)

    def _fail(self, shard, attempts: int, cause: BaseException | None, results: dict):
        partial = tuple(results[index] for index in sorted(results))
        detail = f": {cause}" if cause is not None else " (worker died without a traceback)"
        error = ShardReplayError(
            f"shard {shard.index} (functions {', '.join(shard.functions)}) failed "
            f"after {attempts} attempt(s){detail}",
            shard_index=shard.index,
            functions=shard.functions,
            attempts=attempts,
            cause=cause,
            partial_outcomes=partial,
        )
        if cause is not None:
            raise error from cause
        raise error

    def _quarantine(self, shard, attempts: dict, results: dict, cause: BaseException | None):
        """Last resort: replay the poison shard in-process, injection-free."""
        logger.warning(
            "shard %d exhausted its retries (%s); replaying in-process quarantine",
            shard.index,
            cause if cause is not None else "worker died without a traceback",
        )
        self.report.quarantined.append(shard.index)
        attempts[shard.index] += 1
        self.report.attempts[shard.index] = attempts[shard.index]
        try:
            outcome = self._worker(self._snapshot, shard, self._keep_records)
        except Exception as error:
            self._fail(shard, attempts[shard.index], error, results)
        else:
            self._complete(shard, outcome, results)

    def _on_attempt_failure(
        self,
        shard,
        attempts: dict,
        results: dict,
        pending: list,
        cause: BaseException | None,
    ) -> None:
        """Charge one attempt; requeue with backoff, quarantine, or fail."""
        attempts[shard.index] += 1
        self.report.attempts[shard.index] = attempts[shard.index]
        if attempts[shard.index] <= self._config.max_retries:
            self.report.retries += 1
            logger.warning(
                "shard %d attempt %d failed (%s); retrying after %.2fs backoff",
                shard.index,
                attempts[shard.index],
                cause if cause is not None else "worker died without a traceback",
                self._config.backoff_s(attempts[shard.index]),
            )
            eligible_at = time.monotonic() + self._config.backoff_s(attempts[shard.index])
            pending.append((shard, eligible_at))
        elif self._config.quarantine:
            self._quarantine(shard, attempts, results, cause)
        else:
            self._fail(shard, attempts[shard.index], cause, results)

    # -- sequential backend -------------------------------------------------

    def execute_sequential(self, shards: Sequence) -> list:
        """The in-process ladder: retries + quarantine, no pool machinery."""
        injection = self._config.fault_injection
        if injection is not None:
            for index, fault in injection.faults.items():
                if fault.mode != "flaky":
                    raise ConfigurationError(
                        f"fault mode {fault.mode!r} (shard {index}) requires the "
                        "process backend; the sequential backend only injects 'flaky'"
                    )
        results: dict[int, object] = {}
        attempts = {shard.index: 0 for shard in shards}
        self.report.initial_workers = 1
        self.report.final_workers = 1
        for shard in shards:
            while shard.index not in results:
                fault = injection.fault_for(shard.index, attempts[shard.index]) if injection else None
                try:
                    if fault is not None:
                        raise InjectedWorkerFault(
                            f"injected flaky failure on shard {shard.index} "
                            f"attempt {attempts[shard.index]}"
                        )
                    outcome = self._worker(self._snapshot, shard, self._keep_records)
                except Exception as error:
                    attempts[shard.index] += 1
                    self.report.attempts[shard.index] = attempts[shard.index]
                    if attempts[shard.index] <= self._config.max_retries:
                        self.report.retries += 1
                        logger.warning(
                            "shard %d attempt %d failed (%s); retrying after %.2fs backoff",
                            shard.index,
                            attempts[shard.index],
                            error,
                            self._config.backoff_s(attempts[shard.index]),
                        )
                        time.sleep(self._config.backoff_s(attempts[shard.index]))
                    elif self._config.quarantine:
                        self._quarantine(shard, attempts, results, error)
                    else:
                        self._fail(shard, attempts[shard.index], error, results)
                else:
                    self._complete(shard, outcome, results)
        return [results[shard.index] for shard in shards]

    # -- process backend ----------------------------------------------------

    def execute(self, shards: Sequence, context) -> list:
        config = self._config
        results: dict[int, object] = {}
        attempts = {shard.index: 0 for shard in shards}
        pending: list[tuple[object, float]] = [(shard, 0.0) for shard in shards]
        max_workers = max(1, min(self._workers, len(shards)))
        self.report.initial_workers = max_workers
        self.report.final_workers = max_workers
        killed: set[tuple[int, int]] = set()
        manager = multiprocessing.Manager()
        pool: ProcessPoolExecutor | None = None
        try:
            beats = manager.dict()
            while len(results) < len(shards):
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=context)
                    running: dict = {}
                now = time.monotonic()
                # Dispatch every shard whose backoff has elapsed.
                deferred = []
                broken = False
                for shard, eligible_at in pending:
                    if now < eligible_at:
                        deferred.append((shard, eligible_at))
                        continue
                    try:
                        future = pool.submit(
                            _supervised_entry,
                            self._worker,
                            self._snapshot,
                            shard,
                            self._keep_records,
                            attempts[shard.index],
                            beats,
                            config.heartbeat_interval_s,
                            config.fault_injection,
                        )
                    except BrokenProcessPool:
                        broken = True
                        deferred.append((shard, eligible_at))
                    else:
                        running[future] = shard
                pending = deferred
                if not broken:
                    if not running:
                        # Everything incomplete is backing off; wait it out.
                        time.sleep(config.heartbeat_interval_s)
                        continue
                    done, _ = wait(
                        set(running),
                        timeout=config.heartbeat_interval_s,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        shard = running.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            broken = True
                            self._charge_break_casualty(shard, attempts, results, pending, beats)
                        except Exception as error:
                            self._on_attempt_failure(shard, attempts, results, pending, error)
                        else:
                            self._complete(shard, outcome, results)
                    if not broken:
                        self._kill_stale(running, attempts, beats, killed)
                        continue
                # The pool is broken: every still-running shard is a
                # casualty, the pool is rebuilt, and the worker count may
                # degrade.  (Casualties from the loop above are already
                # charged; these are the futures wait() had not returned.)
                self.report.pool_breaks += 1
                logger.warning(
                    "worker pool broke (break %d); rebuilding and requeueing "
                    "incomplete shards",
                    self.report.pool_breaks,
                )
                for future, shard in list(running.items()):
                    if shard.index not in results:
                        self._charge_break_casualty(shard, attempts, results, pending, beats)
                running.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                if self.report.pool_breaks >= config.degrade_after_breaks:
                    max_workers = max(config.min_workers, max_workers // 2)
                    if max_workers != self.report.final_workers:
                        logger.info(
                            "degrading to %d worker(s) after %d pool break(s)",
                            max_workers,
                            self.report.pool_breaks,
                        )
                    self.report.final_workers = max_workers
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            manager.shutdown()
        return [results[shard.index] for shard in shards]

    def _charge_break_casualty(self, shard, attempts, results, pending, beats) -> None:
        """A shard in flight when the pool broke: charge it only if it started."""
        beat = beats.get(shard.index)
        started = beat is not None and beat[2] == attempts[shard.index]
        if started:
            self._on_attempt_failure(shard, attempts, results, pending, None)
        else:
            pending.append((shard, 0.0))

    def _kill_stale(self, running: Mapping, attempts, beats, killed: set) -> None:
        """SIGKILL workers whose shard heartbeat has gone stale."""
        timeout = self._config.shard_timeout_s
        if timeout is None:
            return
        now = time.monotonic()
        for shard in running.values():
            beat = beats.get(shard.index)
            if beat is None or beat[2] != attempts[shard.index]:
                continue  # not started yet (a break, not a timeout, covers death)
            pid, stamp, _ = beat
            if now - stamp <= timeout or (shard.index, attempts[shard.index]) in killed:
                continue
            killed.add((shard.index, attempts[shard.index]))
            self.report.timeouts += 1
            logger.warning(
                "shard %d heartbeat stale for %.1fs; killing worker pid %d",
                shard.index,
                now - stamp,
                pid,
            )
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # already gone
                pass
