"""Deterministic merging of shard outcomes into replay results.

**Record mode** (``keep_records=True``): every shard returns its records
paired with their global stream indices; the merge sorts by index, which
restores the exact serial arrival order.  Because shards are
function-disjoint and all simulator state is per-function, each record's
*content* is bit-identical to its serial counterpart, so the merged record
list — and every aggregate derived from it — equals a serial replay's
byte for byte.  The global concurrency peak is recomputed exactly from the
merged records' interval overlap.

**Streaming mode** (``keep_records=False``): shards return their
accumulators, which merge in shard-index order:

* invocation/cold-start/failure counts, cost sums, span bounds and
  per-function min/max — **exact** (integer sums, float min/max, and the
  sorted-function-name float reduction shared with the serial engine);
* the overload counters (throttles, drops, throttle events, retries,
  queued count and queue-delay sums, :mod:`repro.concurrency`) — **exact**:
  integers sum, and the queue-delay float total reduces in sorted
  function-name order exactly like the cost total;
* the fault/resilience counters (faulted, breaker short-circuits and
  hedge totals, :mod:`repro.faults` / :mod:`repro.resilience`) —
  **exact**: all three are per-function integer sums, and breaker state
  itself is a pure function of each function's own outcome stream, so
  shards reproduce serial trip/recovery points identically;
* per-function mean/variance — exact under per-function sharding (one
  shard owns the whole function stream); within float associativity if a
  caller ever splits one function across shards;
* per-function percentiles — byte-identical reservoir state under
  per-function sharding, merged-reservoir estimates otherwise;
* ``peak_in_flight`` — max over shards: a lower bound on the global peak
  (cross-shard overlap is not recoverable from accumulators), documented
  as approximate.  Trace *record* mode recomputes the exact peak from the
  merged records' intervals; workflow results carry no constituent
  intervals, so workflow merges report the shard max in both modes;
* ``wall_clock_s`` — the parallel run's own measurement (it is a
  throughput figure, not a simulation output).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Provider
from ..faas.invocation import InvocationRecord
from ..workload.engine import (
    WorkloadEngine,
    WorkloadResult,
    _ReplayAccumulator,
    streaming_result,
)
from ..workflows.engine import (
    WorkflowReplayResult,
    WorkflowResult,
    _WorkflowAccumulator,
    build_replay_result,
)


@dataclass
class TraceShardOutcome:
    """What one trace shard replay produced (picklable)."""

    shard_index: int
    #: ``(global_index, record)`` pairs in record mode, else ``None``.
    records: list[tuple[int, InvocationRecord]] | None
    #: Streaming-mode accumulator, else ``None``.
    accumulator: _ReplayAccumulator | None
    peak_in_flight: int
    #: Shard-local :class:`~repro.observe.timeseries.TimeSeriesBuilder`
    #: when a simulated-time series was requested; ``None`` otherwise
    #: (and absent from checkpoints written before the field existed —
    #: readers must ``getattr`` with a default).
    timeseries: object | None = None
    #: Record-mode columnar shards ship the whole
    #: :class:`~repro.columnar.records.ColumnarRecordBlock` across the
    #: process boundary instead of materialised record objects; the parent
    #: materialises after the merge.  ``None`` on scalar shards (and absent
    #: from older checkpoints — readers must ``getattr`` with a default).
    columnar: object | None = None


@dataclass
class WorkflowShardOutcome:
    """What one workflow shard replay produced (picklable)."""

    shard_index: int
    accumulators: dict[str, _WorkflowAccumulator]
    #: Per-execution results in record mode (any order; indices are global).
    executions: list[WorkflowResult]
    first_submitted: float | None
    last_finished: float | None
    peak_in_flight: int
    #: Shard-local time-series builder (see ``TraceShardOutcome``).
    timeseries: object | None = None


def merge_trace_outcomes(
    provider: Provider,
    outcomes: list[TraceShardOutcome],
    keep_records: bool,
    wall_clock_s: float,
) -> WorkloadResult:
    """Merge trace shard outcomes into one :class:`WorkloadResult`."""
    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    if keep_records:
        indexed: list[tuple[int, InvocationRecord]] = []
        for outcome in outcomes:
            block = getattr(outcome, "columnar", None)
            if block is not None:
                indexed.extend(block.indexed_records())
            else:
                indexed.extend(outcome.records or ())
        indexed.sort(key=lambda pair: pair[0])
        records = [record for _, record in indexed]
        span = 0.0
        if records:
            span = max(r.finished_at for r in records) - min(r.submitted_at for r in records)
        return WorkloadResult(
            provider=provider,
            records=records,
            simulated_span_s=span,
            wall_clock_s=wall_clock_s,
            peak_in_flight=WorkloadEngine._peak_in_flight(records),
        )
    merged = _ReplayAccumulator()
    peak = 0
    for outcome in outcomes:
        if outcome.accumulator is not None:
            merged.merge(outcome.accumulator)
        if outcome.peak_in_flight > peak:
            peak = outcome.peak_in_flight
    return streaming_result(provider, merged, wall_clock_s=wall_clock_s, peak_in_flight=peak)


def merge_workflow_outcomes(
    provider: Provider,
    outcomes: list[WorkflowShardOutcome],
    keep_records: bool,
    wall_clock_s: float,
) -> WorkflowReplayResult:
    """Merge workflow shard outcomes into one :class:`WorkflowReplayResult`."""
    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    accumulators: dict[str, _WorkflowAccumulator] = {}
    executions: list[WorkflowResult] = []
    first_submitted: float | None = None
    last_finished: float | None = None
    peak = 0
    for outcome in outcomes:
        for name, accumulator in outcome.accumulators.items():
            mine = accumulators.get(name)
            if mine is None:
                accumulators[name] = accumulator
            else:
                mine.merge(accumulator)
        if keep_records:
            executions.extend(outcome.executions)
        if outcome.first_submitted is not None and (
            first_submitted is None or outcome.first_submitted < first_submitted
        ):
            first_submitted = outcome.first_submitted
        if outcome.last_finished is not None and (
            last_finished is None or outcome.last_finished > last_finished
        ):
            last_finished = outcome.last_finished
        if outcome.peak_in_flight > peak:
            peak = outcome.peak_in_flight
    executions.sort(key=lambda result: result.execution_index)
    span = 0.0
    if first_submitted is not None and last_finished is not None:
        span = last_finished - first_submitted
    return build_replay_result(
        provider,
        accumulators,
        executions=executions,
        simulated_span_s=span,
        wall_clock_s=wall_clock_s,
        peak_in_flight=peak,
    )
