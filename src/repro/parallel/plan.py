"""Shard planning: partition replays into function-disjoint units of work.

The shard unit is the **function** (for flat traces) or the **connected
component of workflow specs sharing a function** (for workflow arrivals).
That is the natural boundary because every piece of simulator state that an
invocation touches — the sandbox pool, the eviction timeout stream, the
compute/network/reliability jitter streams, the billing memo — is keyed per
function (:mod:`repro.simulator.platform_sim`), so two shards that share no
function cannot influence each other's numbers and replay bit-identically
to a serial pass.

The planner packs shard units into at most ``workers`` shards with a
longest-processing-time (LPT) greedy heuristic over a simple cost model:
the unit's **invocation count** — exact for materialised traces (counted
while partitioning), estimated from
:meth:`~repro.workload.arrivals.ArrivalProcess.expected_invocations` for
scenario traffic, and ``arrivals × stages`` for workflow components.  Tie
breaks are deterministic (unit name, then shard index), so the same input
always yields the same plan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRequest
from ..workload.scenario import FunctionTraffic, Scenario
from ..workflows.spec import WorkflowArrival


@dataclass(frozen=True)
class TraceShard:
    """A materialised partition of a trace: requests of one function group.

    ``requests`` carries ``(global_index, request)`` pairs — the index is
    the request's position in the full time-sorted stream, used to restore
    the exact serial record order when merging record-mode shards.
    """

    index: int
    functions: tuple[str, ...]
    weight: float
    requests: tuple[tuple[int, InvocationRequest], ...]


@dataclass(frozen=True)
class ScenarioShard:
    """A recipe partition: the worker synthesizes its own arrivals.

    Nothing is materialised in the parent — each worker rebuilds the
    per-source random streams from ``(seed, scenario_name, source_index)``
    exactly as :meth:`~repro.workload.scenario.Scenario.build_trace` does,
    so the shard's synthesized sub-trace is identical to the corresponding
    slice of the full trace.
    """

    index: int
    functions: tuple[str, ...]
    weight: float
    scenario_name: str
    duration_s: float
    seed: int
    #: ``(source_index_in_scenario, traffic)`` pairs, in scenario order.
    sources: tuple[tuple[int, FunctionTraffic], ...]


@dataclass(frozen=True)
class WorkflowShard:
    """A partition of workflow arrivals: whole function-disjoint components.

    ``arrivals`` carries ``(global_execution_index, arrival)`` pairs; the
    indices feed :meth:`repro.workflows.engine.WorkflowEngine.stream` so the
    hash-seeded per-edge trigger delays match serial replay exactly.
    """

    index: int
    functions: tuple[str, ...]
    weight: float
    arrivals: tuple[tuple[int, WorkflowArrival], ...]


@dataclass(frozen=True, eq=False)
class PopulationShard:
    """A population partition: the worker deploys and drives its members.

    The parent never materialises a request, a recipe or even a function
    name: the shard ships the (small, picklable) population object plus the
    member indices, and the worker derives everything else from
    ``(population, seed, index)`` — deployment recipes, arrival streams,
    the merged request stream (see :mod:`repro.population.replay`).

    ``functions`` is a short provenance *label*, not the member list — a
    million function names would bloat every supervisor error message and
    checkpoint fingerprint; the real membership is ``member_indices``.
    """

    index: int
    functions: tuple[str, ...]
    weight: float
    seed: int
    #: The population recipe object (``PopulationSpec`` / ``IngestedPopulation``).
    population: object
    #: Member indices owned by this shard, sorted ascending.
    member_indices: np.ndarray


def _pack(weights: Mapping[str, float], workers: int) -> list[list[str]]:
    """LPT greedy: pack named units into at most ``workers`` buckets.

    Deterministic: units are processed heaviest-first (name tie-break) and
    land in the least-loaded bucket (lowest index tie-break).  Empty
    buckets are dropped.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    buckets: list[list[str]] = [[] for _ in range(min(workers, max(1, len(weights))))]
    load: list[tuple[float, int]] = [(0.0, i) for i in range(len(buckets))]
    heapq.heapify(load)
    for name in sorted(weights, key=lambda n: (-weights[n], n)):
        total, bucket = heapq.heappop(load)
        buckets[bucket].append(name)
        heapq.heappush(load, (total + weights[name], bucket))
    return [bucket for bucket in buckets if bucket]


class ShardPlanner:
    """Builds deterministic, load-balanced shard plans for parallel replay."""

    def plan_trace(
        self, requests: Iterable[InvocationRequest], workers: int
    ) -> list[TraceShard]:
        """Partition a time-sorted request stream into per-function shards.

        One O(n) pass assigns every request its global index and groups by
        function; the LPT packing then uses the *exact* per-function
        invocation counts as weights.
        """
        per_function: dict[str, list[tuple[int, InvocationRequest]]] = {}
        for global_index, request in enumerate(requests):
            per_function.setdefault(request.function_name, []).append((global_index, request))
        weights = {fname: float(len(items)) for fname, items in per_function.items()}
        shards = []
        for shard_index, fnames in enumerate(_pack(weights, workers)):
            merged: list[tuple[int, InvocationRequest]] = []
            for fname in fnames:
                merged.extend(per_function[fname])
            # Global-index order restores the serial arrival order (the
            # per-function lists are index-sorted subsequences of it).
            merged.sort(key=lambda pair: pair[0])
            shards.append(
                TraceShard(
                    index=shard_index,
                    functions=tuple(sorted(fnames)),
                    weight=sum(weights[f] for f in fnames),
                    requests=tuple(merged),
                )
            )
        return shards

    def plan_scenario(self, scenario: Scenario, seed: int, workers: int) -> list[ScenarioShard]:
        """Partition scenario traffic by function, without synthesizing it.

        Weights come from each arrival process's expected invocation count
        over the scenario duration — an estimate, so balance (not
        correctness) degrades when a process misreports.
        """
        if scenario.workflow_traffic:
            raise ConfigurationError(
                f"scenario {scenario.name!r} carries workflow traffic; shard its "
                "workflow arrivals with plan_workflows instead"
            )
        by_function: dict[str, list[tuple[int, FunctionTraffic]]] = {}
        weights: dict[str, float] = {}
        for source_index, traffic in enumerate(scenario.traffic):
            by_function.setdefault(traffic.function_name, []).append((source_index, traffic))
            weights[traffic.function_name] = weights.get(traffic.function_name, 0.0) + float(
                traffic.process.expected_invocations(scenario.duration_s)
            )
        shards = []
        for shard_index, fnames in enumerate(_pack(weights, workers)):
            sources: list[tuple[int, FunctionTraffic]] = []
            for fname in fnames:
                sources.extend(by_function[fname])
            sources.sort(key=lambda pair: pair[0])
            shards.append(
                ScenarioShard(
                    index=shard_index,
                    functions=tuple(sorted(fnames)),
                    weight=sum(weights[f] for f in fnames),
                    scenario_name=scenario.name,
                    duration_s=scenario.duration_s,
                    seed=seed,
                    sources=tuple(sources),
                )
            )
        return shards

    def plan_population(self, population, seed: int, workers: int) -> list[PopulationShard]:
        """Partition a population's members into at most ``workers`` shards.

        Same LPT greedy as :func:`_pack`, but vectorized for million-member
        populations: weights are the population's expected per-function
        invocation counts (exact for ingested traces, Zipf means for
        synthetic populations), processed heaviest-first with ascending
        member index as the deterministic tie-break.  Shards own
        function-disjoint member sets, so the bit-identity argument of the
        module docstring applies unchanged.
        """
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        weights = np.asarray(population.expected_counts(), dtype=float)
        n = int(weights.shape[0])
        buckets = min(workers, max(1, n))
        order = np.argsort(-weights, kind="stable")
        assignment = np.empty(n, dtype=np.int64)
        load: list[tuple[float, int]] = [(0.0, bucket) for bucket in range(buckets)]
        heapq.heapify(load)
        for member in order:
            total, bucket = heapq.heappop(load)
            assignment[member] = bucket
            heapq.heappush(load, (total + float(weights[member]), bucket))
        shards = []
        for bucket in range(buckets):
            members = np.flatnonzero(assignment == bucket)
            if members.size == 0:
                continue
            shards.append(
                PopulationShard(
                    index=len(shards),
                    functions=(f"{population.name}[{members.size} functions]",),
                    weight=float(weights[members].sum()),
                    seed=int(seed),
                    population=population,
                    member_indices=members,
                )
            )
        return shards

    def plan_workflows(
        self, arrivals: Sequence[WorkflowArrival], workers: int
    ) -> list[WorkflowShard]:
        """Partition workflow arrivals into function-disjoint components.

        Two workflow specs that share a deployed function must replay in
        the same shard (their executions contend for the same sandbox pool
        and draw from the same per-function streams); union-find over the
        spec function sets computes those components.  Specs sharing a
        *name* are merged into one component too: per-workflow accumulators
        — and their reservoir tag streams — are keyed by workflow name, so
        splitting a name across shards would bias the merged percentiles.
        """
        parent: dict[str, str] = {}

        def find(fname: str) -> str:
            root = fname
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[fname] != root:  # path compression
                parent[fname], fname = root, parent[fname]
            return root

        specs: dict[int, tuple] = {}
        for arrival in arrivals:
            spec = arrival.workflow
            if id(spec) not in specs:
                specs[id(spec)] = (spec, spec.functions())
            fnames = specs[id(spec)][1]
            anchor = find(fnames[0])
            for fname in fnames[1:]:
                parent[find(fname)] = anchor
            # Pseudo-node per workflow name (the "\x00" prefix cannot
            # collide with a function name): same-named specs unify.
            parent[find(f"\x00workflow:{spec.name}")] = anchor

        component_arrivals: dict[str, list[tuple[int, WorkflowArrival]]] = {}
        component_functions: dict[str, set[str]] = {}
        weights: dict[str, float] = {}
        for global_index, arrival in enumerate(arrivals):
            spec, fnames = specs[id(arrival.workflow)]
            component = find(fnames[0])
            component_arrivals.setdefault(component, []).append((global_index, arrival))
            component_functions.setdefault(component, set()).update(fnames)
            weights[component] = weights.get(component, 0.0) + float(len(spec.stages))
        shards = []
        for shard_index, components in enumerate(_pack(weights, workers)):
            merged: list[tuple[int, WorkflowArrival]] = []
            functions: set[str] = set()
            for component in components:
                merged.extend(component_arrivals[component])
                functions.update(component_functions[component])
            merged.sort(key=lambda pair: pair[0])
            shards.append(
                WorkflowShard(
                    index=shard_index,
                    functions=tuple(sorted(functions)),
                    weight=sum(weights[c] for c in components),
                    arrivals=tuple(merged),
                )
            )
        return shards
