"""Configuration objects shared across the SeBS reproduction.

The configuration layer mirrors what the original SeBS toolkit reads from its
JSON configuration files: which cloud provider to target, which region,
language runtime, memory size, and experiment-level knobs (number of samples,
concurrency, random seed).  Everything is expressed as frozen dataclasses so
configurations can be hashed, compared and used as cache keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

from .exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .concurrency.config import OverloadConfig
    from .faults.config import FaultPlaneConfig
    from .resilience.config import ResilienceConfig


class Provider(str, enum.Enum):
    """Cloud providers modelled by the simulator.

    ``AWS``, ``AZURE`` and ``GCP`` follow the commercial platforms evaluated
    in the paper; ``IAAS`` is the persistent virtual-machine baseline used by
    the FaaS-vs-IaaS comparison (Table 5 / Table 6); ``LOCAL`` is the local
    Docker-style execution used for benchmark characterization (Table 4).
    """

    AWS = "aws"
    AZURE = "azure"
    GCP = "gcp"
    IAAS = "iaas"
    LOCAL = "local"

    @property
    def display_name(self) -> str:
        """Human-readable platform name used in tables and reports."""
        return {
            Provider.AWS: "AWS Lambda",
            Provider.AZURE: "Azure Functions",
            Provider.GCP: "Google Cloud Functions",
            Provider.IAAS: "IaaS (VM)",
            Provider.LOCAL: "Local",
        }[self]


class Language(str, enum.Enum):
    """Benchmark implementation languages supported by SeBS."""

    PYTHON = "python"
    NODEJS = "nodejs"

    @property
    def display_name(self) -> str:
        """Human-readable language name used in tables and reports."""
        return {Language.PYTHON: "Python", Language.NODEJS: "Node.js"}[self]


class TriggerType(str, enum.Enum):
    """Function trigger mechanisms (Section 2, label 1)."""

    HTTP = "http"
    SDK = "sdk"
    TIMER = "timer"
    STORAGE = "storage"
    QUEUE = "queue"


class StartType(str, enum.Enum):
    """Whether an invocation hit a cold or a warm sandbox.

    ``NONE`` marks requests that never reached a sandbox at all — throttled
    or dropped by the admission layer (:mod:`repro.concurrency`).
    """

    COLD = "cold"
    WARM = "warm"
    BURST = "burst"
    NONE = "none"


class InvocationOutcome(str, enum.Enum):
    """Terminal outcome of one invocation request.

    ``COMPLETED`` and ``FAILED`` describe requests that actually executed
    (the function ran; ``FAILED`` covers runtime errors, OOM and timeouts).
    ``THROTTLED`` marks synchronous requests rejected by the concurrency
    limiter after exhausting their retry budget — they never occupied a
    sandbox and are not billed.  ``DROPPED`` marks asynchronous requests
    that spilled into the admission queue and were discarded (queue full,
    or aged out before capacity freed up).  ``FAULTED`` marks requests
    whose every attempt fell inside a fault-plane outage window
    (:mod:`repro.faults`) — the platform answered with errors, no sandbox
    was occupied, nothing was billed.  ``SHORT_CIRCUITED`` marks requests
    an open client circuit breaker (:mod:`repro.resilience`) rejected
    without contacting the platform at all.
    """

    COMPLETED = "completed"
    FAILED = "failed"
    THROTTLED = "throttled"
    DROPPED = "dropped"
    FAULTED = "faulted"
    SHORT_CIRCUITED = "short-circuited"


#: Default regions used by the paper's evaluation (Section 6, Configuration).
DEFAULT_REGIONS: Mapping[Provider, str] = {
    Provider.AWS: "us-east-1",
    Provider.AZURE: "WestEurope",
    Provider.GCP: "europe-west1",
    Provider.IAAS: "us-east-1",
    Provider.LOCAL: "local",
}

#: Memory sizes (MB) swept by the Perf-Cost experiment, per provider
#: (Figure 3).  Azure allocates memory dynamically, so it has a single
#: "dynamic" configuration represented by 0.
PERF_COST_MEMORY_SIZES: Mapping[Provider, tuple[int, ...]] = {
    Provider.AWS: (128, 256, 512, 1024, 1536, 2048, 3008),
    Provider.GCP: (128, 256, 512, 1024, 2048),
    Provider.AZURE: (0,),
    Provider.IAAS: (1024,),
    Provider.LOCAL: (1024,),
}

#: Sentinel memory value meaning "dynamically allocated" (Azure).
DYNAMIC_MEMORY = 0


@dataclass(frozen=True)
class FunctionConfig:
    """Deployment-time configuration for a single serverless function.

    Attributes
    ----------
    memory_mb:
        Sandbox memory allocation in megabytes (default ``256``).  ``0``
        (:data:`DYNAMIC_MEMORY`) means dynamically allocated, as on
        Azure's consumption plan.  Billing and warm performance scale
        with this value (Figure 3).
    timeout_s:
        Execution deadline in seconds (default ``300.0``, the common
        provider default).  Invocations exceeding it terminate as
        ``FAILED`` and are billed for the full timeout.
    language:
        Implementation language of the deployed benchmark (default
        :attr:`Language.PYTHON`).
    region:
        Deployment region identifier (default ``"us-east-1"``); selects
        the provider's region-specific network round-trip model.
    environment:
        Extra environment variables baked into the deployment (default
        empty).  Part of the hash/equality key like every other field.
    """

    memory_mb: int = 256
    timeout_s: float = 300.0
    language: Language = Language.PYTHON
    region: str = "us-east-1"
    environment: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory_mb < 0:
            raise ConfigurationError("memory_mb must be non-negative")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")

    def with_memory(self, memory_mb: int) -> "FunctionConfig":
        """Return a copy of this configuration with a different memory size."""
        return replace(self, memory_mb=memory_mb)

    @property
    def is_dynamic_memory(self) -> bool:
        """``True`` when memory is dynamically allocated (``memory_mb == 0``)."""
        return self.memory_mb == DYNAMIC_MEMORY


@dataclass(frozen=True)
class SimulationConfig:
    """Global knobs for the simulated cloud substrate.

    Attributes
    ----------
    seed:
        Master seed for every random stream in the simulation (default
        ``42``, non-negative).  Every substream derives from it by name
        (see ``docs/determinism.md``); two runs with the same seed and the
        same workload produce identical results.
    time_of_day_factor:
        Dimensionless multiplier (default ``1.0``, must be positive)
        applied to latency jitter to model localized spikes of cloud
        activity (Section 4.1 discusses running experiments at fixed
        times of day to minimize this effect).
    enable_failures:
        Whether to inject provider reliability issues (default ``True``;
        GCP out-of-memory and availability failures observed in
        Section 6.2 Q3).
    network_rtt_ms:
        Baseline client-to-region round-trip latencies in milliseconds,
        used when a region does not override them.  Defaults follow the
        paper's reported pings: 109 ms to AWS, 20 ms to Azure, 33 ms to
        GCP (0.1 ms for local execution).
    log_retention:
        Maximum number of provider-side log entries kept per function
        (what ``query_logs`` reads).  ``None`` (the default) keeps every
        entry; long trace replays should set a bound so the provider log
        does not grow O(invocations).
    overload:
        Concurrency-limit and throttling model
        (:class:`repro.concurrency.OverloadConfig`).  ``None`` (the
        default) admits every request unconditionally — the pre-overload
        behaviour, bit-identical to earlier releases.
    faults:
        Fault-injection plane (:class:`repro.faults.FaultPlaneConfig`):
        deterministic outage windows, correlated container crashes and
        latency storms injected into trace replay.  ``None`` (the default)
        injects nothing.
    resilience:
        Client-side resilience layer
        (:class:`repro.resilience.ResilienceConfig`): circuit breakers,
        hedged requests, fault retries and staleness deadlines for
        synchronous invocations.  ``None`` (the default) models a plain
        client.
    columnar:
        Opt into the vectorized columnar replay hot path
        (:mod:`repro.columnar`; default ``False``): per-function random
        draws are pre-drawn in blocks, invocation records are held as
        parallel arrays and materialised lazily, and streaming statistics
        fold in batches.  Results are bit-identical to the scalar path
        (proven by the differential tier in
        ``tests/test_columnar_equivalence.py``); the flag only trades
        memory layout for throughput.
    """

    seed: int = 42
    time_of_day_factor: float = 1.0
    enable_failures: bool = True
    log_retention: int | None = None
    overload: "OverloadConfig | None" = None
    faults: "FaultPlaneConfig | None" = None
    resilience: "ResilienceConfig | None" = None
    columnar: bool = False
    network_rtt_ms: Mapping[Provider, float] = field(
        default_factory=lambda: {
            Provider.AWS: 109.0,
            Provider.AZURE: 20.0,
            Provider.GCP: 33.0,
            Provider.IAAS: 109.0,
            Provider.LOCAL: 0.1,
        }
    )

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")
        if self.time_of_day_factor <= 0:
            raise ConfigurationError("time_of_day_factor must be positive")
        if self.log_retention is not None and self.log_retention <= 0:
            raise ConfigurationError("log_retention must be positive (or None for unlimited)")


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by SeBS experiments (Section 5.2, 6).

    Attributes
    ----------
    samples:
        Number of measurements per configuration.  The paper selects N = 200
        so that non-parametric confidence intervals of the client time stay
        within 5% of the median.
    batch_size:
        Invocations issued per concurrent batch (the paper uses 50 to cover
        multiple sandboxes).
    confidence_levels:
        Confidence levels for the non-parametric intervals.
    target_ci_width:
        Target half-width of the confidence interval relative to the median
        (0.05 = within 5% of the median).
    """

    samples: int = 200
    batch_size: int = 50
    confidence_levels: tuple[float, ...] = (0.95, 0.99)
    target_ci_width: float = 0.05
    seed: int = 42

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ConfigurationError("samples must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        for level in self.confidence_levels:
            if not 0.0 < level < 1.0:
                raise ConfigurationError("confidence levels must lie in (0, 1)")
        if not 0.0 < self.target_ci_width < 1.0:
            raise ConfigurationError("target_ci_width must lie in (0, 1)")

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Return a copy with the sample count scaled (used by quick runs)."""
        return replace(self, samples=max(1, int(self.samples * factor)))


def resolve_memory_sizes(provider: Provider, requested: tuple[int, ...] | None = None) -> tuple[int, ...]:
    """Return the memory sweep for ``provider``.

    If ``requested`` is given it is validated against the provider's allowed
    settings; otherwise the default sweep from the paper (Figure 3) is used.
    """
    defaults = PERF_COST_MEMORY_SIZES[provider]
    if requested is None:
        return defaults
    if provider is Provider.AZURE:
        # Azure only supports dynamic allocation in the consumption plan.
        return (DYNAMIC_MEMORY,)
    invalid = [size for size in requested if size <= 0]
    if invalid:
        raise ConfigurationError(f"invalid memory sizes for {provider.value}: {invalid}")
    return tuple(requested)


def config_to_dict(config: Any) -> dict[str, Any]:
    """Serialise a (possibly nested) dataclass configuration to plain dicts."""
    if hasattr(config, "__dataclass_fields__"):
        result = {}
        for name in config.__dataclass_fields__:
            result[name] = config_to_dict(getattr(config, name))
        return result
    if isinstance(config, enum.Enum):
        return config.value
    if isinstance(config, Mapping):
        return {str(key.value if isinstance(key, enum.Enum) else key): config_to_dict(value) for key, value in config.items()}
    if isinstance(config, (list, tuple)):
        return [config_to_dict(item) for item in config]
    return config
