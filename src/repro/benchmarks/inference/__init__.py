"""Machine-learning inference benchmarks: image-recognition."""

from .image_recognition import ImageRecognitionBenchmark
from .resnet import ResNetLite, build_resnet_lite, serialize_weights, deserialize_weights

__all__ = [
    "ImageRecognitionBenchmark",
    "ResNetLite",
    "build_resnet_lite",
    "serialize_weights",
    "deserialize_weights",
]
