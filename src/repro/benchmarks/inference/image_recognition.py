"""``image-recognition``: classify an image with a ResNet-style network.

The paper's benchmark serves a pretrained ResNet-50 with PyTorch on images
from the MLPerf fake-resnet test set.  Its defining performance features are
(1) the largest deployment package in the suite — PyTorch must be stripped to
fit the 250 MB AWS limit, (2) a cold start dominated by downloading and
deserialising the model from persistent storage (cold executions are on
average up to ten times slower than warm ones, Figure 4), and (3)
compute-bound warm inference (98.7% CPU in Table 4).

The reproduction keeps all three: the model weights are generated once,
uploaded to the input bucket, downloaded and deserialised on the first
invocation of a sandbox (the kernel caches the model in a module-level slot,
exactly how real functions cache state in the language worker between warm
invocations), and inference runs a real NumPy convolutional network.
"""

from __future__ import annotations

from typing import Any, Mapping

from ...config import Language
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile
from ..multimedia.imaging import Image
from .resnet import ResNetLite, build_resnet_lite, deserialize_weights, serialize_weights


class ImageRecognitionBenchmark(Benchmark):
    """ResNet-style image classification with storage-hosted weights."""

    name = "image-recognition"
    category = BenchmarkCategory.INFERENCE
    languages = (Language.PYTHON,)
    dependencies = ("pytorch", "torchvision")

    _MODEL_KEY = "models/resnet-lite.npz"
    #: Input image edge length per size preset (square images).
    _SIZE_TO_EDGE = {InputSize.TEST: 32, InputSize.SMALL: 64, InputSize.LARGE: 128}
    _NUM_CLASSES = 1000

    def __init__(self) -> None:
        super().__init__()
        # Model cache emulating the language worker's module-global state:
        # populated on the first (cold) invocation, reused by warm ones.
        self._cached_model: ResNetLite | None = None
        self._cached_model_key: str | None = None

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        bucket = context.storage.create_bucket(context.input_bucket)
        if not bucket.exists(self._MODEL_KEY):
            model = build_resnet_lite(num_classes=self._NUM_CLASSES)
            bucket.put(self._MODEL_KEY, serialize_weights(model), content_type="application/octet-stream")
        edge = self._SIZE_TO_EDGE[size]
        image = Image.generate(edge, edge, context.rng)
        image_key = f"images/inference-input-{size.value}.srim"
        bucket.put(image_key, image.to_bytes(), content_type="image/x-srim")
        return {
            "model_bucket": context.input_bucket,
            "model_key": self._MODEL_KEY,
            "input_bucket": context.input_bucket,
            "input_key": image_key,
            "top_k": 5,
        }

    def reset_cache(self) -> None:
        """Drop the cached model, forcing the next run to behave like a cold start."""
        self._cached_model = None
        self._cached_model_key = None

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        model_bucket = str(event["model_bucket"])
        model_key = str(event["model_key"])
        cache_key = f"{model_bucket}/{model_key}"
        cold_model_load = self._cached_model is None or self._cached_model_key != cache_key
        if cold_model_load:
            payload = context.storage.download(model_bucket, model_key)
            self._cached_model = deserialize_weights(payload)
            self._cached_model_key = cache_key
        model = self._cached_model
        assert model is not None

        image_data = context.storage.download(str(event["input_bucket"]), str(event["input_key"]))
        image = Image.from_bytes(image_data)
        predictions = model.predict(image.pixels, top_k=int(event.get("top_k", 5)))
        return {
            "predictions": [{"label": label, "probability": round(prob, 6)} for label, prob in predictions],
            "top_label": predictions[0][0],
            "cold_model_load": cold_model_load,
            "model_parameters": model.parameter_count(),
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 124.8 ms, cold 1268 ms (model download + import), 621 M
        # instructions, 98.7% CPU.  The deployment package is pinned just under
        # the 250 MB AWS limit; the model adds ~100 MB of storage reads on a
        # cold start.  GCP kills the 512 MB configuration (Section 6.2 Q3), so
        # the minimum viable allocation is 1024 MB.
        edge = self._SIZE_TO_EDGE[size]
        image_bytes = edge * edge * 3 + 12
        model_bytes = 100 * 1024 * 1024
        return WorkProfile(
            warm_compute_s=0.1248 * size.scale,
            cold_init_s=1.143,
            instructions=6.21e8 * size.scale,
            cpu_utilization=0.987,
            peak_memory_mb=480.0,
            storage_read_bytes=image_bytes + model_bytes // 50,
            storage_write_bytes=0,
            storage_read_requests=2,
            storage_write_requests=0,
            output_bytes=700,
            code_package_mb=240.0,
            min_memory_mb=512,
        )
