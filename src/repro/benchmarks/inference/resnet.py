"""A compact ResNet-style convolutional network implemented in NumPy.

The original ``image-recognition`` benchmark serves a pretrained ResNet-50
with PyTorch; the deployment package has to be stripped down to fit AWS
Lambda's 250 MB limit, and the cold start is dominated by downloading and
deserialising the model from storage (Section 4.2 and 6.2 Q2).  PyTorch is
not available offline, so this module provides a small residual CNN —
convolution, batch-norm-style normalisation, ReLU, residual blocks, global
average pooling, and a linear classifier — built on NumPy.  The architecture
keeps the structural elements that make the benchmark interesting (a
multi-megabyte serialised weight file that must be fetched and deserialised
before the first inference, followed by compute-bound matrix work per
inference) while staying fast enough for unit tests.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import BenchmarkError


def _conv2d(inputs: np.ndarray, kernels: np.ndarray, stride: int = 1) -> np.ndarray:
    """Valid-padding 2D convolution via im2col.

    ``inputs`` has shape (channels_in, height, width); ``kernels`` has shape
    (channels_out, channels_in, k, k).
    """
    c_in, height, width = inputs.shape
    c_out, c_in_k, k, k2 = kernels.shape
    if c_in != c_in_k or k != k2:
        raise BenchmarkError("kernel shape does not match the input channels")
    out_h = (height - k) // stride + 1
    out_w = (width - k) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise BenchmarkError("input is smaller than the convolution kernel")
    # im2col: gather k*k*c_in patches for every output position.
    cols = np.empty((c_in * k * k, out_h * out_w), dtype=np.float64)
    idx = 0
    for dy in range(k):
        for dx in range(k):
            patch = inputs[:, dy : dy + out_h * stride : stride, dx : dx + out_w * stride : stride]
            cols[idx * c_in : (idx + 1) * c_in] = patch.reshape(c_in, -1)
            idx += 1
    weights = kernels.transpose(0, 2, 3, 1).reshape(c_out, -1)
    result = weights @ cols
    return result.reshape(c_out, out_h, out_w)


def _pad(inputs: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return inputs
    return np.pad(inputs, ((0, 0), (padding, padding), (padding, padding)), mode="constant")


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _normalize(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Per-channel normalisation (an inference-time batch-norm stand-in)."""
    mean = x.mean(axis=(1, 2), keepdims=True)
    std = x.std(axis=(1, 2), keepdims=True)
    return (x - mean) / (std + eps)


@dataclass
class ResidualBlock:
    """Two 3x3 convolutions with a skip connection."""

    conv1: np.ndarray
    conv2: np.ndarray

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = _relu(_normalize(_conv2d(_pad(x, 1), self.conv1)))
        out = _normalize(_conv2d(_pad(out, 1), self.conv2))
        return _relu(out + x)


@dataclass
class ResNetLite:
    """A small residual network: stem conv → residual blocks → classifier."""

    stem: np.ndarray
    blocks: list[ResidualBlock]
    classifier_weights: np.ndarray
    classifier_bias: np.ndarray
    labels: list[str] = field(default_factory=list)

    @property
    def num_classes(self) -> int:
        return int(self.classifier_weights.shape[0])

    def forward(self, image: np.ndarray) -> np.ndarray:
        """Return class logits for an RGB image of shape (height, width, 3)."""
        if image.ndim != 3 or image.shape[2] != 3:
            raise BenchmarkError("expected an RGB image of shape (height, width, 3)")
        x = image.astype(np.float64).transpose(2, 0, 1) / 255.0
        x = _relu(_normalize(_conv2d(_pad(x, 1), self.stem, stride=2)))
        for block in self.blocks:
            x = block.forward(x)
        pooled = x.mean(axis=(1, 2))
        return self.classifier_weights @ pooled + self.classifier_bias

    def predict(self, image: np.ndarray, top_k: int = 5) -> list[tuple[str, float]]:
        """Return the ``top_k`` (label, probability) pairs for ``image``."""
        logits = self.forward(image)
        shifted = logits - logits.max()
        probabilities = np.exp(shifted) / np.exp(shifted).sum()
        order = np.argsort(probabilities)[::-1][:top_k]
        labels = self.labels or [f"class-{i}" for i in range(self.num_classes)]
        return [(labels[i], float(probabilities[i])) for i in order]

    def parameter_count(self) -> int:
        count = self.stem.size + self.classifier_weights.size + self.classifier_bias.size
        for block in self.blocks:
            count += block.conv1.size + block.conv2.size
        return int(count)


def build_resnet_lite(
    num_classes: int = 1000,
    channels: int = 16,
    num_blocks: int = 4,
    seed: int = 1234,
) -> ResNetLite:
    """Construct a randomly initialised :class:`ResNetLite` ("pretrained" stand-in)."""
    if num_classes <= 0 or channels <= 0 or num_blocks < 0:
        raise BenchmarkError("invalid network configuration")
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(channels * 9)
    stem = rng.normal(0, scale, size=(channels, 3, 3, 3))
    blocks = [
        ResidualBlock(
            conv1=rng.normal(0, scale, size=(channels, channels, 3, 3)),
            conv2=rng.normal(0, scale, size=(channels, channels, 3, 3)),
        )
        for _ in range(num_blocks)
    ]
    classifier_weights = rng.normal(0, 1.0 / np.sqrt(channels), size=(num_classes, channels))
    classifier_bias = np.zeros(num_classes)
    labels = [f"imagenet-class-{i:04d}" for i in range(num_classes)]
    return ResNetLite(stem, blocks, classifier_weights, classifier_bias, labels)


def serialize_weights(model: ResNetLite) -> bytes:
    """Serialise the model weights into a single .npz payload."""
    arrays: dict[str, np.ndarray] = {
        "stem": model.stem,
        "classifier_weights": model.classifier_weights,
        "classifier_bias": model.classifier_bias,
    }
    for index, block in enumerate(model.blocks):
        arrays[f"block{index}_conv1"] = block.conv1
        arrays[f"block{index}_conv2"] = block.conv2
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def deserialize_weights(payload: bytes, labels: list[str] | None = None) -> ResNetLite:
    """Reconstruct a :class:`ResNetLite` from :func:`serialize_weights` output."""
    with np.load(io.BytesIO(payload)) as archive:
        stem = archive["stem"]
        classifier_weights = archive["classifier_weights"]
        classifier_bias = archive["classifier_bias"]
        blocks = []
        index = 0
        while f"block{index}_conv1" in archive:
            blocks.append(ResidualBlock(conv1=archive[f"block{index}_conv1"], conv2=archive[f"block{index}_conv2"]))
            index += 1
    model_labels = labels or [f"imagenet-class-{i:04d}" for i in range(classifier_weights.shape[0])]
    return ResNetLite(stem, blocks, classifier_weights, classifier_bias, model_labels)
