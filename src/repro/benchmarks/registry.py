"""Registry of the benchmark suite (Table 3).

The registry maps benchmark names to instances and provides the metadata that
the Table 3 report and the experiment drivers iterate over.  New benchmarks
integrate by registering an instance — mirroring how the original toolkit
discovers benchmark directories.
"""

from __future__ import annotations

from typing import Iterator

from ..config import Language
from ..exceptions import BenchmarkError, UnknownBenchmarkError
from .base import Benchmark, BenchmarkCategory
from .inference import ImageRecognitionBenchmark
from .multimedia import ThumbnailerBenchmark, VideoProcessingBenchmark
from .scientific import GraphBFSBenchmark, GraphMSTBenchmark, GraphPageRankBenchmark
from .utilities import CompressionBenchmark, DataVisBenchmark
from .webapps import DynamicHtmlBenchmark, UploaderBenchmark


class BenchmarkRegistry:
    """A mutable collection of benchmark instances keyed by name."""

    def __init__(self) -> None:
        self._benchmarks: dict[str, Benchmark] = {}

    def register(self, benchmark: Benchmark, replace: bool = False) -> None:
        if benchmark.name in self._benchmarks and not replace:
            raise BenchmarkError(f"benchmark {benchmark.name!r} is already registered")
        self._benchmarks[benchmark.name] = benchmark

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            raise UnknownBenchmarkError(name, list(self._benchmarks)) from None

    def names(self) -> list[str]:
        return sorted(self._benchmarks)

    def by_category(self, category: BenchmarkCategory) -> list[Benchmark]:
        return [b for b in self._benchmarks.values() if b.category is category]

    def with_language(self, language: Language) -> list[Benchmark]:
        return [b for b in self._benchmarks.values() if language in b.languages]

    def __iter__(self) -> Iterator[Benchmark]:
        return iter(self._benchmarks[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


def _build_default_registry() -> BenchmarkRegistry:
    registry = BenchmarkRegistry()
    for benchmark in (
        DynamicHtmlBenchmark(),
        UploaderBenchmark(),
        ThumbnailerBenchmark(),
        VideoProcessingBenchmark(),
        CompressionBenchmark(),
        DataVisBenchmark(),
        ImageRecognitionBenchmark(),
        GraphBFSBenchmark(),
        GraphPageRankBenchmark(),
        GraphMSTBenchmark(),
    ):
        registry.register(benchmark)
    return registry


_DEFAULT_REGISTRY: BenchmarkRegistry | None = None


def default_registry() -> BenchmarkRegistry:
    """Return the process-wide registry with the full SeBS suite registered."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _build_default_registry()
    return _DEFAULT_REGISTRY


def fresh_registry() -> BenchmarkRegistry:
    """Return a new, independent registry instance (used by tests)."""
    return _build_default_registry()


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark in the default registry."""
    return default_registry().get(name)


def list_benchmarks() -> list[str]:
    """Names of all benchmarks in the default registry."""
    return default_registry().names()
