"""``thumbnailer``: create a thumbnail of an image stored in the cloud.

The kernel downloads an uploaded image from persistent storage, shrinks it to
fit a bounding box and uploads the result — the canonical event-driven
multimedia function.  Table 4 characterises it as compute-bound (97% CPU,
404 M instructions, 65 ms warm).  The paper also uses the Python/Node.js pair
of this benchmark to compare languages (Figure 3).
"""

from __future__ import annotations

from typing import Any, Mapping

from ...config import Language
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile
from .imaging import Image


class ThumbnailerBenchmark(Benchmark):
    """Resize an image from storage into a 200x200 thumbnail."""

    name = "thumbnailer"
    category = BenchmarkCategory.MULTIMEDIA
    languages = (Language.PYTHON, Language.NODEJS)
    dependencies = ("Pillow", "sharp")

    #: Source image dimensions per input size preset.
    _SIZE_TO_DIMENSIONS = {
        InputSize.TEST: (160, 120),
        InputSize.SMALL: (640, 480),
        InputSize.LARGE: (1920, 1080),
    }
    _THUMBNAIL_BOX = (200, 200)

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        width, height = self._SIZE_TO_DIMENSIONS[size]
        image = Image.generate(width, height, context.rng)
        key = f"images/source-{size.value}.srim"
        context.storage.upload(context.input_bucket, key, image.to_bytes(), content_type="image/x-srim")
        context.storage.create_bucket(context.output_bucket)
        return {
            "input_bucket": context.input_bucket,
            "input_key": key,
            "output_bucket": context.output_bucket,
            "output_key": f"thumbnails/thumb-{size.value}.srim",
            "width": self._THUMBNAIL_BOX[0],
            "height": self._THUMBNAIL_BOX[1],
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        data = context.storage.download(str(event["input_bucket"]), str(event["input_key"]))
        image = Image.from_bytes(data)
        thumbnail = image.thumbnail(int(event["width"]), int(event["height"]))
        encoded = thumbnail.to_bytes()
        context.storage.upload(
            str(event["output_bucket"]), str(event["output_key"]), encoded, content_type="image/x-srim"
        )
        return {
            "output_bucket": event["output_bucket"],
            "output_key": event["output_key"],
            "original_size": [image.width, image.height],
            "thumbnail_size": [thumbnail.width, thumbnail.height],
            "bytes": len(encoded),
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: Python warm 65 ms / cold 205 ms, 404 M instructions, 97%
        # CPU; Node.js warm 124.5 ms / cold 313 ms.  Input ≈ 900 kB SRIM
        # image at the small size, thumbnail output ≈ 3 kB (Section 6.3 Q4).
        width, height = self._SIZE_TO_DIMENSIONS[size]
        input_bytes = width * height * 3 + 12
        output_bytes = 200 * 150 * 3 + 12
        if language is Language.NODEJS:
            compute, cold, instructions, cpu = 0.1245, 0.188, 5.2e8, 0.985
        else:
            compute, cold, instructions, cpu = 0.065, 0.140, 4.04e8, 0.97
        return WorkProfile(
            warm_compute_s=compute * size.scale,
            cold_init_s=cold,
            instructions=instructions * size.scale,
            cpu_utilization=cpu,
            peak_memory_mb=60.0 + input_bytes / (1024 * 1024) * 4,
            storage_read_bytes=input_bytes,
            storage_write_bytes=output_bytes,
            storage_read_requests=1,
            storage_write_requests=1,
            output_bytes=3_000,
            code_package_mb=12.0 if language is Language.PYTHON else 25.0,
        )
